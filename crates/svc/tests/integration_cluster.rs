//! Three in-process nodes exercising the cluster tier end to end:
//! cross-node byte determinism with zero recomputation, replication to
//! the owner chain, and owner death leaving survivors able to serve
//! the exact bytes from replicated records.

use std::collections::HashMap;
use std::net::TcpListener;
use std::time::{Duration, Instant};

use noc_svc::client::Client;
use noc_svc::cluster::Ring;
use noc_svc::{Server, ServiceConfig};

/// Reserves `n` distinct loopback ports by binding ephemeral
/// listeners, then releases them for the servers to claim. The gap is
/// racy in principle; in practice the kernel does not reissue a
/// just-released ephemeral port to another process this quickly.
fn free_addrs(n: usize) -> Vec<String> {
    let listeners: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("binds"))
        .collect();
    listeners
        .iter()
        .map(|l| l.local_addr().expect("addr").to_string())
        .collect()
}

fn start_node(addr: &str, peers: &[String]) -> Server {
    Server::start(ServiceConfig {
        addr: addr.to_owned(),
        http_workers: 2,
        sched_workers: 2,
        queue_capacity: 8,
        cache_capacity: 64,
        threads: 1,
        peers: peers.to_vec(),
        self_addr: Some(addr.to_owned()),
        ..ServiceConfig::default()
    })
    .expect("node starts")
}

fn client_for(addr: &str) -> Client {
    Client::connect_retry(addr.parse().expect("socket addr"), Duration::from_secs(5))
        .expect("connects")
}

fn graph_json(seed: u64, tasks: usize) -> String {
    let platform = noc_svc::spec::parse_platform("mesh:2x2").expect("platform");
    let mut cfg = noc_ctg::prelude::TgffConfig::category_i(seed);
    cfg.task_count = tasks;
    let graph = noc_ctg::prelude::TgffGenerator::new(cfg)
        .generate(&platform)
        .expect("generates");
    serde_json::to_string(&graph).expect("serializes")
}

fn schedule_body(graph: &str, scheduler: &str) -> String {
    format!(r#"{{"graph":{graph},"platform":"mesh:2x2","scheduler":"{scheduler}"}}"#)
}

/// Scrapes one counter/gauge value from a node's `/metrics`.
fn scrape(client: &mut Client, metric: &str) -> u64 {
    let resp = client.get("/metrics").expect("scrapes");
    assert_eq!(resp.status, 200);
    resp.body
        .lines()
        .find_map(|l| l.strip_prefix(metric).and_then(|v| v.trim().parse().ok()))
        .unwrap_or_else(|| panic!("{metric} missing from /metrics"))
}

/// Waits until `addr` answers `/v1/internal/lookup/<id>` with 200 —
/// i.e. replication of `id` to that node has settled.
fn await_record(addr: &str, id: &str) {
    let deadline = Instant::now() + Duration::from_secs(15);
    let mut client = client_for(addr);
    loop {
        match client.get(&format!("/v1/internal/lookup/{id}")) {
            Ok(resp) if resp.status == 200 => return,
            _ if Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(50));
            }
            other => panic!("record {id} never replicated to {addr}: last answer {other:?}"),
        }
    }
}

#[test]
fn every_node_answers_identical_bytes_with_zero_recompute() {
    let peers = free_addrs(3);
    let servers: Vec<Server> = peers.iter().map(|a| start_node(a, &peers)).collect();
    let ring = Ring::new(peers.clone());

    // Four distinct problems, all filled through node 0.
    let bodies: Vec<String> = [(41u64, "edf"), (41, "dls"), (42, "edf"), (42, "dls")]
        .iter()
        .map(|(seed, scheduler)| schedule_body(&graph_json(*seed, 10), scheduler))
        .collect();
    let mut via_node0 = client_for(&peers[0]);
    let mut reference: Vec<(String, String)> = Vec::new(); // (id, body)
    for body in &bodies {
        let resp = via_node0.post("/v1/schedule", body).expect("fills");
        assert_eq!(resp.status, 200, "fill failed: {}", resp.body);
        let id = resp
            .header("x-request-hash")
            .expect("hash header")
            .to_owned();
        reference.push((id, resp.body));
    }

    // Replication must land the record at the owner and successor.
    for (id, _) in &reference {
        for node in ring.owner_chain(id, 2) {
            await_record(node, id);
        }
    }

    // Every other node answers every problem with the exact bytes —
    // from its replica ("hit") or a peer fill ("peer"), never a
    // recompute.
    for addr in &peers[1..] {
        let mut client = client_for(addr);
        for (body, (id, expected)) in bodies.iter().zip(&reference) {
            let resp = client.post("/v1/schedule", body).expect("answers");
            assert_eq!(resp.status, 200);
            assert_eq!(
                resp.header("x-request-hash"),
                Some(id.as_str()),
                "nodes must agree on the request identity"
            );
            assert_eq!(
                &resp.body, expected,
                "node {addr} answered different bytes for {id}"
            );
            let label = resp.header("x-cache").expect("cache label").to_owned();
            assert!(
                label == "hit" || label == "peer",
                "node {addr} answered {id} via `{label}` — that is a recompute"
            );
        }
    }

    // The cluster as a whole computed each problem exactly once.
    let executed: u64 = peers
        .iter()
        .map(|a| scrape(&mut client_for(a), "noc_svc_schedules_executed_total "))
        .sum();
    assert_eq!(
        executed,
        bodies.len() as u64,
        "cluster must compute each distinct problem exactly once"
    );
    // And the peer-fill path was genuinely exercised.
    let fills: u64 = peers
        .iter()
        .map(|a| scrape(&mut client_for(a), "noc_svc_cluster_peer_fill_total "))
        .sum();
    let received: u64 = peers
        .iter()
        .map(|a| {
            scrape(
                &mut client_for(a),
                "noc_svc_cluster_replication_received_total ",
            )
        })
        .sum();
    assert!(
        fills + received > 0,
        "cross-node answers must come from fills or replicas"
    );
    for server in servers {
        server.shutdown();
    }
}

#[test]
fn owner_death_leaves_survivors_serving_replicated_bytes() {
    let peers = free_addrs(3);
    let mut servers: HashMap<String, Server> = peers
        .iter()
        .map(|a| (a.clone(), start_node(a, &peers)))
        .collect();
    let ring = Ring::new(peers.clone());

    let body = schedule_body(&graph_json(77, 12), "edf");
    let mut via_node0 = client_for(&peers[0]);
    let resp = via_node0.post("/v1/schedule", &body).expect("fills");
    assert_eq!(resp.status, 200, "fill failed: {}", resp.body);
    let id = resp
        .header("x-request-hash")
        .expect("hash header")
        .to_owned();
    let expected = resp.body;
    drop(via_node0);

    // Wait for the record to reach the full owner chain, then kill
    // the owner.
    let owner = ring.owner(&id).to_owned();
    for node in ring.owner_chain(&id, 2) {
        await_record(node, &id);
    }
    let survivors: Vec<String> = peers.iter().filter(|a| **a != owner).cloned().collect();
    let executed_before: u64 = survivors
        .iter()
        .map(|a| scrape(&mut client_for(a), "noc_svc_schedules_executed_total "))
        .sum();
    servers.remove(&owner).expect("owner is a node").shutdown();

    // Every survivor still answers the exact bytes without computing:
    // the successor holds the replica, everyone else peer-fills from
    // it after the dead owner fails fast.
    for addr in &survivors {
        let mut client = client_for(addr);
        let resp = client
            .post("/v1/schedule", &body)
            .expect("survivor answers");
        assert_eq!(resp.status, 200, "survivor {addr} failed: {}", resp.body);
        assert_eq!(
            resp.body, expected,
            "survivor {addr} answered different bytes after owner death"
        );
        let label = resp.header("x-cache").expect("cache label").to_owned();
        assert!(
            label == "hit" || label == "peer",
            "survivor {addr} answered via `{label}` — that is a recompute"
        );
    }
    let executed_after: u64 = survivors
        .iter()
        .map(|a| scrape(&mut client_for(a), "noc_svc_schedules_executed_total "))
        .sum();
    assert_eq!(
        executed_before, executed_after,
        "owner death must not force a recompute anywhere"
    );
    for server in servers.into_values() {
        server.shutdown();
    }
}
