//! Content-addressed LRU cache of rendered schedule responses.
//!
//! Keys are *canonical request strings* (see [`crate::hash`]): two
//! requests that describe the same (CTG, platform, faults, config)
//! problem — regardless of JSON key order, whitespace or volatile
//! fields like `mode` — share one entry. Values are the exact response
//! bodies served to clients, so a hit returns bytes identical to the
//! cold run.

use std::collections::HashMap;
use std::sync::Arc;

/// A finished schedule as served to clients: the rendered response body
/// plus whether it came from the degraded EDF fallback. The flag rides
/// along so a cache hit (or a finished-twin join) reproduces the
/// `Degraded-Mode` header exactly as the cold run sent it.
#[derive(Debug, Clone)]
pub struct JobOutput {
    /// The exact response body bytes.
    pub body: Arc<String>,
    /// `true` when the body is the degraded EDF fallback schedule.
    pub degraded: bool,
    /// Pre-rendered trace summary JSON from the producing run, spliced
    /// into the response only for requests that opt in via `"stats"`.
    /// Kept out of `body` so the cached bytes — and the cache key —
    /// are unaffected by whether any caller asked for stats.
    pub stats: Option<Arc<String>>,
}

impl JobOutput {
    /// A normal (non-degraded) output.
    #[must_use]
    pub fn new(body: Arc<String>) -> Self {
        JobOutput {
            body,
            degraded: false,
            stats: None,
        }
    }
}

/// Bounded LRU map from canonical request to rendered response body.
#[derive(Debug)]
pub struct ScheduleCache {
    capacity: usize,
    tick: u64,
    entries: HashMap<String, Entry>,
}

#[derive(Debug)]
struct Entry {
    output: JobOutput,
    last_used: u64,
}

impl ScheduleCache {
    /// Creates a cache holding at most `capacity` responses. A capacity
    /// of zero disables caching entirely (every lookup misses).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        ScheduleCache {
            capacity,
            tick: 0,
            entries: HashMap::new(),
        }
    }

    /// Looks `key` up, refreshing its recency on a hit.
    pub fn get(&mut self, key: &str) -> Option<JobOutput> {
        self.tick += 1;
        let tick = self.tick;
        self.entries.get_mut(key).map(|e| {
            e.last_used = tick;
            e.output.clone()
        })
    }

    /// Inserts (or refreshes) `key`, evicting the least-recently-used
    /// entry when the cache is full. Eviction scans all entries — O(n),
    /// fine for the few-thousand-entry caches this service runs with.
    pub fn insert(&mut self, key: String, output: JobOutput) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        if !self.entries.contains_key(&key) && self.entries.len() >= self.capacity {
            if let Some(lru) = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                self.entries.remove(&lru);
            }
        }
        let tick = self.tick;
        self.entries.insert(
            key,
            Entry {
                output,
                last_used: tick,
            },
        );
    }

    /// `true` when `key` is resident, without refreshing its recency
    /// — enumeration passes must not perturb the LRU order.
    #[must_use]
    pub fn contains(&self, key: &str) -> bool {
        self.entries.contains_key(key)
    }

    /// Number of cached responses.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing is cached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn body(s: &str) -> JobOutput {
        JobOutput::new(Arc::new(s.to_owned()))
    }

    #[test]
    fn hit_returns_the_inserted_bytes() {
        let mut c = ScheduleCache::new(4);
        assert!(c.get("k").is_none());
        c.insert("k".into(), body("payload"));
        assert_eq!(c.get("k").expect("hit").body.as_str(), "payload");
    }

    #[test]
    fn degraded_flag_survives_the_cache() {
        let mut c = ScheduleCache::new(4);
        c.insert(
            "k".into(),
            JobOutput {
                body: Arc::new("fallback".to_owned()),
                degraded: true,
                stats: None,
            },
        );
        let hit = c.get("k").expect("hit");
        assert!(hit.degraded, "hits must reproduce the Degraded-Mode flag");
    }

    #[test]
    fn eviction_removes_the_least_recently_used() {
        let mut c = ScheduleCache::new(2);
        c.insert("a".into(), body("A"));
        c.insert("b".into(), body("B"));
        assert!(c.get("a").is_some()); // a is now fresher than b
        c.insert("c".into(), body("C"));
        assert!(c.get("b").is_none(), "b was LRU and must be evicted");
        assert!(c.get("a").is_some());
        assert!(c.get("c").is_some());
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn reinsert_refreshes_without_growing() {
        let mut c = ScheduleCache::new(2);
        c.insert("a".into(), body("A"));
        c.insert("a".into(), body("A2"));
        assert_eq!(c.len(), 1);
        assert_eq!(c.get("a").expect("hit").body.as_str(), "A2");
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c = ScheduleCache::new(0);
        c.insert("a".into(), body("A"));
        assert!(c.get("a").is_none());
        assert!(c.is_empty());
    }
}
