//! Per-peer failure detection: a deterministic state machine that
//! lets lookups and replication skip known-down peers in O(1) instead
//! of burning the per-operation timeout on every request.
//!
//! States and transitions:
//!
//! ```text
//!            failure                    failure × threshold
//!   Up ───────────────────▶ Suspect ───────────────────────▶ Down
//!   ▲                          │                               │
//!   └── success ◀──────────────┴──── success (via probe) ◀─────┘
//! ```
//!
//! - **Up**: every operation may use the peer.
//! - **Suspect**: at least one consecutive failure, fewer than the
//!   threshold. Operations still use the peer — a single timeout must
//!   not eclipse a healthy node.
//! - **Down**: the consecutive-failure threshold was reached. All
//!   operations skip the peer except one *probe* per backoff window;
//!   the window doubles on every failed probe, bounded by
//!   `probe_max`. The first successful operation — probe or not —
//!   returns the peer to Up and resets the backoff.
//!
//! The state machine ([`PeerDetector`]) is pure: transitions depend
//! only on the reported outcomes and the caller-supplied clock, so a
//! scripted outcome sequence always replays to the same states (see
//! the property tests in `tests/detector_properties.rs`). The
//! [`Health`] table wraps it with a real clock and the shared
//! per-peer gauges.

use std::collections::HashMap;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use super::ClusterStats;
use crate::obs::{LogLevel, ServiceLog};

/// Failure-detector tunables.
#[derive(Debug, Clone, Copy)]
pub struct DetectorConfig {
    /// Consecutive failures that turn Suspect into Down.
    pub failure_threshold: u32,
    /// First probe backoff after a peer goes Down, milliseconds.
    pub probe_base_ms: u64,
    /// Backoff ceiling for repeated failed probes, milliseconds.
    pub probe_max_ms: u64,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig {
            failure_threshold: 3,
            probe_base_ms: 250,
            probe_max_ms: 4000,
        }
    }
}

/// A peer's health state as the detector sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PeerState {
    /// No outstanding failures; use freely.
    Up,
    /// Some consecutive failures, below the threshold; still used.
    Suspect,
    /// Threshold reached; skipped except for backoff-gated probes.
    Down,
}

impl PeerState {
    /// The state's wire/label name (`up`, `suspect`, `down`).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            PeerState::Up => "up",
            PeerState::Suspect => "suspect",
            PeerState::Down => "down",
        }
    }
}

/// What an operation should do with a peer right now.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Peer is Up or Suspect: use it.
    Use,
    /// Peer is Down and its probe window elapsed: this caller is the
    /// probe. The window is re-armed immediately, so concurrent
    /// callers cannot stampede a recovering peer.
    Probe,
    /// Peer is Down inside its backoff window: skip in O(1).
    Skip,
}

/// The per-peer state machine. All methods take the clock as a
/// millisecond tick so transitions are a pure function of the
/// scripted inputs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PeerDetector {
    state: PeerState,
    consecutive_failures: u32,
    backoff_ms: u64,
    next_probe_ms: u64,
}

impl Default for PeerDetector {
    fn default() -> Self {
        PeerDetector::new()
    }
}

impl PeerDetector {
    /// A fresh detector: Up, no failures.
    #[must_use]
    pub fn new() -> PeerDetector {
        PeerDetector {
            state: PeerState::Up,
            consecutive_failures: 0,
            backoff_ms: 0,
            next_probe_ms: 0,
        }
    }

    /// Current state.
    #[must_use]
    pub fn state(&self) -> PeerState {
        self.state
    }

    /// Consecutive failures since the last success.
    #[must_use]
    pub fn consecutive_failures(&self) -> u32 {
        self.consecutive_failures
    }

    /// Milliseconds until the next allowed probe (0 when not Down or
    /// already due).
    #[must_use]
    pub fn probe_in_ms(&self, now_ms: u64) -> u64 {
        match self.state {
            PeerState::Down => self.next_probe_ms.saturating_sub(now_ms),
            _ => 0,
        }
    }

    /// Reports a successful operation: any state returns to Up and
    /// the backoff resets.
    pub fn on_success(&mut self) {
        *self = PeerDetector::new();
    }

    /// Reports a failed operation at `now_ms`. Entering Down arms the
    /// first probe window; failing while Down (a failed probe)
    /// doubles the window, bounded by `probe_max_ms`.
    pub fn on_failure(&mut self, cfg: &DetectorConfig, now_ms: u64) {
        self.consecutive_failures = self.consecutive_failures.saturating_add(1);
        if self.consecutive_failures >= cfg.failure_threshold.max(1) {
            self.backoff_ms = if self.state == PeerState::Down {
                (self.backoff_ms.saturating_mul(2)).min(cfg.probe_max_ms)
            } else {
                cfg.probe_base_ms.min(cfg.probe_max_ms)
            };
            self.state = PeerState::Down;
            self.next_probe_ms = now_ms.saturating_add(self.backoff_ms);
        } else {
            self.state = PeerState::Suspect;
        }
    }

    /// Decides what an operation at `now_ms` should do. Claiming a
    /// [`Decision::Probe`] re-arms the window before the probe's
    /// outcome is known, so only one in-flight probe exists per
    /// window.
    pub fn decide(&mut self, now_ms: u64) -> Decision {
        match self.state {
            PeerState::Up | PeerState::Suspect => Decision::Use,
            PeerState::Down if now_ms >= self.next_probe_ms => {
                self.next_probe_ms = now_ms.saturating_add(self.backoff_ms.max(1));
                Decision::Probe
            }
            PeerState::Down => Decision::Skip,
        }
    }
}

/// One peer's health as reported by `/v1/internal/health`.
#[derive(Debug, Clone)]
pub struct PeerHealth {
    /// The peer's ring identity.
    pub peer: String,
    /// Detector state.
    pub state: PeerState,
    /// Consecutive failures since the last success.
    pub consecutive_failures: u32,
    /// Milliseconds until the next allowed probe (0 unless Down).
    pub probe_in_ms: u64,
}

/// The node's live health table: a [`PeerDetector`] per peer behind a
/// real clock, mirroring state into the shared
/// `noc_svc_cluster_peer_up{peer}` gauges.
pub(crate) struct Health {
    cfg: DetectorConfig,
    epoch: Instant,
    peers: Mutex<HashMap<String, PeerDetector>>,
    stats: Arc<ClusterStats>,
    /// Structured log for Up/Suspect/Down transitions.
    log: Arc<ServiceLog>,
}

impl Health {
    /// Builds the table with every peer Up.
    pub(crate) fn new(
        cfg: DetectorConfig,
        peers: &[String],
        stats: Arc<ClusterStats>,
        log: Arc<ServiceLog>,
    ) -> Health {
        let mut up = stats.peer_up.lock().expect("peer gauge lock");
        for peer in peers {
            up.insert(peer.clone(), 1);
        }
        drop(up);
        Health {
            cfg,
            epoch: Instant::now(),
            peers: Mutex::new(
                peers
                    .iter()
                    .map(|p| (p.clone(), PeerDetector::new()))
                    .collect(),
            ),
            stats,
            log,
        }
    }

    /// Milliseconds since the table was built — the detector clock.
    pub(crate) fn now_ms(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_millis()).unwrap_or(u64::MAX)
    }

    /// Decides what to do with `peer` right now; counts claimed
    /// probes.
    pub(crate) fn decide(&self, peer: &str, now_ms: u64) -> Decision {
        let mut peers = self.peers.lock().expect("health lock");
        let decision = peers
            .get_mut(peer)
            .map_or(Decision::Use, |d| d.decide(now_ms));
        drop(peers);
        if decision == Decision::Probe {
            self.stats.probes.fetch_add(1, Ordering::Relaxed);
        }
        decision
    }

    /// Milliseconds until `peer`'s next allowed probe.
    pub(crate) fn probe_in_ms(&self, peer: &str, now_ms: u64) -> u64 {
        self.peers
            .lock()
            .expect("health lock")
            .get(peer)
            .map_or(0, |d| d.probe_in_ms(now_ms))
    }

    /// Reports a successful operation against `peer`.
    pub(crate) fn success(&self, peer: &str) {
        let mut peers = self.peers.lock().expect("health lock");
        if let Some(d) = peers.get_mut(peer) {
            let before = d.state();
            d.on_success();
            drop(peers);
            if before == PeerState::Down {
                self.stats.peer_recoveries.fetch_add(1, Ordering::Relaxed);
            }
            self.set_gauge(peer, 1);
            if before != PeerState::Up {
                self.log_flip(LogLevel::Info, peer, before, PeerState::Up);
            }
        }
    }

    /// Reports a failed operation against `peer`.
    pub(crate) fn failure(&self, peer: &str) {
        let now = self.now_ms();
        let mut peers = self.peers.lock().expect("health lock");
        if let Some(d) = peers.get_mut(peer) {
            let before = d.state();
            d.on_failure(&self.cfg, now);
            let after = d.state();
            drop(peers);
            self.set_gauge(peer, u64::from(after != PeerState::Down));
            if before != after {
                self.log_flip(LogLevel::Warn, peer, before, after);
            }
        }
    }

    fn log_flip(&self, level: LogLevel, peer: &str, from: PeerState, to: PeerState) {
        self.log.event(
            level,
            "peer-state",
            &format!("peer {peer} went {} -> {}", from.as_str(), to.as_str()),
            &[("peer", peer), ("from", from.as_str()), ("to", to.as_str())],
        );
    }

    /// The full table, sorted by peer, for `/v1/internal/health`.
    pub(crate) fn snapshot(&self) -> Vec<PeerHealth> {
        let now = self.now_ms();
        let peers = self.peers.lock().expect("health lock");
        let mut all: Vec<PeerHealth> = peers
            .iter()
            .map(|(peer, d)| PeerHealth {
                peer: peer.clone(),
                state: d.state(),
                consecutive_failures: d.consecutive_failures(),
                probe_in_ms: d.probe_in_ms(now),
            })
            .collect();
        drop(peers);
        all.sort_by(|a, b| a.peer.cmp(&b.peer));
        all
    }

    fn set_gauge(&self, peer: &str, value: u64) {
        let mut up = self.stats.peer_up.lock().expect("peer gauge lock");
        up.insert(peer.to_owned(), value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> DetectorConfig {
        DetectorConfig {
            failure_threshold: 3,
            probe_base_ms: 100,
            probe_max_ms: 800,
        }
    }

    #[test]
    fn threshold_failures_reach_down_through_suspect() {
        let cfg = cfg();
        let mut d = PeerDetector::new();
        d.on_failure(&cfg, 0);
        assert_eq!(d.state(), PeerState::Suspect);
        d.on_failure(&cfg, 10);
        assert_eq!(d.state(), PeerState::Suspect);
        d.on_failure(&cfg, 20);
        assert_eq!(d.state(), PeerState::Down);
        assert_eq!(d.decide(20), Decision::Skip, "inside the probe window");
        assert_eq!(d.decide(120), Decision::Probe, "window elapsed");
        assert_eq!(
            d.decide(121),
            Decision::Skip,
            "claiming the probe re-arms the window"
        );
    }

    #[test]
    fn failed_probes_double_the_backoff_up_to_the_cap() {
        let cfg = cfg();
        let mut d = PeerDetector::new();
        for t in 0..3 {
            d.on_failure(&cfg, t);
        }
        let mut expected = 100;
        let mut now = 2;
        for _ in 0..6 {
            now += d.probe_in_ms(now);
            assert_eq!(d.decide(now), Decision::Probe);
            d.on_failure(&cfg, now);
            expected = (expected * 2).min(800);
            assert_eq!(d.probe_in_ms(now), expected);
        }
        assert_eq!(d.probe_in_ms(now), 800, "backoff is bounded");
    }

    #[test]
    fn any_success_recovers_to_up_and_resets_backoff() {
        let cfg = cfg();
        let mut d = PeerDetector::new();
        for t in 0..5 {
            d.on_failure(&cfg, t);
        }
        assert_eq!(d.state(), PeerState::Down);
        d.on_success();
        assert_eq!(d.state(), PeerState::Up);
        assert_eq!(d.consecutive_failures(), 0);
        assert_eq!(d.decide(1_000_000), Decision::Use);
        // Going down again starts from the base backoff, not the
        // doubled one.
        for t in 0..3 {
            d.on_failure(&cfg, t);
        }
        assert_eq!(d.probe_in_ms(2), 100);
    }

    #[test]
    fn health_table_mirrors_state_into_the_peer_gauge() {
        let stats = Arc::new(ClusterStats::default());
        let peers = vec!["a:1".to_owned(), "b:2".to_owned()];
        let health = Health::new(
            cfg(),
            &peers,
            Arc::clone(&stats),
            ServiceLog::stderr_fallback(),
        );
        assert_eq!(stats.peer_up.lock().expect("gauges")["a:1"], 1);
        for _ in 0..3 {
            health.failure("a:1");
        }
        assert_eq!(stats.peer_up.lock().expect("gauges")["a:1"], 0);
        assert_eq!(stats.peer_up.lock().expect("gauges")["b:2"], 1);
        health.success("a:1");
        assert_eq!(stats.peer_up.lock().expect("gauges")["a:1"], 1);
        assert_eq!(stats.peer_recoveries.load(Ordering::Relaxed), 1);
    }
}
