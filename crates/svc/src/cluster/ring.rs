//! The consistent-hash ring that assigns request hashes to nodes.
//!
//! Each node is projected onto a `u64` circle at [`VNODES`] points
//! (virtual nodes), so key ranges split finely and adding or removing
//! one node remaps only the ~`1/n` of keys adjacent to its points.
//! A key's position is the first 64 bits of its 32-hex content hash —
//! the same value the persistent store indexes records under, which
//! is what lets a peer resolve `GET /v1/internal/lookup/<hash>`
//! straight from its disk index.
//!
//! Determinism contract: nodes are sorted and deduplicated on
//! construction, so every node that is given the same peer *set* —
//! in any order, with any duplication — builds the identical ring and
//! agrees on every key's owner without coordination.

use crate::hash::fnv1a64;

/// Virtual nodes per physical node. 128 points keep the expected
/// worst-node share within ~1.5x of ideal for small clusters (the
/// property tests gate 2x), at a lookup cost of one binary search
/// over `128 * n` points.
pub const VNODES: usize = 128;

/// A consistent-hash ring over a fixed peer set.
#[derive(Debug, Clone)]
pub struct Ring {
    /// Sorted, deduplicated node addresses; ring identity.
    nodes: Vec<String>,
    /// `(point, node index)` sorted by point; ties broken by node
    /// index so construction order cannot leak into ownership.
    points: Vec<(u64, usize)>,
}

impl Ring {
    /// Builds the ring for `nodes` (sorted and deduplicated first, so
    /// peer-list order never matters).
    #[must_use]
    pub fn new(mut nodes: Vec<String>) -> Ring {
        nodes.sort();
        nodes.dedup();
        let mut points = Vec::with_capacity(nodes.len() * VNODES);
        for (i, node) in nodes.iter().enumerate() {
            for v in 0..VNODES {
                points.push((vnode_point(node, v), i));
            }
        }
        points.sort_unstable();
        Ring { nodes, points }
    }

    /// The member nodes, sorted.
    #[must_use]
    pub fn nodes(&self) -> &[String] {
        &self.nodes
    }

    /// The node that owns `hash` (a 32-hex content hash).
    ///
    /// # Panics
    ///
    /// Panics on an empty ring — a cluster always contains at least
    /// the local node.
    #[must_use]
    pub fn owner(&self, hash: &str) -> &str {
        self.owner_chain(hash, 1)[0]
    }

    /// The first `n` *distinct* nodes clockwise from `hash`'s point:
    /// index 0 is the owner, index 1 its successor (the replication
    /// target), and so on. Returns fewer than `n` nodes when the ring
    /// is smaller than `n`.
    ///
    /// # Panics
    ///
    /// Panics on an empty ring.
    #[must_use]
    pub fn owner_chain(&self, hash: &str, n: usize) -> Vec<&str> {
        assert!(!self.nodes.is_empty(), "ring must have at least one node");
        let point = key_point(hash);
        // First ring point at or after the key's point, wrapping.
        let start = self
            .points
            .partition_point(|&(p, _)| p < point)
            .checked_rem(self.points.len())
            .unwrap_or(0);
        let mut chain: Vec<&str> = Vec::with_capacity(n.min(self.nodes.len()));
        for step in 0..self.points.len() {
            let (_, node) = self.points[(start + step) % self.points.len()];
            let addr = self.nodes[node].as_str();
            if !chain.contains(&addr) {
                chain.push(addr);
                if chain.len() == n.min(self.nodes.len()) {
                    break;
                }
            }
        }
        chain
    }
}

/// A node's `v`-th point on the circle. FNV-1a alone disperses short,
/// near-identical inputs (vnode labels differ only in trailing bytes)
/// poorly in the high bits, which clusters points and skews the key
/// spread; a splitmix64 finalizer over the digest restores uniform
/// dispersion.
fn vnode_point(node: &str, v: usize) -> u64 {
    let mut z = fnv1a64(format!("{node}/vn{v}").as_bytes());
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A key's position on the circle: the first 64 bits of its 32-hex
/// content hash (= the store index's first lane). Non-hex input —
/// impossible for ids the service mints — falls back to hashing the
/// raw bytes so lookups stay total.
fn key_point(hash: &str) -> u64 {
    match hash.get(..16).and_then(|h| u64::from_str_radix(h, 16).ok()) {
        Some(point) => point,
        None => fnv1a64(hash.as_bytes()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three() -> Vec<String> {
        vec![
            "127.0.0.1:9001".to_owned(),
            "127.0.0.1:9002".to_owned(),
            "127.0.0.1:9003".to_owned(),
        ]
    }

    fn sample_hashes(n: usize) -> Vec<String> {
        (0..n)
            .map(|i| crate::hash::content_hash(&format!("key-{i}")))
            .collect()
    }

    #[test]
    fn single_node_owns_everything() {
        let ring = Ring::new(vec!["127.0.0.1:9001".to_owned()]);
        for hash in sample_hashes(64) {
            assert_eq!(ring.owner(&hash), "127.0.0.1:9001");
            assert_eq!(ring.owner_chain(&hash, 2), vec!["127.0.0.1:9001"]);
        }
    }

    #[test]
    fn peer_list_order_and_duplicates_do_not_change_ownership() {
        let a = Ring::new(three());
        let mut shuffled = three();
        shuffled.reverse();
        shuffled.push(shuffled[0].clone());
        let b = Ring::new(shuffled);
        for hash in sample_hashes(256) {
            assert_eq!(a.owner(&hash), b.owner(&hash));
            assert_eq!(a.owner_chain(&hash, 2), b.owner_chain(&hash, 2));
        }
    }

    #[test]
    fn owner_chain_is_distinct_and_starts_with_owner() {
        let ring = Ring::new(three());
        for hash in sample_hashes(64) {
            let chain = ring.owner_chain(&hash, 2);
            assert_eq!(chain.len(), 2);
            assert_ne!(chain[0], chain[1]);
            assert_eq!(chain[0], ring.owner(&hash));
        }
    }

    #[test]
    fn key_spread_stays_within_2x_of_ideal() {
        let ring = Ring::new(three());
        let hashes = sample_hashes(12_000);
        let mut counts = std::collections::HashMap::new();
        for hash in &hashes {
            *counts.entry(ring.owner(hash).to_owned()).or_insert(0usize) += 1;
        }
        let ideal = hashes.len() / ring.nodes().len();
        for (node, count) in counts {
            assert!(
                count < ideal * 2,
                "{node} owns {count} of {} keys (ideal {ideal})",
                hashes.len()
            );
        }
    }

    #[test]
    fn removing_a_node_only_remaps_its_own_keys() {
        let full = Ring::new(three());
        let without = Ring::new(three().into_iter().skip(1).collect());
        for hash in sample_hashes(2_000) {
            let before = full.owner(&hash);
            if before != "127.0.0.1:9001" {
                assert_eq!(without.owner(&hash), before, "{hash} moved needlessly");
            }
        }
    }
}
