//! Multi-node mode: consistent-hash ownership, peer cache-fill,
//! replication with retry, and anti-entropy self-healing.
//!
//! Every node runs the full single-node engine — admission, queue,
//! journal, tiered store — and the cluster layer only changes where
//! *bytes* come from and where they are persisted:
//!
//! - **Ownership.** The [`Ring`] maps each request hash to an owner
//!   node and its successor. Schedules are byte-deterministic, so any
//!   node *can* compute any request; ownership decides which nodes
//!   keep the record on disk.
//! - **Peer cache-fill.** On a local store miss, a node asks the
//!   owner (then the owner's successor) with one internal
//!   `GET /v1/internal/lookup/<hash>` before scheduling locally — a
//!   cross-node cache hierarchy, not a proxy: the fill result is
//!   served and cached like a local hit, and a miss everywhere falls
//!   back to local compute, so a dead peer can never fail a request.
//! - **Failure detection.** A per-peer detector ([`health`]) tracks
//!   consecutive failures (Up → Suspect → Down) so fills and
//!   replication skip known-down peers in O(1) instead of burning
//!   the per-operation timeout; Down peers are re-probed on a
//!   bounded exponential backoff and recover on the first success.
//! - **Replication.** When a node finishes a job it enqueues the done
//!   record for asynchronous delivery to the owner and successor
//!   (`POST /v1/internal/record/<hash>`). Deliveries that fail stay
//!   in a bounded per-peer retry queue (drop-*oldest* on overflow —
//!   the newest record is the one most likely to be requested) and
//!   are retried when the detector lets the peer through again.
//! - **Anti-entropy.** A periodic sweep exchanges store digests
//!   (`GET /v1/internal/digest`, the store-index key lanes rendered
//!   as 32-hex ids) with each live peer and re-enqueues any record
//!   the peer should hold but does not — so a peer that was down,
//!   partitioned or overflowed converges back to full owner+successor
//!   replication without operator action.
//!
//! Responses stay byte-identical wherever they are answered: the
//! envelope carries the canonical request key and the exact stored
//! body, and receivers verify the key hashes to the id they were
//! given before trusting it.

use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::fmt;
use std::io;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, Weak};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

use crate::cache::JobOutput;
use crate::client::Client;
use crate::metrics::StageObserver;
use crate::obs::{span_us, Recorder, ServiceLog, TraceCtx};

mod health;
mod ring;

use health::Health;
pub use health::{Decision, DetectorConfig, PeerDetector, PeerHealth, PeerState};
pub use ring::{Ring, VNODES};

/// Default per-peer replication backlog bound. Past it the *oldest*
/// queued record is dropped (and counted as overflow) — replication
/// must never grow memory without bound while a peer is down, and the
/// newest record is the one most likely to be requested next.
const REPL_QUEUE_MAX: usize = 4096;

/// Cluster membership and tunables.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// This node's address as it appears in every node's peer list —
    /// the ring identity, which must match what other nodes dial.
    pub self_addr: String,
    /// The full membership, including this node, in any order.
    pub peers: Vec<String>,
    /// Per-operation timeout for internal lookups and replication
    /// deliveries.
    pub timeout: Duration,
    /// Failure-detector thresholds and probe backoff bounds.
    pub detector: DetectorConfig,
    /// Anti-entropy sweep period; `Duration::ZERO` disables the
    /// sweep (retry queues still converge live peers).
    pub anti_entropy_interval: Duration,
    /// Per-peer retry queue bound (see [`REPL_QUEUE_MAX`]).
    pub retry_queue_max: usize,
}

impl ClusterConfig {
    /// A config for `self_addr` within `peers` with the default 1 s
    /// internal timeout, default detector and a 2 s anti-entropy
    /// sweep.
    #[must_use]
    pub fn new(self_addr: impl Into<String>, peers: Vec<String>) -> ClusterConfig {
        ClusterConfig {
            self_addr: self_addr.into(),
            peers,
            timeout: Duration::from_secs(1),
            detector: DetectorConfig::default(),
            anti_entropy_interval: Duration::from_secs(2),
            retry_queue_max: REPL_QUEUE_MAX,
        }
    }

    /// Validates the membership and resolves every ring identity to
    /// its dialable address.
    ///
    /// The ring identity is the peer *string*; two textually distinct
    /// identities that parse to the same socket address (say
    /// `127.0.0.1:9001` and `127.0.0.1:09001`) would silently put one
    /// physical node on the ring twice — each record's "owner chain"
    /// could then be one machine, defeating replication. That
    /// mistake is rejected here instead of shipping a broken ring.
    ///
    /// # Errors
    ///
    /// [`ClusterConfigError`] when a peer does not parse or two
    /// distinct identities share one address.
    pub fn membership(&self) -> Result<HashMap<String, SocketAddr>, ClusterConfigError> {
        let mut peers = self.peers.clone();
        if !peers.contains(&self.self_addr) {
            peers.push(self.self_addr.clone());
        }
        peers.sort();
        peers.dedup();
        let mut addrs: HashMap<String, SocketAddr> = HashMap::new();
        let mut seen: HashMap<SocketAddr, String> = HashMap::new();
        for peer in peers {
            let addr: SocketAddr = peer.parse().map_err(|e: std::net::AddrParseError| {
                ClusterConfigError::BadPeer {
                    peer: peer.clone(),
                    reason: e.to_string(),
                }
            })?;
            if let Some(first) = seen.get(&addr) {
                return Err(ClusterConfigError::DuplicateAddress {
                    first: first.clone(),
                    second: peer,
                    addr,
                });
            }
            seen.insert(addr, peer.clone());
            addrs.insert(peer, addr);
        }
        Ok(addrs)
    }
}

/// Why a [`ClusterConfig`] was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterConfigError {
    /// A peer string does not parse as `host:port`.
    BadPeer {
        /// The offending peer string.
        peer: String,
        /// The parse failure.
        reason: String,
    },
    /// Two distinct ring identities dial the same socket address —
    /// one physical node would occupy two ring positions.
    DuplicateAddress {
        /// The identity kept first (sorted order).
        first: String,
        /// The identity that collided with it.
        second: String,
        /// The address both dial.
        addr: SocketAddr,
    },
}

impl fmt::Display for ClusterConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterConfigError::BadPeer { peer, reason } => {
                write!(f, "peer address `{peer}` does not parse: {reason}")
            }
            ClusterConfigError::DuplicateAddress {
                first,
                second,
                addr,
            } => write!(
                f,
                "peers `{first}` and `{second}` are distinct ring identities \
                 for one address ({addr}); deduplicate the membership"
            ),
        }
    }
}

impl std::error::Error for ClusterConfigError {}

impl From<ClusterConfigError> for io::Error {
    fn from(err: ClusterConfigError) -> io::Error {
        io::Error::new(io::ErrorKind::InvalidInput, err.to_string())
    }
}

/// Counters the cluster layer maintains, rendered as the
/// `noc_svc_cluster_*` metrics family.
#[derive(Debug, Default)]
pub struct ClusterStats {
    /// Local misses answered by a peer's stored bytes.
    pub peer_fills: AtomicU64,
    /// Local misses no consulted peer could answer (fell back to
    /// local compute).
    pub peer_fill_misses: AtomicU64,
    /// Internal lookups that failed in transport or returned an
    /// envelope that did not verify.
    pub peer_fill_errors: AtomicU64,
    /// Fill probes skipped in O(1) because the detector held the
    /// peer Down.
    pub peer_fill_skips: AtomicU64,
    /// Internal lookups answered for peers from the local store.
    pub lookups_served: AtomicU64,
    /// Done records delivered to a peer.
    pub replication_sent: AtomicU64,
    /// Done records accepted from a peer.
    pub replication_received: AtomicU64,
    /// Deliveries that failed in transport (the record stays queued
    /// for retry).
    pub replication_delivery_failures: AtomicU64,
    /// Records dropped from a full per-peer retry queue (oldest
    /// first).
    pub replication_overflow: AtomicU64,
    /// Current replication backlog depth across all peers (gauge).
    pub replication_lag: AtomicU64,
    /// Backoff-gated probes sent to Down peers.
    pub probes: AtomicU64,
    /// Down peers that recovered to Up.
    pub peer_recoveries: AtomicU64,
    /// Anti-entropy sweep rounds completed.
    pub anti_entropy_rounds: AtomicU64,
    /// Records re-enqueued because a peer's digest was missing them.
    pub anti_entropy_repairs: AtomicU64,
    /// Peer-filled records persisted locally because this node is in
    /// the owner chain (read repair).
    pub read_repairs: AtomicU64,
    /// Detector availability per peer (1 = Up/Suspect, 0 = Down),
    /// rendered as `noc_svc_cluster_peer_up{peer="..."}`.
    pub peer_up: Mutex<BTreeMap<String, u64>>,
}

/// The wire envelope of one done record: everything a peer needs to
/// serve and persist the response exactly as the computing node did.
#[derive(Debug, Serialize, Deserialize)]
pub struct RecordEnvelope {
    /// Canonical request string — the store key. Receivers verify
    /// `content_hash(key)` matches the id they were addressed with.
    pub key: String,
    /// The exact response body bytes.
    pub body: String,
    /// Whether the body is a degraded (EDF-fallback) answer.
    pub degraded: bool,
    /// The producing run's stats block, if one was traced.
    #[serde(default)]
    pub stats: Option<String>,
}

impl RecordEnvelope {
    /// Builds the envelope for a finished output under `key`.
    #[must_use]
    pub fn from_output(key: &str, output: &JobOutput) -> RecordEnvelope {
        RecordEnvelope {
            key: key.to_owned(),
            body: output.body.as_str().to_owned(),
            degraded: output.degraded,
            stats: output.stats.as_ref().map(|s| s.as_str().to_owned()),
        }
    }

    /// Converts the envelope back into the output it carries.
    #[must_use]
    pub fn into_output(self) -> JobOutput {
        JobOutput {
            body: Arc::new(self.body),
            degraded: self.degraded,
            stats: self.stats.map(Arc::new),
        }
    }
}

/// The body of `GET /v1/internal/digest`: every record id this node
/// durably holds, as 32-hex content hashes (the store-index key
/// lanes). Peers compare it against their own holdings to find
/// records the node missed.
#[derive(Debug, Serialize, Deserialize)]
pub struct Digest {
    /// The answering node's ring identity.
    pub node: String,
    /// Held record ids, sorted.
    pub ids: Vec<String>,
}

/// What the anti-entropy sweep needs from the engine's record store.
/// Bound after engine construction via [`Cluster::bind_source`]; the
/// sweep holds only a [`Weak`] reference, so it can never keep a
/// shut-down engine alive.
pub trait RecordSource: Send + Sync {
    /// The 32-hex ids of every record this node can re-replicate
    /// (disk tier plus memory-resident records).
    fn held_ids(&self) -> Vec<String>;
    /// Resolves one held id to its canonical key and stored output.
    fn fetch(&self, id: &str) -> Option<(String, JobOutput)>;
}

/// Observability hooks the engine hands the cluster workers: the
/// flight recorder for hop spans, the structured log, and a handle
/// onto the stage-latency histograms. The default is fully disabled
/// (clusters built without an engine, e.g. in unit tests, record
/// nothing).
pub struct ClusterObs {
    /// The node's flight recorder.
    pub recorder: Arc<Recorder>,
    /// The structured service log.
    pub log: Arc<ServiceLog>,
    /// Stage-latency sink for `replication_deliver` / `anti_entropy`.
    pub stages: StageObserver,
}

impl Default for ClusterObs {
    fn default() -> Self {
        ClusterObs {
            recorder: Arc::new(Recorder::disabled()),
            log: ServiceLog::stderr_fallback(),
            stages: StageObserver::disabled(),
        }
    }
}

/// One queued replication delivery to one peer. The serialized
/// envelope is shared across the peer queues it was fanned out to;
/// the originating trace rides along so the delivery span joins the
/// request's tree.
struct ReplEntry {
    hash: String,
    envelope: Arc<String>,
    trace: Arc<str>,
    parent_span: u64,
}

/// The per-peer retry queues shared with the delivery thread.
struct ReplState {
    queues: Mutex<HashMap<String, VecDeque<ReplEntry>>>,
    ready: Condvar,
    stop: AtomicBool,
}

/// State shared between the cluster handle and its worker threads.
struct Shared {
    ring: Ring,
    self_addr: String,
    /// Ring identity → dialable address.
    addrs: HashMap<String, SocketAddr>,
    timeout: Duration,
    retry_queue_max: usize,
    anti_entropy_interval: Duration,
    stats: Arc<ClusterStats>,
    health: Health,
    repl: ReplState,
    source: Mutex<Option<Weak<dyn RecordSource>>>,
    obs: ClusterObs,
}

/// One node's view of the cluster: the ring, the peer dialing table,
/// the failure detector and the background replicator + anti-entropy
/// workers.
pub struct Cluster {
    shared: Arc<Shared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl Cluster {
    /// Validates the membership, builds the ring and spawns the
    /// replication and anti-entropy worker threads.
    ///
    /// # Errors
    ///
    /// Fails when the membership is invalid (see
    /// [`ClusterConfig::membership`]) or a worker cannot spawn.
    pub fn start(config: ClusterConfig, stats: Arc<ClusterStats>) -> io::Result<Cluster> {
        Cluster::start_with_obs(config, stats, ClusterObs::default())
    }

    /// [`Cluster::start`] with observability hooks: hop spans land in
    /// `obs.recorder`, peer state flips in `obs.log`, and worker-side
    /// stage latencies (`replication_deliver`, `anti_entropy`) in
    /// `obs.stages`.
    ///
    /// # Errors
    ///
    /// Same as [`Cluster::start`].
    pub fn start_with_obs(
        config: ClusterConfig,
        stats: Arc<ClusterStats>,
        obs: ClusterObs,
    ) -> io::Result<Cluster> {
        let addrs = config.membership()?;
        let identities: Vec<String> = addrs.keys().cloned().collect();
        let peers: Vec<String> = identities
            .iter()
            .filter(|p| **p != config.self_addr)
            .cloned()
            .collect();
        let shared = Arc::new(Shared {
            ring: Ring::new(identities),
            self_addr: config.self_addr,
            addrs,
            timeout: config.timeout,
            retry_queue_max: config.retry_queue_max.max(1),
            anti_entropy_interval: config.anti_entropy_interval,
            health: Health::new(
                config.detector,
                &peers,
                Arc::clone(&stats),
                Arc::clone(&obs.log),
            ),
            stats,
            repl: ReplState {
                queues: Mutex::new(HashMap::new()),
                ready: Condvar::new(),
                stop: AtomicBool::new(false),
            },
            source: Mutex::new(None),
            obs,
        });
        let mut workers = Vec::new();
        {
            let shared = Arc::clone(&shared);
            workers.push(
                std::thread::Builder::new()
                    .name("svc-replicator".to_owned())
                    .spawn(move || replicator_loop(&shared))?,
            );
        }
        if !shared.anti_entropy_interval.is_zero() {
            let shared = Arc::clone(&shared);
            workers.push(
                std::thread::Builder::new()
                    .name("svc-anti-entropy".to_owned())
                    .spawn(move || anti_entropy_loop(&shared))?,
            );
        }
        Ok(Cluster {
            shared,
            workers: Mutex::new(workers),
        })
    }

    /// This node's ring identity.
    #[must_use]
    pub fn self_addr(&self) -> &str {
        &self.shared.self_addr
    }

    /// The ring (for tests and diagnostics).
    #[must_use]
    pub fn ring(&self) -> &Ring {
        &self.shared.ring
    }

    /// The cluster counters.
    #[must_use]
    pub fn stats(&self) -> &Arc<ClusterStats> {
        &self.shared.stats
    }

    /// Connects the anti-entropy sweep to the record store it
    /// re-replicates from. Called once the engine owning this cluster
    /// is constructed; sweeps before then are no-ops.
    pub fn bind_source(&self, source: Weak<dyn RecordSource>) {
        *self.shared.source.lock().expect("source lock") = Some(source);
    }

    /// The failure detector's view of every peer, sorted by identity.
    #[must_use]
    pub fn health_snapshot(&self) -> Vec<PeerHealth> {
        self.shared.health.snapshot()
    }

    /// Queued replication deliveries per peer.
    #[must_use]
    pub fn retry_depths(&self) -> BTreeMap<String, usize> {
        let queues = self.shared.repl.queues.lock().expect("replication lock");
        queues
            .iter()
            .filter(|(_, q)| !q.is_empty())
            .map(|(peer, q)| (peer.clone(), q.len()))
            .collect()
    }

    /// Whether this node persists records for `id` on its disk tier:
    /// true when it is the owner or the owner's successor.
    #[must_use]
    pub fn stores_locally(&self, id: &str) -> bool {
        self.shared
            .ring
            .owner_chain(id, 2)
            .iter()
            .any(|n| *n == self.shared.self_addr)
    }

    /// Peer cache-fill: asks the owner (then the successor) of `id`
    /// for its stored record. Returns the output only when a peer
    /// answered with an envelope whose canonical key matches `key` —
    /// anything else (miss, dead peer, key mismatch) falls back to
    /// local compute by returning `None`. Peers the detector holds
    /// Down are skipped in O(1) unless their probe window elapsed.
    ///
    /// Each lookup attempt records a `peer_fill` span under `trace`
    /// and forwards the trace to the peer in `X-Noc-Trace` /
    /// `X-Noc-Span`, so the peer's serving span joins the same tree.
    #[must_use]
    pub fn fill(&self, id: &str, key: &str, trace: &TraceCtx) -> Option<JobOutput> {
        let shared = &self.shared;
        let chain: Vec<&str> = shared
            .ring
            .owner_chain(id, 2)
            .into_iter()
            .filter(|n| *n != shared.self_addr)
            .collect();
        if chain.is_empty() {
            return None;
        }
        for peer in chain {
            let now = shared.health.now_ms();
            if shared.health.decide(peer, now) == Decision::Skip {
                shared.stats.peer_fill_skips.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            let Some(addr) = shared.addrs.get(peer).copied() else {
                continue;
            };
            let mut client = Client::with_timeout(addr, shared.timeout);
            let hop = shared.obs.recorder.child(trace);
            let started = Instant::now();
            let path = format!("/v1/internal/lookup/{id}");
            let result = if hop.is_traced() {
                client.get_with_headers(
                    &path,
                    &[
                        (crate::api::TRACE_HEADER, &hop.id),
                        (crate::api::SPAN_HEADER, &format!("{:x}", hop.span)),
                    ],
                )
            } else {
                client.get(&path)
            };
            let wall_us = span_us(started);
            match result {
                Ok(resp) if resp.status == 200 => {
                    shared.health.success(peer);
                    match serde_json::from_str::<RecordEnvelope>(&resp.body) {
                        Ok(envelope) if envelope.key == key => {
                            shared.stats.peer_fills.fetch_add(1, Ordering::Relaxed);
                            shared
                                .obs
                                .recorder
                                .record(&hop, "peer_fill", "hit", wall_us);
                            return Some(envelope.into_output());
                        }
                        // A non-matching key is a hash collision or a
                        // corrupt peer — never serve those bytes.
                        Ok(_) | Err(_) => {
                            shared
                                .stats
                                .peer_fill_errors
                                .fetch_add(1, Ordering::Relaxed);
                            shared
                                .obs
                                .recorder
                                .record(&hop, "peer_fill", "error", wall_us);
                        }
                    }
                }
                // A 404 is a healthy peer that misses — not a failure.
                Ok(resp) if resp.status == 404 => {
                    shared.health.success(peer);
                    shared
                        .obs
                        .recorder
                        .record(&hop, "peer_fill", "miss", wall_us);
                }
                Ok(_) | Err(_) => {
                    shared.health.failure(peer);
                    shared
                        .stats
                        .peer_fill_errors
                        .fetch_add(1, Ordering::Relaxed);
                    shared
                        .obs
                        .recorder
                        .record(&hop, "peer_fill", "error", wall_us);
                }
            }
        }
        shared
            .stats
            .peer_fill_misses
            .fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Enqueues delivery of a finished record to the owner and
    /// successor of `id` (excluding this node). Never blocks: a full
    /// per-peer queue drops its *oldest* entry (counted as overflow)
    /// to make room. The originating request's `trace` rides with
    /// each queued entry so the eventual delivery span joins its
    /// tree.
    pub fn replicate(&self, id: &str, key: &str, output: &JobOutput, trace: &TraceCtx) {
        let shared = &self.shared;
        if shared.repl.stop.load(Ordering::Acquire) {
            return;
        }
        let targets: Vec<String> = shared
            .ring
            .owner_chain(id, 2)
            .into_iter()
            .filter(|n| *n != shared.self_addr)
            .map(str::to_owned)
            .collect();
        if targets.is_empty() {
            return;
        }
        let envelope = Arc::new(
            serde_json::to_string(&RecordEnvelope::from_output(key, output))
                .expect("envelope serialization is infallible"),
        );
        for peer in targets {
            enqueue(shared, &peer, id, &envelope, trace);
        }
    }

    /// Stops the workers — the replicator makes one last delivery
    /// pass over the backlog — and joins them. Idempotent.
    pub fn shutdown(&self) {
        self.shared.repl.stop.store(true, Ordering::Release);
        self.shared.repl.ready.notify_all();
        let workers = std::mem::take(&mut *self.workers.lock().expect("worker lock"));
        for worker in workers {
            let _ = worker.join();
        }
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Pushes one entry onto `peer`'s retry queue, dropping the oldest
/// entry past the bound, and wakes the delivery thread.
fn enqueue(shared: &Shared, peer: &str, hash: &str, envelope: &Arc<String>, trace: &TraceCtx) {
    let mut queues = shared.repl.queues.lock().expect("replication lock");
    let queue = queues.entry(peer.to_owned()).or_default();
    if queue.len() >= shared.retry_queue_max {
        queue.pop_front();
        shared
            .stats
            .replication_overflow
            .fetch_add(1, Ordering::Relaxed);
    }
    queue.push_back(ReplEntry {
        hash: hash.to_owned(),
        envelope: Arc::clone(envelope),
        trace: Arc::clone(&trace.id),
        parent_span: trace.span,
    });
    publish_lag(shared, &queues);
    drop(queues);
    shared.repl.ready.notify_one();
}

fn publish_lag(shared: &Shared, queues: &HashMap<String, VecDeque<ReplEntry>>) {
    let lag: usize = queues.values().map(VecDeque::len).sum();
    shared
        .stats
        .replication_lag
        .store(lag as u64, Ordering::Relaxed);
}

/// POSTs one queued record to its peer, recording a
/// `replication_deliver` span under the entry's originating trace
/// and feeding the `replication_deliver` stage histogram.
fn deliver(shared: &Shared, client: &mut Client, entry: &ReplEntry) -> bool {
    let hop = shared
        .obs
        .recorder
        .child_of(&entry.trace, entry.parent_span);
    let started = Instant::now();
    let path = format!("/v1/internal/record/{}", entry.hash);
    let result = if hop.is_traced() {
        client.post_with_headers(
            &path,
            entry.envelope.as_str(),
            &[
                (crate::api::TRACE_HEADER, &hop.id),
                (crate::api::SPAN_HEADER, &format!("{:x}", hop.span)),
            ],
        )
    } else {
        client.post(&path, entry.envelope.as_str())
    };
    let ok = matches!(result, Ok(resp) if resp.status == 200);
    shared
        .obs
        .stages
        .observe("replication_deliver", started.elapsed().as_secs_f64());
    shared.obs.recorder.record(
        &hop,
        "replication_deliver",
        if ok { "sent" } else { "failed" },
        span_us(started),
    );
    ok
}

/// The delivery thread: pops retryable records peer by peer and POSTs
/// them over per-peer keep-alive connections. A failed delivery goes
/// back to the *front* of its queue — order is preserved — and the
/// detector decides when the peer is worth another attempt, so a dead
/// peer costs one backoff-gated probe per window instead of a timeout
/// per record. Exits after one final delivery pass once stopped.
fn replicator_loop(shared: &Shared) {
    let mut clients: HashMap<String, Client> = HashMap::new();
    loop {
        let (peer, entry) = {
            let mut queues = shared.repl.queues.lock().expect("replication lock");
            loop {
                if shared.repl.stop.load(Ordering::Acquire) {
                    let rest = std::mem::take(&mut *queues);
                    drop(queues);
                    drain_on_stop(shared, &mut clients, rest);
                    return;
                }
                let now = shared.health.now_ms();
                let mut backlog: Vec<&String> = queues
                    .iter()
                    .filter(|(_, q)| !q.is_empty())
                    .map(|(peer, _)| peer)
                    .collect();
                backlog.sort();
                let mut wait_ms: Option<u64> = None;
                let mut picked: Option<String> = None;
                for peer in backlog {
                    match shared.health.decide(peer, now) {
                        Decision::Use | Decision::Probe => {
                            picked = Some(peer.clone());
                            break;
                        }
                        Decision::Skip => {
                            let due = shared.health.probe_in_ms(peer, now).max(1);
                            wait_ms = Some(wait_ms.map_or(due, |w| w.min(due)));
                        }
                    }
                }
                if let Some(peer) = picked {
                    if let Some(entry) = queues.get_mut(&peer).and_then(VecDeque::pop_front) {
                        publish_lag(shared, &queues);
                        break (peer, entry);
                    }
                }
                queues = match wait_ms {
                    // No backlog at all: sleep until a push or stop.
                    None => shared.repl.ready.wait(queues).expect("replication lock"),
                    // Backlog exists but every peer is backing off:
                    // sleep until the earliest probe window (capped so
                    // new pushes for live peers are noticed promptly).
                    Some(ms) => {
                        shared
                            .repl
                            .ready
                            .wait_timeout(queues, Duration::from_millis(ms.min(250)))
                            .expect("replication lock")
                            .0
                    }
                };
            }
        };
        let Some(addr) = shared.addrs.get(&peer).copied() else {
            continue;
        };
        let client = clients
            .entry(peer.clone())
            .or_insert_with(|| Client::with_timeout(addr, shared.timeout));
        if deliver(shared, client, &entry) {
            shared
                .stats
                .replication_sent
                .fetch_add(1, Ordering::Relaxed);
            shared.health.success(&peer);
        } else {
            shared
                .stats
                .replication_delivery_failures
                .fetch_add(1, Ordering::Relaxed);
            shared.health.failure(&peer);
            let mut queues = shared.repl.queues.lock().expect("replication lock");
            queues.entry(peer).or_default().push_front(entry);
            publish_lag(shared, &queues);
        }
    }
}

/// The final pass at shutdown: each peer's backlog is attempted in
/// order until its first failure, then the remainder is counted as
/// failed — a clean shutdown never abandons deliverable work, and a
/// dead peer costs one timeout instead of one per record.
fn drain_on_stop(
    shared: &Shared,
    clients: &mut HashMap<String, Client>,
    queues: HashMap<String, VecDeque<ReplEntry>>,
) {
    let mut peers: Vec<(String, VecDeque<ReplEntry>)> = queues.into_iter().collect();
    peers.sort_by(|a, b| a.0.cmp(&b.0));
    for (peer, mut queue) in peers {
        let Some(addr) = shared.addrs.get(&peer).copied() else {
            continue;
        };
        let client = clients
            .entry(peer.clone())
            .or_insert_with(|| Client::with_timeout(addr, shared.timeout));
        while let Some(entry) = queue.pop_front() {
            if deliver(shared, client, &entry) {
                shared
                    .stats
                    .replication_sent
                    .fetch_add(1, Ordering::Relaxed);
            } else {
                let abandoned = 1 + queue.len() as u64;
                shared
                    .stats
                    .replication_delivery_failures
                    .fetch_add(abandoned, Ordering::Relaxed);
                break;
            }
        }
    }
    shared.stats.replication_lag.store(0, Ordering::Relaxed);
}

/// The anti-entropy thread: sleeps the configured interval (waking
/// early on stop), then sweeps every peer.
fn anti_entropy_loop(shared: &Arc<Shared>) {
    loop {
        if sleep_until_stop(shared, shared.anti_entropy_interval) {
            return;
        }
        let source = shared
            .source
            .lock()
            .expect("source lock")
            .clone()
            .and_then(|weak| weak.upgrade());
        if let Some(source) = source {
            sweep(shared, source.as_ref());
        }
    }
}

/// Returns `true` when stop was requested before `period` elapsed.
fn sleep_until_stop(shared: &Shared, period: Duration) -> bool {
    let deadline = Instant::now() + period;
    loop {
        if shared.repl.stop.load(Ordering::Acquire) {
            return true;
        }
        if Instant::now() >= deadline {
            return false;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// One anti-entropy round: for every peer that should hold some of
/// our records (it is in their owner chain), fetch its digest and
/// re-enqueue whatever it is missing. Down peers are skipped unless
/// their probe window elapsed — the digest fetch then doubles as the
/// probe.
fn sweep(shared: &Shared, source: &dyn RecordSource) {
    // Each round gets its own freshly minted trace: re-enqueued
    // repairs then show up as `replication_deliver` spans under one
    // `anti_entropy` root per round.
    let round = shared.obs.recorder.mint();
    let round_started = Instant::now();
    let mut repaired = false;
    let held = source.held_ids();
    if !held.is_empty() {
        for peer in shared.ring.nodes() {
            if *peer == shared.self_addr || shared.repl.stop.load(Ordering::Acquire) {
                continue;
            }
            let candidates: Vec<&String> = held
                .iter()
                .filter(|id| shared.ring.owner_chain(id, 2).contains(&peer.as_str()))
                .collect();
            if candidates.is_empty() {
                continue;
            }
            let now = shared.health.now_ms();
            if shared.health.decide(peer, now) == Decision::Skip {
                continue;
            }
            let Some(addr) = shared.addrs.get(peer).copied() else {
                continue;
            };
            let mut client = Client::with_timeout(addr, shared.timeout);
            let digest = match client.get("/v1/internal/digest") {
                Ok(resp) if resp.status == 200 => {
                    match serde_json::from_str::<Digest>(&resp.body) {
                        Ok(digest) => {
                            shared.health.success(peer);
                            digest
                        }
                        Err(_) => {
                            shared.health.failure(peer);
                            continue;
                        }
                    }
                }
                Ok(_) | Err(_) => {
                    shared.health.failure(peer);
                    continue;
                }
            };
            let have: HashSet<&str> = digest.ids.iter().map(String::as_str).collect();
            for id in candidates {
                if have.contains(id.as_str()) {
                    continue;
                }
                let Some((key, output)) = source.fetch(id) else {
                    continue;
                };
                let envelope = Arc::new(
                    serde_json::to_string(&RecordEnvelope::from_output(&key, &output))
                        .expect("envelope serialization is infallible"),
                );
                enqueue(shared, peer, id, &envelope, &round);
                repaired = true;
                shared
                    .stats
                    .anti_entropy_repairs
                    .fetch_add(1, Ordering::Relaxed);
            }
        }
    }
    shared
        .stats
        .anti_entropy_rounds
        .fetch_add(1, Ordering::Relaxed);
    shared
        .obs
        .stages
        .observe("anti_entropy", round_started.elapsed().as_secs_f64());
    // Only rounds that actually repaired something keep their trace —
    // an idle cluster must not fill the recorder with empty rounds.
    if repaired {
        shared
            .obs
            .recorder
            .record(&round, "anti_entropy", "repaired", span_us(round_started));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_round_trips_output() {
        let mut output = JobOutput::new(Arc::new("{\"x\":1}".to_owned()));
        output.degraded = true;
        output.stats = Some(Arc::new("{\"stages\":[]}".to_owned()));
        let envelope = RecordEnvelope::from_output("{\"graph\":{}}", &output);
        let json = serde_json::to_string(&envelope).expect("serializes");
        let back: RecordEnvelope = serde_json::from_str(&json).expect("parses");
        assert_eq!(back.key, "{\"graph\":{}}");
        let restored = back.into_output();
        assert_eq!(restored.body.as_str(), output.body.as_str());
        assert!(restored.degraded);
        assert_eq!(
            restored.stats.as_deref().map(String::as_str),
            Some("{\"stages\":[]}")
        );
    }

    #[test]
    fn stores_locally_tracks_the_owner_chain() {
        let peers = vec![
            "127.0.0.1:9101".to_owned(),
            "127.0.0.1:9102".to_owned(),
            "127.0.0.1:9103".to_owned(),
        ];
        let clusters: Vec<Cluster> = peers
            .iter()
            .map(|p| {
                Cluster::start(
                    ClusterConfig::new(p.clone(), peers.clone()),
                    Arc::new(ClusterStats::default()),
                )
                .expect("cluster starts")
            })
            .collect();
        for i in 0..64 {
            let id = crate::hash::content_hash(&format!("job-{i}"));
            let holders = clusters.iter().filter(|c| c.stores_locally(&id)).count();
            assert_eq!(holders, 2, "exactly owner + successor persist {id}");
        }
    }

    #[test]
    fn duplicate_ring_identities_for_one_address_are_rejected() {
        // `09001` and `9001` parse to the same socket address but are
        // distinct ring identities — the silent double-position bug.
        let config = ClusterConfig::new(
            "127.0.0.1:09001".to_owned(),
            vec!["127.0.0.1:9001".to_owned(), "127.0.0.1:9002".to_owned()],
        );
        let err = config.membership().expect_err("must reject");
        assert!(
            matches!(err, ClusterConfigError::DuplicateAddress { .. }),
            "got {err:?}"
        );
        let err = match Cluster::start(config, Arc::new(ClusterStats::default())) {
            Ok(_) => panic!("start must reject too"),
            Err(e) => e,
        };
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);

        // A plain string duplicate is legal — it dedups to one
        // identity, as documented.
        let config = ClusterConfig::new(
            "127.0.0.1:9001".to_owned(),
            vec!["127.0.0.1:9001".to_owned(), "127.0.0.1:9002".to_owned()],
        );
        assert_eq!(config.membership().expect("valid").len(), 2);

        let config = ClusterConfig::new("not-an-addr".to_owned(), vec![]);
        assert!(matches!(
            config.membership().expect_err("must reject"),
            ClusterConfigError::BadPeer { .. }
        ));
    }

    #[test]
    fn replication_to_a_dead_peer_counts_failures_not_hangs() {
        let peers = vec!["127.0.0.1:9111".to_owned(), "127.0.0.1:9112".to_owned()];
        let stats = Arc::new(ClusterStats::default());
        let mut config = ClusterConfig::new(peers[0].clone(), peers.clone());
        config.timeout = Duration::from_millis(200);
        let cluster = Cluster::start(config, Arc::clone(&stats)).expect("cluster starts");
        let id = crate::hash::content_hash("{\"k\":1}");
        cluster.replicate(
            &id,
            "{\"k\":1}",
            &JobOutput::new(Arc::new("{}".to_owned())),
            &TraceCtx::untraced(),
        );
        cluster.shutdown();
        assert_eq!(stats.replication_sent.load(Ordering::Relaxed), 0);
        assert!(stats.replication_delivery_failures.load(Ordering::Relaxed) >= 1);
        assert_eq!(stats.replication_lag.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn full_retry_queue_drops_the_oldest_record() {
        let peers = vec!["127.0.0.1:9121".to_owned(), "127.0.0.1:9122".to_owned()];
        let stats = Arc::new(ClusterStats::default());
        let mut config = ClusterConfig::new(peers[0].clone(), peers.clone());
        config.retry_queue_max = 3;
        config.timeout = Duration::from_millis(200);
        let cluster = Cluster::start(config, Arc::clone(&stats)).expect("cluster starts");
        // Hold the peer Down with a long backoff so the replicator
        // cannot drain while we fill the queue past its bound.
        for _ in 0..10 {
            cluster.shared.health.failure(&peers[1]);
        }
        let output = JobOutput::new(Arc::new("{}".to_owned()));
        let ids: Vec<String> = (0..5)
            .map(|i| {
                let key = format!("{{\"k\":{i}}}");
                let id = crate::hash::content_hash(&key);
                cluster.replicate(&id, &key, &output, &TraceCtx::untraced());
                id
            })
            .collect();
        {
            let queues = cluster.shared.repl.queues.lock().expect("lock");
            let queue = &queues[&peers[1]];
            let queued: Vec<&str> = queue.iter().map(|e| e.hash.as_str()).collect();
            assert_eq!(
                queued,
                vec![ids[2].as_str(), ids[3].as_str(), ids[4].as_str()],
                "overflow must drop the oldest records, keeping the newest"
            );
        }
        assert_eq!(stats.replication_overflow.load(Ordering::Relaxed), 2);
        assert_eq!(stats.replication_lag.load(Ordering::Relaxed), 3);
        assert_eq!(
            cluster.retry_depths().get(&peers[1]),
            Some(&3usize),
            "retry depth reflects the bounded backlog"
        );
        // Shutdown's final pass attempts the dead peer once and
        // abandons the rest — no hang, lag drains to zero.
        cluster.shutdown();
        assert_eq!(stats.replication_lag.load(Ordering::Relaxed), 0);
    }
}
