//! Multi-node mode: consistent-hash ownership, peer cache-fill and
//! best-effort replication.
//!
//! Every node runs the full single-node engine — admission, queue,
//! journal, tiered store — and the cluster layer only changes where
//! *bytes* come from and where they are persisted:
//!
//! - **Ownership.** The [`Ring`] maps each request hash to an owner
//!   node and its successor. Schedules are byte-deterministic, so any
//!   node *can* compute any request; ownership decides which nodes
//!   keep the record on disk.
//! - **Peer cache-fill.** On a local store miss, a node asks the
//!   owner (then the owner's successor) with one internal
//!   `GET /v1/internal/lookup/<hash>` before scheduling locally — a
//!   cross-node cache hierarchy, not a proxy: the fill result is
//!   served and cached like a local hit, and a miss everywhere falls
//!   back to local compute, so a dead peer can never fail a request.
//! - **Replication.** When a node finishes a job it enqueues the done
//!   record for asynchronous delivery to the owner and successor
//!   (`POST /v1/internal/record/<hash>`), so the owner's death leaves
//!   a second node able to serve the exact bytes with zero recompute.
//!
//! Responses stay byte-identical wherever they are answered: the
//! envelope carries the canonical request key and the exact stored
//! body, and receivers verify the key hashes to the id they were
//! given before trusting it.

use std::collections::{HashMap, VecDeque};
use std::io;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use serde::{Deserialize, Serialize};

use crate::cache::JobOutput;
use crate::client::Client;

mod ring;

pub use ring::{Ring, VNODES};

/// Replication backlog bound; pushes past it are dropped (and counted
/// as failed) — replication is best-effort and must never grow memory
/// without bound when a peer is down.
const REPL_QUEUE_MAX: usize = 4096;

/// Cluster membership and tunables.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// This node's address as it appears in every node's peer list —
    /// the ring identity, which must match what other nodes dial.
    pub self_addr: String,
    /// The full membership, including this node, in any order.
    pub peers: Vec<String>,
    /// Per-operation timeout for internal lookups and replication
    /// deliveries.
    pub timeout: Duration,
}

impl ClusterConfig {
    /// A config for `self_addr` within `peers` with the default 1 s
    /// internal timeout.
    #[must_use]
    pub fn new(self_addr: impl Into<String>, peers: Vec<String>) -> ClusterConfig {
        ClusterConfig {
            self_addr: self_addr.into(),
            peers,
            timeout: Duration::from_secs(1),
        }
    }
}

/// Counters the cluster layer maintains, rendered as the
/// `noc_svc_cluster_*` metrics family.
#[derive(Debug, Default)]
pub struct ClusterStats {
    /// Local misses answered by a peer's stored bytes.
    pub peer_fills: AtomicU64,
    /// Local misses no consulted peer could answer (fell back to
    /// local compute).
    pub peer_fill_misses: AtomicU64,
    /// Internal lookups that failed in transport or returned an
    /// envelope that did not verify.
    pub peer_fill_errors: AtomicU64,
    /// Internal lookups answered for peers from the local store.
    pub lookups_served: AtomicU64,
    /// Done records delivered to a peer.
    pub replication_sent: AtomicU64,
    /// Done records accepted from a peer.
    pub replication_received: AtomicU64,
    /// Deliveries that failed (peer down, timeout, queue overflow).
    pub replication_failed: AtomicU64,
    /// Current replication backlog depth (gauge).
    pub replication_lag: AtomicU64,
}

/// The wire envelope of one done record: everything a peer needs to
/// serve and persist the response exactly as the computing node did.
#[derive(Debug, Serialize, Deserialize)]
pub struct RecordEnvelope {
    /// Canonical request string — the store key. Receivers verify
    /// `content_hash(key)` matches the id they were addressed with.
    pub key: String,
    /// The exact response body bytes.
    pub body: String,
    /// Whether the body is a degraded (EDF-fallback) answer.
    pub degraded: bool,
    /// The producing run's stats block, if one was traced.
    #[serde(default)]
    pub stats: Option<String>,
}

impl RecordEnvelope {
    /// Builds the envelope for a finished output under `key`.
    #[must_use]
    pub fn from_output(key: &str, output: &JobOutput) -> RecordEnvelope {
        RecordEnvelope {
            key: key.to_owned(),
            body: output.body.as_str().to_owned(),
            degraded: output.degraded,
            stats: output.stats.as_ref().map(|s| s.as_str().to_owned()),
        }
    }

    /// Converts the envelope back into the output it carries.
    #[must_use]
    pub fn into_output(self) -> JobOutput {
        JobOutput {
            body: Arc::new(self.body),
            degraded: self.degraded,
            stats: self.stats.map(Arc::new),
        }
    }
}

/// One queued replication delivery.
struct ReplicaTask {
    hash: String,
    envelope: String,
    targets: Vec<SocketAddr>,
}

/// The replication queue shared with the delivery thread.
struct ReplState {
    queue: Mutex<VecDeque<ReplicaTask>>,
    ready: Condvar,
    stop: AtomicBool,
}

/// One node's view of the cluster: the ring, the peer dialing table
/// and the background replicator.
pub struct Cluster {
    ring: Ring,
    self_addr: String,
    /// Ring identity → dialable address.
    addrs: HashMap<String, SocketAddr>,
    timeout: Duration,
    stats: Arc<ClusterStats>,
    repl: Arc<ReplState>,
    worker: Mutex<Option<JoinHandle<()>>>,
}

impl Cluster {
    /// Builds the ring and spawns the replication delivery thread.
    ///
    /// # Errors
    ///
    /// Fails when a peer address does not parse as `host:port`.
    pub fn start(config: ClusterConfig, stats: Arc<ClusterStats>) -> io::Result<Cluster> {
        let mut peers = config.peers.clone();
        if !peers.contains(&config.self_addr) {
            peers.push(config.self_addr.clone());
        }
        let mut addrs = HashMap::new();
        for peer in &peers {
            let addr: SocketAddr = peer.parse().map_err(|e| {
                io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("peer address `{peer}` does not parse: {e}"),
                )
            })?;
            addrs.insert(peer.clone(), addr);
        }
        let repl = Arc::new(ReplState {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            stop: AtomicBool::new(false),
        });
        let worker = {
            let repl = Arc::clone(&repl);
            let stats = Arc::clone(&stats);
            let timeout = config.timeout;
            std::thread::Builder::new()
                .name("svc-replicator".to_owned())
                .spawn(move || replicator_loop(&repl, &stats, timeout))?
        };
        Ok(Cluster {
            ring: Ring::new(peers),
            self_addr: config.self_addr,
            addrs,
            timeout: config.timeout,
            stats: Arc::clone(&stats),
            repl,
            worker: Mutex::new(Some(worker)),
        })
    }

    /// This node's ring identity.
    #[must_use]
    pub fn self_addr(&self) -> &str {
        &self.self_addr
    }

    /// The ring (for tests and diagnostics).
    #[must_use]
    pub fn ring(&self) -> &Ring {
        &self.ring
    }

    /// The cluster counters.
    #[must_use]
    pub fn stats(&self) -> &Arc<ClusterStats> {
        &self.stats
    }

    /// Whether this node persists records for `id` on its disk tier:
    /// true when it is the owner or the owner's successor.
    #[must_use]
    pub fn stores_locally(&self, id: &str) -> bool {
        self.ring
            .owner_chain(id, 2)
            .iter()
            .any(|n| *n == self.self_addr)
    }

    /// The peers worth asking for `id`, in lookup order: the owner,
    /// then its successor, skipping this node.
    fn lookup_chain(&self, id: &str) -> Vec<SocketAddr> {
        self.ring
            .owner_chain(id, 2)
            .into_iter()
            .filter(|n| *n != self.self_addr)
            .filter_map(|n| self.addrs.get(n).copied())
            .collect()
    }

    /// Peer cache-fill: asks the owner (then the successor) of `id`
    /// for its stored record. Returns the output only when a peer
    /// answered with an envelope whose canonical key matches `key` —
    /// anything else (miss, dead peer, key mismatch) falls back to
    /// local compute by returning `None`.
    #[must_use]
    pub fn fill(&self, id: &str, key: &str) -> Option<JobOutput> {
        let chain = self.lookup_chain(id);
        if chain.is_empty() {
            return None;
        }
        for addr in chain {
            let mut client = Client::with_timeout(addr, self.timeout);
            match client.get(&format!("/v1/internal/lookup/{id}")) {
                Ok(resp) if resp.status == 200 => {
                    match serde_json::from_str::<RecordEnvelope>(&resp.body) {
                        Ok(envelope) if envelope.key == key => {
                            self.stats.peer_fills.fetch_add(1, Ordering::Relaxed);
                            return Some(envelope.into_output());
                        }
                        // A non-matching key is a hash collision or a
                        // corrupt peer — never serve those bytes.
                        Ok(_) | Err(_) => {
                            self.stats.peer_fill_errors.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                Ok(resp) if resp.status == 404 => {}
                Ok(_) | Err(_) => {
                    self.stats.peer_fill_errors.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        self.stats.peer_fill_misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Enqueues best-effort delivery of a finished record to the
    /// owner and successor of `id` (excluding this node). Never
    /// blocks: past [`REPL_QUEUE_MAX`] the record is dropped and
    /// counted as a failed delivery.
    pub fn replicate(&self, id: &str, key: &str, output: &JobOutput) {
        let targets: Vec<SocketAddr> = self
            .ring
            .owner_chain(id, 2)
            .into_iter()
            .filter(|n| *n != self.self_addr)
            .filter_map(|n| self.addrs.get(n).copied())
            .collect();
        if targets.is_empty() || self.repl.stop.load(Ordering::Acquire) {
            return;
        }
        let envelope = serde_json::to_string(&RecordEnvelope::from_output(key, output))
            .expect("envelope serialization is infallible");
        let failed = u64::try_from(targets.len()).unwrap_or(u64::MAX);
        let mut queue = self.repl.queue.lock().expect("replication lock");
        if queue.len() >= REPL_QUEUE_MAX {
            self.stats
                .replication_failed
                .fetch_add(failed, Ordering::Relaxed);
            return;
        }
        queue.push_back(ReplicaTask {
            hash: id.to_owned(),
            envelope,
            targets,
        });
        self.stats
            .replication_lag
            .store(queue.len() as u64, Ordering::Relaxed);
        drop(queue);
        self.repl.ready.notify_one();
    }

    /// Stops the replicator after it drains the current backlog and
    /// joins it. Idempotent.
    pub fn shutdown(&self) {
        self.repl.stop.store(true, Ordering::Release);
        self.repl.ready.notify_all();
        if let Some(worker) = self.worker.lock().expect("replication lock").take() {
            let _ = worker.join();
        }
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The delivery thread: pops queued records and POSTs them to their
/// targets over per-peer keep-alive connections. Exits once stopped
/// *and* drained, so a clean shutdown never abandons acknowledged
/// work it could still deliver.
fn replicator_loop(repl: &ReplState, stats: &ClusterStats, timeout: Duration) {
    let mut clients: HashMap<SocketAddr, Client> = HashMap::new();
    loop {
        let task = {
            let mut queue = repl.queue.lock().expect("replication lock");
            loop {
                if let Some(task) = queue.pop_front() {
                    stats
                        .replication_lag
                        .store(queue.len() as u64, Ordering::Relaxed);
                    break task;
                }
                if repl.stop.load(Ordering::Acquire) {
                    return;
                }
                queue = repl.ready.wait(queue).expect("replication lock");
            }
        };
        for addr in task.targets {
            let client = clients
                .entry(addr)
                .or_insert_with(|| Client::with_timeout(addr, timeout));
            match client.post(
                &format!("/v1/internal/record/{}", task.hash),
                &task.envelope,
            ) {
                Ok(resp) if resp.status == 200 => {
                    stats.replication_sent.fetch_add(1, Ordering::Relaxed);
                }
                Ok(_) | Err(_) => {
                    stats.replication_failed.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_round_trips_output() {
        let mut output = JobOutput::new(Arc::new("{\"x\":1}".to_owned()));
        output.degraded = true;
        output.stats = Some(Arc::new("{\"stages\":[]}".to_owned()));
        let envelope = RecordEnvelope::from_output("{\"graph\":{}}", &output);
        let json = serde_json::to_string(&envelope).expect("serializes");
        let back: RecordEnvelope = serde_json::from_str(&json).expect("parses");
        assert_eq!(back.key, "{\"graph\":{}}");
        let restored = back.into_output();
        assert_eq!(restored.body.as_str(), output.body.as_str());
        assert!(restored.degraded);
        assert_eq!(
            restored.stats.as_deref().map(String::as_str),
            Some("{\"stages\":[]}")
        );
    }

    #[test]
    fn stores_locally_tracks_the_owner_chain() {
        let peers = vec![
            "127.0.0.1:9101".to_owned(),
            "127.0.0.1:9102".to_owned(),
            "127.0.0.1:9103".to_owned(),
        ];
        let clusters: Vec<Cluster> = peers
            .iter()
            .map(|p| {
                Cluster::start(
                    ClusterConfig::new(p.clone(), peers.clone()),
                    Arc::new(ClusterStats::default()),
                )
                .expect("cluster starts")
            })
            .collect();
        for i in 0..64 {
            let id = crate::hash::content_hash(&format!("job-{i}"));
            let holders = clusters.iter().filter(|c| c.stores_locally(&id)).count();
            assert_eq!(holders, 2, "exactly owner + successor persist {id}");
        }
    }

    #[test]
    fn replication_to_a_dead_peer_counts_failures_not_hangs() {
        let peers = vec!["127.0.0.1:9111".to_owned(), "127.0.0.1:9112".to_owned()];
        let stats = Arc::new(ClusterStats::default());
        let cluster = Cluster::start(
            ClusterConfig {
                self_addr: peers[0].clone(),
                peers: peers.clone(),
                timeout: Duration::from_millis(200),
            },
            Arc::clone(&stats),
        )
        .expect("cluster starts");
        let id = crate::hash::content_hash("{\"k\":1}");
        cluster.replicate(&id, "{\"k\":1}", &JobOutput::new(Arc::new("{}".to_owned())));
        cluster.shutdown();
        assert_eq!(stats.replication_sent.load(Ordering::Relaxed), 0);
        assert!(stats.replication_failed.load(Ordering::Relaxed) >= 1);
        assert_eq!(stats.replication_lag.load(Ordering::Relaxed), 0);
    }
}
