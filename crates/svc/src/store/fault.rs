//! Deterministic disk-fault injection for the persistent store.
//!
//! Faults are *scripted*, not random: a [`FaultPlan`] maps operation
//! indices (counted separately per channel — writes and reads) to the
//! fault that should fire on that operation. Tests arm a plan, drive
//! the store, and know exactly which `put`/`get` hits the fault, so
//! every degradation and quarantine path is reproducible without a
//! filesystem shim or an RNG.

use std::collections::HashMap;
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// The injectable disk faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoFault {
    /// The syscall fails; nothing reaches the file.
    WriteError,
    /// Half the frame reaches the file, then the syscall fails — the
    /// signature of a crash (or `kill -9`) mid-append.
    TornWrite,
    /// The operation *succeeds* but one payload byte is flipped —
    /// silent bit rot, caught only by the read-time checksum.
    BitFlip,
    /// `ENOSPC`: the filesystem is full; nothing reaches the file.
    DiskFull,
}

impl IoFault {
    /// The `io::Error` this fault surfaces as (when it surfaces at all
    /// — [`IoFault::BitFlip`] corrupts silently instead).
    #[must_use]
    pub fn to_error(self) -> io::Error {
        match self {
            IoFault::WriteError => io::Error::other("injected write error"),
            IoFault::TornWrite => io::Error::other("injected torn write"),
            IoFault::BitFlip => io::Error::other("injected bit flip"),
            IoFault::DiskFull => io::Error::from_raw_os_error(28), // ENOSPC
        }
    }
}

/// A scripted schedule of faults, keyed by per-channel operation index
/// (0-based: the first record append is write op 0, the first record
/// fetch is read op 0). Each armed fault fires exactly once.
#[derive(Debug, Default)]
pub struct FaultPlan {
    write_ops: AtomicU64,
    read_ops: AtomicU64,
    write_faults: Mutex<HashMap<u64, IoFault>>,
    read_faults: Mutex<HashMap<u64, IoFault>>,
}

impl FaultPlan {
    /// An empty plan: no faults fire until some are armed.
    #[must_use]
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Arms `fault` to fire on the `op`-th record write.
    pub fn fail_write(&self, op: u64, fault: IoFault) {
        self.write_faults
            .lock()
            .expect("fault plan lock")
            .insert(op, fault);
    }

    /// Arms `fault` to fire on the `op`-th record read.
    pub fn fail_read(&self, op: u64, fault: IoFault) {
        self.read_faults
            .lock()
            .expect("fault plan lock")
            .insert(op, fault);
    }

    /// Advances the write-op counter and takes the fault (if any)
    /// armed for this operation.
    pub(crate) fn next_write(&self) -> Option<IoFault> {
        let op = self.write_ops.fetch_add(1, Ordering::Relaxed);
        self.write_faults
            .lock()
            .expect("fault plan lock")
            .remove(&op)
    }

    /// Advances the read-op counter and takes the fault (if any)
    /// armed for this operation.
    pub(crate) fn next_read(&self) -> Option<IoFault> {
        let op = self.read_ops.fetch_add(1, Ordering::Relaxed);
        self.read_faults
            .lock()
            .expect("fault plan lock")
            .remove(&op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faults_fire_on_their_op_index_exactly_once() {
        let plan = FaultPlan::new();
        plan.fail_write(1, IoFault::DiskFull);
        assert_eq!(plan.next_write(), None, "op 0 is clean");
        assert_eq!(plan.next_write(), Some(IoFault::DiskFull), "op 1 faults");
        assert_eq!(plan.next_write(), None, "op 2 is clean again");
    }

    #[test]
    fn read_and_write_channels_are_independent() {
        let plan = FaultPlan::new();
        plan.fail_read(0, IoFault::BitFlip);
        assert_eq!(plan.next_write(), None, "write op 0 unaffected");
        assert_eq!(plan.next_read(), Some(IoFault::BitFlip));
    }

    #[test]
    fn disk_full_surfaces_as_enospc() {
        let err = IoFault::DiskFull.to_error();
        assert_eq!(err.raw_os_error(), Some(28));
    }
}
