//! Two-tier content-addressed persistent schedule store.
//!
//! The service's most valuable state is a finished schedule: computing
//! one costs seconds of search, serving one costs a map lookup. This
//! module makes that state durable. A [`TieredStore`] fronts the
//! in-memory LRU ([`crate::cache::ScheduleCache`]) over an on-disk
//! [`Store`]: an append-only segment log of checksummed,
//! length-prefixed response records ([`segment`]) plus a packed
//! immutable index per sealed segment, rebuilt on rotation
//! ([`index`]). Lookups hit RAM first, fall to disk, and promote disk
//! hits back into RAM; inserts write through. Keys are canonical
//! request strings — the same content addressing as the cache — so a
//! restart, an LRU eviction, or a second replica sharing the directory
//! layout all resolve previously-served requests to byte-identical
//! responses without recomputing.
//!
//! # Robustness contract
//!
//! The store may *lose* records (crash before the write, quarantined
//! corruption, full disk); it must never *serve wrong bytes* and never
//! fail a request:
//!
//! * every record carries an FNV-1a checksum, re-verified on every
//!   read — bit rot is quarantined (dropped from the index, counted in
//!   [`StoreStats::quarantined`]), never served;
//! * [`Store::open`] accepts the longest valid prefix of each segment:
//!   a torn tail on the active segment is truncated away, corrupt
//!   bytes in a sealed segment are quarantined in place;
//! * any disk I/O failure — injected via [`FaultPlan`] or real —
//!   trips the store into **memory-only degradation**: the disk tier
//!   stops answering, [`StoreStats::degraded`] raises the
//!   `noc_svc_store_degraded` gauge, the server adds a
//!   `Store-Degraded: memory-only` header, and requests keep being
//!   served from RAM and recomputation.
//!
//! The full format specification lives in `docs/STORE.md`.

pub mod fault;
mod index;
mod segment;

use std::collections::HashMap;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::obs::{LogLevel, ServiceLog};

pub use fault::{FaultPlan, IoFault};

use crate::cache::{JobOutput, ScheduleCache};
use crate::hash::hash_lanes;
use index::IndexEntry;

/// Default segment rotation threshold: 8 MiB of records.
pub const DEFAULT_SEGMENT_BYTES: u64 = 8 * 1024 * 1024;

/// Configuration for [`Store::open`].
pub struct StoreConfig {
    /// Directory holding `seg-*.log` / `seg-*.idx` files (created if
    /// absent).
    pub dir: PathBuf,
    /// Rotate the active segment once it exceeds this many bytes. A
    /// segment always holds at least one record, however large.
    pub segment_max_bytes: u64,
    /// Optional scripted fault injection (tests and chaos drills).
    pub faults: Option<Arc<FaultPlan>>,
}

impl StoreConfig {
    /// Defaults for `dir`: 8 MiB segments, no fault injection.
    pub fn new(dir: impl Into<PathBuf>) -> StoreConfig {
        StoreConfig {
            dir: dir.into(),
            segment_max_bytes: DEFAULT_SEGMENT_BYTES,
            faults: None,
        }
    }
}

/// Counters the store maintains; the engine shares this struct with
/// the metrics registry so `/metrics` renders live values. All plain
/// atomics — totals monotonically increase, `degraded`/`records`/
/// `segments` are gauges.
#[derive(Debug, Default)]
pub struct StoreStats {
    /// Disk-tier lookups that returned verified bytes.
    pub hits: AtomicU64,
    /// Disk-tier lookups that found nothing (or a lane collision).
    pub misses: AtomicU64,
    /// Records dropped because their bytes failed verification —
    /// corrupt regions found at open plus checksum failures at read.
    pub quarantined: AtomicU64,
    /// Disk I/O failures (each one trips degradation).
    pub faults: AtomicU64,
    /// Torn active-segment tails truncated at open.
    pub torn_tails: AtomicU64,
    /// Segment rotations performed.
    pub rotations: AtomicU64,
    /// Gauge: 1 while the disk tier is out of service.
    pub degraded: AtomicU64,
    /// Gauge: records currently indexed.
    pub records: AtomicU64,
    /// Gauge: segment files (sealed + active).
    pub segments: AtomicU64,
}

/// Where one record lives on disk.
#[derive(Debug, Clone, Copy)]
struct Loc {
    seq: u64,
    offset: u64,
    len: u32,
}

struct Inner {
    /// Key lanes (128-bit) to record location; collisions are resolved
    /// by comparing the stored full key on read.
    index: HashMap<u128, Loc>,
    /// Read handles, one per segment file.
    readers: HashMap<u64, File>,
    /// Append handle and running state of the active segment.
    active: File,
    active_seq: u64,
    active_len: u64,
    /// Every record in the active segment, for the rotation-time index.
    active_entries: Vec<IndexEntry>,
}

/// The on-disk tier. All operations are infallible at the API level:
/// errors degrade the store (memory-only mode) instead of surfacing.
pub struct Store {
    dir: PathBuf,
    segment_max_bytes: u64,
    faults: Option<Arc<FaultPlan>>,
    stats: Arc<StoreStats>,
    degraded: AtomicBool,
    /// The structured service log; bound by the engine after
    /// construction. Until then degradation events fall back to the
    /// process-wide stderr log.
    log: OnceLock<Arc<ServiceLog>>,
    inner: Mutex<Inner>,
}

fn lane_key(lanes: (u64, u64)) -> u128 {
    (u128::from(lanes.0) << 64) | u128::from(lanes.1)
}

fn seg_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("seg-{seq:08}.log"))
}

fn idx_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("seg-{seq:08}.idx"))
}

fn parse_seq(name: &str) -> Option<u64> {
    name.strip_prefix("seg-")?
        .strip_suffix(".log")?
        .parse()
        .ok()
}

impl Store {
    /// Opens (creating if absent) the store in `config.dir`, recovering
    /// whatever valid records survive on disk. Sealed segments load
    /// from their packed index when it verifies, and are re-scanned
    /// (index rebuilt) when it does not; the active segment is always
    /// scanned and its torn tail, if any, truncated. Corrupt sealed
    /// regions are quarantined — counted, never served. This function
    /// never panics on corrupt input; it only errors on filesystem
    /// failures (and the engine answers those by running memory-only).
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures (create, open, read, truncate).
    pub fn open(config: StoreConfig, stats: Arc<StoreStats>) -> io::Result<Store> {
        fs::create_dir_all(&config.dir)?;
        let mut seqs: Vec<u64> = fs::read_dir(&config.dir)?
            .filter_map(|entry| parse_seq(entry.ok()?.file_name().to_str()?))
            .collect();
        seqs.sort_unstable();

        let mut index = HashMap::new();
        let mut readers = HashMap::new();
        let (&active_seq, sealed) = seqs.split_last().unwrap_or((&1, &[]));

        for &seq in sealed {
            let log = seg_path(&config.dir, seq);
            let log_len = fs::metadata(&log)?.len();
            let idx = idx_path(&config.dir, seq);
            let entries = match index::load_index(&idx, log_len) {
                Some(entries) => entries,
                None => {
                    let scan = segment::scan(&fs::read(&log)?);
                    if scan.valid_len < log_len {
                        // Never truncate a sealed segment: quarantine
                        // the corrupt region in place.
                        stats.quarantined.fetch_add(1, Ordering::Relaxed);
                    }
                    let entries: Vec<IndexEntry> = scan
                        .records
                        .iter()
                        .map(|r| IndexEntry {
                            lanes: r.lanes,
                            offset: r.offset,
                            len: r.len,
                        })
                        .collect();
                    // The index is only a cache; failing to rebuild it
                    // costs the next open a scan, nothing more.
                    let _ = index::write_index(&idx, &entries);
                    entries
                }
            };
            for e in entries {
                index.insert(
                    lane_key(e.lanes),
                    Loc {
                        seq,
                        offset: e.offset,
                        len: e.len,
                    },
                );
            }
            readers.insert(seq, File::open(&log)?);
        }

        let log = seg_path(&config.dir, active_seq);
        let mut active = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&log)?;
        let mut bytes = Vec::new();
        active.read_to_end(&mut bytes)?;
        let scan = segment::scan(&bytes);
        let mut active_entries = Vec::with_capacity(scan.records.len());
        for r in &scan.records {
            index.insert(
                lane_key(r.lanes),
                Loc {
                    seq: active_seq,
                    offset: r.offset,
                    len: r.len,
                },
            );
            active_entries.push(IndexEntry {
                lanes: r.lanes,
                offset: r.offset,
                len: r.len,
            });
        }
        if scan.valid_len < bytes.len() as u64 {
            active.set_len(scan.valid_len)?;
            stats.torn_tails.fetch_add(1, Ordering::Relaxed);
        }
        active.seek(SeekFrom::Start(scan.valid_len))?;
        readers.insert(active_seq, File::open(&log)?);

        stats.records.store(index.len() as u64, Ordering::Relaxed);
        stats
            .segments
            .store(readers.len() as u64, Ordering::Relaxed);
        Ok(Store {
            dir: config.dir,
            segment_max_bytes: config.segment_max_bytes,
            faults: config.faults,
            stats,
            degraded: AtomicBool::new(false),
            log: OnceLock::new(),
            inner: Mutex::new(Inner {
                index,
                readers,
                active,
                active_seq,
                active_len: scan.valid_len,
                active_entries,
            }),
        })
    }

    /// `true` once any disk failure has tripped memory-only mode.
    #[must_use]
    pub fn is_degraded(&self) -> bool {
        self.degraded.load(Ordering::Relaxed)
    }

    /// Looks `key` up on disk, re-verifying the record checksum and the
    /// stored full key. Returns `None` on miss, on quarantine, and in
    /// degraded mode — the caller recomputes; wrong bytes are never
    /// returned.
    pub fn get(&self, key: &str) -> Option<JobOutput> {
        if self.is_degraded() {
            return None;
        }
        let lanes = hash_lanes(key.as_bytes());
        let mut inner = self.inner.lock().expect("store lock");
        let Some(loc) = inner.index.get(&lane_key(lanes)).copied() else {
            self.stats.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        };
        let read = match inner.readers.get_mut(&loc.seq) {
            Some(reader) => read_frame(reader, loc, self.faults.as_deref()),
            None => Err(io::Error::other("no reader for segment")),
        };
        let frame = match read {
            Ok(frame) => frame,
            Err(err) => {
                drop(inner);
                self.degrade(&format!("record read failed: {err}"));
                return None;
            }
        };
        match segment::decode_frame(&frame) {
            Some((stored_key, output)) if stored_key == key => {
                self.stats.hits.fetch_add(1, Ordering::Relaxed);
                Some(output)
            }
            Some(_) => {
                // 128-bit lane collision: the record is valid but for a
                // different key. Treat as a miss; a write-through of
                // this key will re-point the lane slot.
                self.stats.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
            None => {
                inner.index.remove(&lane_key(lanes));
                self.stats
                    .records
                    .store(inner.index.len() as u64, Ordering::Relaxed);
                self.stats.quarantined.fetch_add(1, Ordering::Relaxed);
                drop(inner);
                self.degrade("record failed verification on read (quarantined)");
                None
            }
        }
    }

    /// Persists `(key, output)`, rotating the active segment when full.
    /// Content addressing makes the store append-once per key: if the
    /// key is already indexed the write is skipped (deterministic
    /// scheduling guarantees the bytes would be identical). Returns
    /// `true` when the key is durably indexed on return; `false` means
    /// the write was lost (degraded before or during) and the caller
    /// must keep its own copy durable.
    pub fn put(&self, key: &str, output: &JobOutput) -> bool {
        if self.is_degraded() {
            return false;
        }
        let lanes = hash_lanes(key.as_bytes());
        let frame = segment::encode_record(key, output);
        let mut inner = self.inner.lock().expect("store lock");
        if inner.index.contains_key(&lane_key(lanes)) {
            return true;
        }
        if inner.active_len > 0 && inner.active_len + frame.len() as u64 > self.segment_max_bytes {
            if let Err(err) = self.rotate(&mut inner) {
                drop(inner);
                self.degrade(&format!("segment rotation failed: {err}"));
                return false;
            }
        }
        if let Err(err) = self.append_frame(&mut inner.active, &frame) {
            drop(inner);
            self.degrade(&format!("record append failed: {err}"));
            return false;
        }
        let len = u32::try_from(frame.len()).expect("frame fits u32");
        let offset = inner.active_len;
        inner.active_entries.push(IndexEntry { lanes, offset, len });
        let loc = Loc {
            seq: inner.active_seq,
            offset,
            len,
        };
        inner.active_len += frame.len() as u64;
        inner.index.insert(lane_key(lanes), loc);
        self.stats
            .records
            .store(inner.index.len() as u64, Ordering::Relaxed);
        true
    }

    /// Looks a record up by its content-hash lanes — the index key
    /// itself — returning the stored full key alongside the output.
    /// This is the cluster's internal-lookup path: a peer knows only
    /// the 32-hex request hash, whose two 64-bit halves are exactly
    /// the lanes this index is keyed on. The record checksum is still
    /// verified; the full-key comparison of [`Store::get`] is
    /// impossible here (the caller has no key), so a 128-bit lane
    /// collision would alias — the same negligible-odds tradeoff the
    /// index itself already makes between distinct segments.
    pub fn get_by_lanes(&self, lanes: (u64, u64)) -> Option<(String, JobOutput)> {
        if self.is_degraded() {
            return None;
        }
        let mut inner = self.inner.lock().expect("store lock");
        let Some(loc) = inner.index.get(&lane_key(lanes)).copied() else {
            self.stats.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        };
        let read = match inner.readers.get_mut(&loc.seq) {
            Some(reader) => read_frame(reader, loc, self.faults.as_deref()),
            None => Err(io::Error::other("no reader for segment")),
        };
        let frame = match read {
            Ok(frame) => frame,
            Err(err) => {
                drop(inner);
                self.degrade(&format!("record read failed: {err}"));
                return None;
            }
        };
        match segment::decode_frame(&frame) {
            Some((stored_key, output)) => {
                self.stats.hits.fetch_add(1, Ordering::Relaxed);
                Some((stored_key, output))
            }
            None => {
                inner.index.remove(&lane_key(lanes));
                self.stats
                    .records
                    .store(inner.index.len() as u64, Ordering::Relaxed);
                self.stats.quarantined.fetch_add(1, Ordering::Relaxed);
                drop(inner);
                self.degrade("record failed verification on read (quarantined)");
                None
            }
        }
    }

    /// `true` when `key` is indexed and the disk tier is in service.
    /// This checks the index, not the bytes — journal compaction uses
    /// [`Store::get`] instead when it needs verified durability.
    #[must_use]
    pub fn contains(&self, key: &str) -> bool {
        !self.is_degraded()
            && self
                .inner
                .lock()
                .expect("store lock")
                .index
                .contains_key(&lane_key(hash_lanes(key.as_bytes())))
    }

    /// The content-hash lanes of every indexed record — the raw
    /// material of the cluster's anti-entropy digest. Empty while the
    /// tier is degraded: nothing is durably held then.
    #[must_use]
    pub fn indexed_lanes(&self) -> Vec<(u64, u64)> {
        if self.is_degraded() {
            return Vec::new();
        }
        self.inner
            .lock()
            .expect("store lock")
            .index
            .keys()
            .map(|k| ((k >> 64) as u64, *k as u64))
            .collect()
    }

    /// Number of records currently indexed.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.lock().expect("store lock").index.len()
    }

    /// `true` when no records are indexed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Seals the active segment (writing its index) and starts the
    /// next one.
    fn rotate(&self, inner: &mut Inner) -> io::Result<()> {
        let _ = index::write_index(
            &idx_path(&self.dir, inner.active_seq),
            &inner.active_entries,
        );
        let seq = inner.active_seq + 1;
        let log = seg_path(&self.dir, seq);
        let active = OpenOptions::new()
            .read(true)
            .write(true)
            .create_new(true)
            .open(&log)?;
        inner.readers.insert(seq, File::open(&log)?);
        inner.active = active;
        inner.active_seq = seq;
        inner.active_len = 0;
        inner.active_entries.clear();
        self.stats.rotations.fetch_add(1, Ordering::Relaxed);
        self.stats
            .segments
            .store(inner.readers.len() as u64, Ordering::Relaxed);
        Ok(())
    }

    /// One whole-frame append, routed through fault injection.
    fn append_frame(&self, file: &mut File, frame: &[u8]) -> io::Result<()> {
        match self.faults.as_ref().and_then(|p| p.next_write()) {
            None => file.write_all(frame),
            Some(IoFault::BitFlip) => {
                // Silent corruption: the write "succeeds" with one
                // payload byte flipped; only the read-time checksum
                // can catch it.
                let mut corrupt = frame.to_vec();
                let last = corrupt.len() - 1;
                corrupt[last] ^= 0x10;
                file.write_all(&corrupt)
            }
            Some(IoFault::TornWrite) => {
                let _ = file.write_all(&frame[..frame.len() / 2]);
                Err(IoFault::TornWrite.to_error())
            }
            Some(fault) => Err(fault.to_error()),
        }
    }

    /// Attaches the structured service log for degradation events.
    /// Later calls are ignored.
    pub fn bind_log(&self, log: Arc<ServiceLog>) {
        let _ = self.log.set(log);
    }

    /// Trips memory-only mode. Idempotent; the first trip logs.
    fn degrade(&self, what: &str) {
        self.stats.faults.fetch_add(1, Ordering::Relaxed);
        if !self.degraded.swap(true, Ordering::Relaxed) {
            self.stats.degraded.store(1, Ordering::Relaxed);
            self.log
                .get()
                .cloned()
                .unwrap_or_else(ServiceLog::stderr_fallback)
                .event(
                    LogLevel::Error,
                    "store-degraded",
                    &format!("schedule store degraded to memory-only mode: {what}"),
                    &[],
                );
        }
    }
}

/// Reads one frame at `loc`, routed through read-channel fault
/// injection.
fn read_frame(reader: &mut File, loc: Loc, faults: Option<&FaultPlan>) -> io::Result<Vec<u8>> {
    let mut buf = vec![0u8; loc.len as usize];
    reader.seek(SeekFrom::Start(loc.offset))?;
    reader.read_exact(&mut buf)?;
    match faults.and_then(FaultPlan::next_read) {
        None => {}
        Some(IoFault::BitFlip) => {
            let last = buf.len() - 1;
            buf[last] ^= 0x20;
        }
        Some(fault) => return Err(fault.to_error()),
    }
    Ok(buf)
}

/// The two-tier store the engine serves from: memory LRU in front,
/// optional disk tier behind. Lookups promote disk hits into memory;
/// inserts write through. When the disk tier was configured but is
/// absent (failed to open) or degraded, [`TieredStore::degraded`]
/// reports it so the server can advertise memory-only mode.
pub struct TieredStore {
    memory: Mutex<ScheduleCache>,
    disk: Option<Store>,
    disk_configured: bool,
}

impl TieredStore {
    /// A store with no disk tier (the pre-store service behaviour).
    #[must_use]
    pub fn memory_only(capacity: usize) -> TieredStore {
        TieredStore {
            memory: Mutex::new(ScheduleCache::new(capacity)),
            disk: None,
            disk_configured: false,
        }
    }

    /// A store whose configuration asked for a disk tier. `disk` is
    /// `None` when the tier failed to open — the store then runs
    /// memory-only and reports [`TieredStore::degraded`].
    #[must_use]
    pub fn with_disk(capacity: usize, disk: Option<Store>) -> TieredStore {
        TieredStore {
            memory: Mutex::new(ScheduleCache::new(capacity)),
            disk,
            disk_configured: true,
        }
    }

    /// Attaches the structured service log to the disk tier (no-op
    /// when the store runs memory-only).
    pub fn bind_log(&self, log: &Arc<ServiceLog>) {
        if let Some(disk) = &self.disk {
            disk.bind_log(Arc::clone(log));
        }
    }

    /// Memory first, then disk (promoting a disk hit into memory).
    pub fn get(&self, key: &str) -> Option<JobOutput> {
        if let Some(hit) = self.memory.lock().expect("cache lock").get(key) {
            return Some(hit);
        }
        let output = self.disk.as_ref()?.get(key)?;
        self.memory
            .lock()
            .expect("cache lock")
            .insert(key.to_owned(), output.clone());
        Some(output)
    }

    /// Write-through insert. Returns `true` when the bytes are durable
    /// on the disk tier (journal compaction then no longer needs to
    /// carry them).
    pub fn insert(&self, key: &str, output: &JobOutput) -> bool {
        self.insert_tiered(key, output, true)
    }

    /// Insert with an explicit disk-tier decision: the memory LRU is
    /// always written (every node serves what it just touched), the
    /// disk tier only when `write_disk` — how cluster nodes keep disk
    /// growth bounded to the key ranges they own or replicate. Returns
    /// disk durability, always `false` when the disk was skipped.
    pub fn insert_tiered(&self, key: &str, output: &JobOutput, write_disk: bool) -> bool {
        self.memory
            .lock()
            .expect("cache lock")
            .insert(key.to_owned(), output.clone());
        write_disk && self.disk.as_ref().is_some_and(|d| d.put(key, output))
    }

    /// Disk lookup by content-hash lanes (see [`Store::get_by_lanes`]),
    /// promoting a hit into the memory tier under its stored full key.
    pub fn get_by_lanes(&self, lanes: (u64, u64)) -> Option<(String, JobOutput)> {
        let (key, output) = self.disk.as_ref()?.get_by_lanes(lanes)?;
        self.memory
            .lock()
            .expect("cache lock")
            .insert(key.clone(), output.clone());
        Some((key, output))
    }

    /// `true` when `key` is resident in the memory tier, without
    /// touching its LRU recency or the disk — how the cluster digest
    /// enumerates memory-held records cheaply.
    #[must_use]
    pub fn contains_memory(&self, key: &str) -> bool {
        self.memory.lock().expect("cache lock").contains(key)
    }

    /// The disk tier, when one is open.
    #[must_use]
    pub fn disk(&self) -> Option<&Store> {
        self.disk.as_ref()
    }

    /// `true` when a disk tier was configured but is out of service —
    /// the condition the `Store-Degraded: memory-only` header and the
    /// `noc_svc_store_degraded` gauge advertise.
    #[must_use]
    pub fn degraded(&self) -> bool {
        self.disk_configured && self.disk.as_ref().is_none_or(|d| d.is_degraded())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct TempDir(PathBuf);

    impl TempDir {
        fn new(name: &str) -> Self {
            let path =
                std::env::temp_dir().join(format!("noc-store-{}-{name}", std::process::id()));
            let _ = fs::remove_dir_all(&path);
            TempDir(path)
        }

        fn config(&self) -> StoreConfig {
            StoreConfig {
                segment_max_bytes: 4096,
                ..StoreConfig::new(&self.0)
            }
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    fn output(body: &str) -> JobOutput {
        JobOutput::new(Arc::new(body.to_owned()))
    }

    fn open(config: StoreConfig) -> Store {
        Store::open(config, Arc::new(StoreStats::default())).expect("opens")
    }

    #[test]
    fn records_survive_reopen_byte_identically() {
        let tmp = TempDir::new("reopen");
        let store = open(tmp.config());
        for i in 0..20 {
            assert!(store.put(&format!("key-{i}"), &output(&format!("body-{i}"))));
        }
        drop(store);
        let store = open(tmp.config());
        assert_eq!(store.len(), 20);
        for i in 0..20 {
            let hit = store.get(&format!("key-{i}")).expect("hit");
            assert_eq!(hit.body.as_str(), format!("body-{i}"));
        }
    }

    #[test]
    fn rotation_seals_segments_and_reopen_uses_the_index() {
        let tmp = TempDir::new("rotate");
        let stats = Arc::new(StoreStats::default());
        let store = Store::open(tmp.config(), stats.clone()).expect("opens");
        let big = "x".repeat(1500);
        for i in 0..10 {
            store.put(&format!("key-{i}"), &output(&big));
        }
        assert!(
            stats.rotations.load(Ordering::Relaxed) >= 2,
            "1.5 KiB records must rotate 4 KiB segments"
        );
        drop(store);
        let idx_files = fs::read_dir(&tmp.0)
            .expect("lists")
            .filter(|e| {
                e.as_ref()
                    .expect("entry")
                    .path()
                    .extension()
                    .is_some_and(|x| x == "idx")
            })
            .count();
        assert!(idx_files >= 2, "sealed segments carry packed indexes");
        let store = open(tmp.config());
        for i in 0..10 {
            assert_eq!(
                store.get(&format!("key-{i}")).expect("hit").body.as_str(),
                big
            );
        }
    }

    #[test]
    fn torn_active_tail_is_truncated_and_appendable() {
        let tmp = TempDir::new("torn");
        let store = open(tmp.config());
        store.put("a", &output("alpha"));
        store.put("b", &output("beta"));
        drop(store);
        let log = seg_path(&tmp.0, 1);
        let bytes = fs::read(&log).expect("reads");
        fs::write(&log, &bytes[..bytes.len() - 5]).expect("tears");

        let stats = Arc::new(StoreStats::default());
        let store = Store::open(tmp.config(), stats.clone()).expect("recovers");
        assert_eq!(stats.torn_tails.load(Ordering::Relaxed), 1);
        assert_eq!(store.get("a").expect("hit").body.as_str(), "alpha");
        assert!(store.get("b").is_none(), "torn record must not serve");
        assert!(store.put("b", &output("beta")), "append after recovery");
        assert_eq!(store.get("b").expect("hit").body.as_str(), "beta");
    }

    #[test]
    fn write_faults_degrade_to_memory_only() {
        for fault in [IoFault::WriteError, IoFault::TornWrite, IoFault::DiskFull] {
            let tmp = TempDir::new(&format!("wfault-{fault:?}"));
            let plan = Arc::new(FaultPlan::new());
            plan.fail_write(1, fault);
            let stats = Arc::new(StoreStats::default());
            let store = Store::open(
                StoreConfig {
                    faults: Some(plan),
                    ..tmp.config()
                },
                stats.clone(),
            )
            .expect("opens");
            assert!(store.put("a", &output("alpha")));
            assert!(
                !store.put("b", &output("beta")),
                "injected fault loses the write"
            );
            assert!(store.is_degraded());
            assert_eq!(stats.degraded.load(Ordering::Relaxed), 1);
            assert!(store.get("a").is_none(), "degraded tier stops answering");
            assert!(
                !store.put("c", &output("gamma")),
                "degraded tier stops writing"
            );
            // The surviving prefix is intact for the next process.
            let store = open(tmp.config());
            assert_eq!(store.get("a").expect("hit").body.as_str(), "alpha");
        }
    }

    #[test]
    fn bit_flip_on_write_is_quarantined_at_read_never_served() {
        let tmp = TempDir::new("bitflip");
        let plan = Arc::new(FaultPlan::new());
        plan.fail_write(0, IoFault::BitFlip);
        let stats = Arc::new(StoreStats::default());
        let store = Store::open(
            StoreConfig {
                faults: Some(plan),
                ..tmp.config()
            },
            stats.clone(),
        )
        .expect("opens");
        assert!(
            store.put("a", &output("alpha")),
            "bit flip is silent at write"
        );
        assert!(store.get("a").is_none(), "corrupt record must never serve");
        assert_eq!(stats.quarantined.load(Ordering::Relaxed), 1);
        assert!(store.is_degraded(), "silent corruption distrusts the tier");
    }

    #[test]
    fn read_faults_degrade_without_serving_wrong_bytes() {
        let tmp = TempDir::new("rfault");
        let plan = Arc::new(FaultPlan::new());
        plan.fail_read(0, IoFault::BitFlip);
        let stats = Arc::new(StoreStats::default());
        let store = Store::open(
            StoreConfig {
                faults: Some(plan.clone()),
                ..tmp.config()
            },
            stats.clone(),
        )
        .expect("opens");
        store.put("a", &output("alpha"));
        assert!(
            store.get("a").is_none(),
            "in-flight bit flip caught by checksum"
        );
        assert_eq!(stats.quarantined.load(Ordering::Relaxed), 1);
        assert!(store.is_degraded());
    }

    #[test]
    fn puts_are_deduplicated_by_key() {
        let tmp = TempDir::new("dedup");
        let store = open(tmp.config());
        assert!(store.put("a", &output("alpha")));
        assert!(store.put("a", &output("alpha")));
        assert_eq!(store.len(), 1);
        drop(store);
        let store = open(tmp.config());
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn stats_and_degraded_flag_round_trip_through_records() {
        let tmp = TempDir::new("flags");
        let store = open(tmp.config());
        store.put(
            "k",
            &JobOutput {
                body: Arc::new("fallback".to_owned()),
                degraded: true,
                stats: Some(Arc::new(r#"{"wall":2}"#.to_owned())),
            },
        );
        drop(store);
        let store = open(tmp.config());
        let hit = store.get("k").expect("hit");
        assert!(hit.degraded);
        assert_eq!(
            hit.stats.as_deref().map(String::as_str),
            Some(r#"{"wall":2}"#)
        );
    }

    #[test]
    fn tiered_store_promotes_disk_hits_and_reports_degradation() {
        let tmp = TempDir::new("tiered");
        {
            let store = open(tmp.config());
            store.put("k", &output("v"));
        }
        let stats = Arc::new(StoreStats::default());
        let disk = Store::open(tmp.config(), stats.clone()).expect("opens");
        let tiered = TieredStore::with_disk(4, Some(disk));
        assert!(!tiered.degraded());
        assert_eq!(tiered.get("k").expect("disk hit").body.as_str(), "v");
        assert_eq!(stats.hits.load(Ordering::Relaxed), 1);
        assert_eq!(tiered.get("k").expect("memory hit").body.as_str(), "v");
        assert_eq!(
            stats.hits.load(Ordering::Relaxed),
            1,
            "promoted: second hit is RAM"
        );

        let none = TieredStore::with_disk(4, None);
        assert!(none.degraded(), "configured-but-absent disk is degraded");
        assert!(
            TieredStore::memory_only(4).get("k").is_none(),
            "no disk tier without configuration"
        );
        assert!(!TieredStore::memory_only(4).degraded());
    }

    #[test]
    fn sealed_segment_corruption_quarantines_without_truncation() {
        let tmp = TempDir::new("sealed");
        let store = open(tmp.config());
        let big = "y".repeat(1500);
        for i in 0..10 {
            store.put(&format!("key-{i}"), &output(&big));
        }
        drop(store);
        // Corrupt the middle of the first (sealed) segment and delete
        // its index so recovery must rescan.
        let log = seg_path(&tmp.0, 1);
        let _ = fs::remove_file(idx_path(&tmp.0, 1));
        let mut bytes = fs::read(&log).expect("reads");
        let len_before = bytes.len();
        let mid = len_before / 2;
        bytes[mid] ^= 0xff;
        fs::write(&log, &bytes).expect("writes");

        let stats = Arc::new(StoreStats::default());
        let store = Store::open(tmp.config(), stats.clone()).expect("recovers");
        assert!(stats.quarantined.load(Ordering::Relaxed) >= 1);
        assert_eq!(
            fs::metadata(&log).expect("meta").len(),
            len_before as u64,
            "sealed segments are never truncated"
        );
        // Every record the store still serves is byte-identical.
        let mut served = 0;
        for i in 0..10 {
            if let Some(hit) = store.get(&format!("key-{i}")) {
                assert_eq!(hit.body.as_str(), big);
                served += 1;
            }
        }
        assert!(served >= 1, "the valid prefix must survive");
        assert!(served < 10, "the corrupt region must be quarantined");
    }
}
