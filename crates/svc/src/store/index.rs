//! Packed immutable per-segment index files.
//!
//! When a segment rotates (or a sealed segment is re-scanned on open),
//! the store writes `seg-NNNNNNNN.idx` beside the log: a flat sorted
//! array of fixed-width entries mapping key-hash lanes to the record's
//! frame offset and length, so the next open locates every record with
//! one small read instead of scanning megabytes of log.
//!
//! ```text
//! file  := [magic "NOCSIDX1"][u64 LE entry count][entry …][u64 LE FNV-1a of everything before]
//! entry := [u64 LE key lane a][u64 LE key lane b][u64 LE frame offset][u32 LE frame length]
//! ```
//!
//! The index is **only a cache**: it is written atomically (temp file +
//! rename), verified whole-file by checksum on load, and on any
//! mismatch — missing, short, corrupt, or entries pointing past the
//! end of the log — the store falls back to scanning the log itself.
//! Losing an index can cost a scan; it can never cost a record.

use std::fs::{self, File};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

use crate::hash::fnv1a64;

const MAGIC: &[u8; 8] = b"NOCSIDX1";
const ENTRY_BYTES: usize = 8 + 8 + 8 + 4;

/// One index entry: where a key's record lives in the segment log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct IndexEntry {
    /// The two FNV-1a lanes of the record key.
    pub lanes: (u64, u64),
    /// Byte offset of the frame start within the segment log.
    pub offset: u64,
    /// Whole-frame length (header + payload).
    pub len: u32,
}

fn sibling_tmp(path: &Path) -> PathBuf {
    let mut os = path.as_os_str().to_owned();
    os.push(".tmp");
    PathBuf::from(os)
}

/// Writes the index for one sealed segment atomically: temp file in the
/// same directory, then rename over the final name. Entries are stored
/// sorted by lanes (ties broken by offset, so a later duplicate of the
/// same key orders after — and on load overrides — an earlier one).
///
/// # Errors
///
/// Propagates filesystem failures; the caller treats them as advisory
/// (the log remains the source of truth).
pub(crate) fn write_index(path: &Path, entries: &[IndexEntry]) -> io::Result<()> {
    let mut sorted: Vec<IndexEntry> = entries.to_vec();
    sorted.sort_by_key(|e| (e.lanes, e.offset));

    let mut bytes = Vec::with_capacity(8 + 8 + sorted.len() * ENTRY_BYTES + 8);
    bytes.extend_from_slice(MAGIC);
    bytes.extend_from_slice(&(sorted.len() as u64).to_le_bytes());
    for e in &sorted {
        bytes.extend_from_slice(&e.lanes.0.to_le_bytes());
        bytes.extend_from_slice(&e.lanes.1.to_le_bytes());
        bytes.extend_from_slice(&e.offset.to_le_bytes());
        bytes.extend_from_slice(&e.len.to_le_bytes());
    }
    bytes.extend_from_slice(&fnv1a64(&bytes).to_le_bytes());

    let tmp = sibling_tmp(path);
    let mut file = File::create(&tmp)?;
    file.write_all(&bytes)?;
    drop(file);
    fs::rename(&tmp, path)
}

/// Loads a segment index, returning `None` — never an error — when the
/// file is absent, short, checksum-failing, malformed, or lists a
/// record extending past `log_len` (a stale index from before a
/// torn-tail truncation). `None` means "scan the log instead".
pub(crate) fn load_index(path: &Path, log_len: u64) -> Option<Vec<IndexEntry>> {
    let bytes = fs::read(path).ok()?;
    if bytes.len() < MAGIC.len() + 8 + 8 || &bytes[..MAGIC.len()] != MAGIC {
        return None;
    }
    let body_len = bytes.len() - 8;
    let sum = u64::from_le_bytes(bytes[body_len..].try_into().ok()?);
    if fnv1a64(&bytes[..body_len]) != sum {
        return None;
    }
    let count = u64::from_le_bytes(bytes[8..16].try_into().ok()?) as usize;
    let entry_bytes = body_len.checked_sub(16)?;
    if count.checked_mul(ENTRY_BYTES)? != entry_bytes {
        return None;
    }
    let mut entries = Vec::with_capacity(count);
    for i in 0..count {
        let at = 16 + i * ENTRY_BYTES;
        let e = IndexEntry {
            lanes: (
                u64::from_le_bytes(bytes[at..at + 8].try_into().ok()?),
                u64::from_le_bytes(bytes[at + 8..at + 16].try_into().ok()?),
            ),
            offset: u64::from_le_bytes(bytes[at + 16..at + 24].try_into().ok()?),
            len: u32::from_le_bytes(bytes[at + 24..at + 28].try_into().ok()?),
        };
        if e.offset.checked_add(u64::from(e.len))? > log_len {
            return None; // stale index outlives a truncated log: rescan
        }
        entries.push(e);
    }
    Some(entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    struct TempIdx(PathBuf);

    impl TempIdx {
        fn new(name: &str) -> Self {
            let path =
                std::env::temp_dir().join(format!("noc-store-idx-{}-{name}", std::process::id()));
            let _ = fs::remove_file(&path);
            TempIdx(path)
        }
    }

    impl Drop for TempIdx {
        fn drop(&mut self) {
            let _ = fs::remove_file(&self.0);
        }
    }

    fn sample() -> Vec<IndexEntry> {
        vec![
            IndexEntry {
                lanes: (7, 9),
                offset: 120,
                len: 40,
            },
            IndexEntry {
                lanes: (1, 2),
                offset: 0,
                len: 120,
            },
        ]
    }

    #[test]
    fn entries_round_trip_sorted() {
        let tmp = TempIdx::new("round-trip");
        write_index(&tmp.0, &sample()).expect("writes");
        let loaded = load_index(&tmp.0, 160).expect("loads");
        assert_eq!(loaded.len(), 2);
        assert_eq!(loaded[0].lanes, (1, 2), "sorted by lanes");
        assert_eq!(loaded[1].offset, 120);
    }

    #[test]
    fn corrupt_or_short_indexes_load_as_none() {
        let tmp = TempIdx::new("corrupt");
        write_index(&tmp.0, &sample()).expect("writes");
        let mut bytes = fs::read(&tmp.0).expect("reads");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        fs::write(&tmp.0, &bytes).expect("writes");
        assert!(load_index(&tmp.0, 160).is_none(), "checksum must reject");

        fs::write(&tmp.0, b"NO").expect("writes");
        assert!(load_index(&tmp.0, 160).is_none(), "short file rejected");
        assert!(
            load_index(Path::new("/nonexistent/x.idx"), 160).is_none(),
            "missing file rejected"
        );
    }

    #[test]
    fn entries_past_the_log_end_invalidate_the_index() {
        let tmp = TempIdx::new("stale");
        write_index(&tmp.0, &sample()).expect("writes");
        assert!(load_index(&tmp.0, 160).is_some());
        assert!(
            load_index(&tmp.0, 100).is_none(),
            "a log truncated below an indexed record means the index is stale"
        );
    }
}
