//! Segment-file framing for the persistent schedule store.
//!
//! A segment is a flat append-only sequence of checksummed,
//! length-prefixed frames — the same framing discipline as the job
//! journal ([`crate::journal`]), with a binary payload instead of JSON
//! so multi-kilobyte response bodies round-trip without escaping:
//!
//! ```text
//! frame   := [u32 LE payload length][u64 LE FNV-1a(payload)][payload]
//! payload := [u32 LE key length][key (canonical request, UTF-8)]
//!            [u8 flags]                       // bit0 degraded, bit1 has stats
//!            [u32 LE body length][body (response bytes, UTF-8)]
//!            [u32 LE stats length][stats (trace summary JSON, UTF-8)]
//! ```
//!
//! Every append is one `write(2)` of one whole frame, so a crash can
//! only truncate the file mid-frame, never interleave frames. A scan
//! accepts the **longest valid prefix**: it stops at the first frame
//! whose header is short, whose declared length overruns the file,
//! whose checksum fails, or whose payload does not decode. Everything
//! after that point is either a torn tail (active segment — truncated
//! on open) or quarantined bytes (sealed segment — counted, never
//! served).

use std::sync::Arc;

use crate::cache::JobOutput;
use crate::hash::{fnv1a64, hash_lanes};

/// Bytes of frame header: u32 payload length + u64 checksum.
pub(crate) const FRAME_HEADER: usize = 4 + 8;

/// Upper bound on a single payload. A corrupt length prefix must not
/// drive a multi-gigabyte allocation; real response bodies are a few
/// hundred KiB at the extreme.
const MAX_PAYLOAD: usize = 256 * 1024 * 1024;

const FLAG_DEGRADED: u8 = 1 << 0;
const FLAG_HAS_STATS: u8 = 1 << 1;

fn push_chunk(out: &mut Vec<u8>, bytes: &[u8]) {
    let len = u32::try_from(bytes.len()).expect("chunk fits u32");
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(bytes);
}

/// Encodes one `(key, output)` record as a complete frame ready for a
/// single append.
pub(crate) fn encode_record(key: &str, output: &JobOutput) -> Vec<u8> {
    let stats = output.stats.as_deref().map_or("", |s| s.as_str());
    let mut payload = Vec::with_capacity(key.len() + output.body.len() + stats.len() + 3 * 4 + 1);
    push_chunk(&mut payload, key.as_bytes());
    let mut flags = 0u8;
    if output.degraded {
        flags |= FLAG_DEGRADED;
    }
    if output.stats.is_some() {
        flags |= FLAG_HAS_STATS;
    }
    payload.push(flags);
    push_chunk(&mut payload, output.body.as_bytes());
    push_chunk(&mut payload, stats.as_bytes());

    let mut frame = Vec::with_capacity(FRAME_HEADER + payload.len());
    frame.extend_from_slice(
        &u32::try_from(payload.len())
            .expect("payload fits u32")
            .to_le_bytes(),
    );
    frame.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
    frame.extend_from_slice(&payload);
    frame
}

/// A cursor over a payload's chunks.
struct Cursor<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let slice = self.bytes.get(self.at..self.at + n)?;
        self.at += n;
        Some(slice)
    }

    fn chunk(&mut self) -> Option<&'a str> {
        let len = u32::from_le_bytes(self.take(4)?.try_into().ok()?) as usize;
        std::str::from_utf8(self.take(len)?).ok()
    }

    fn byte(&mut self) -> Option<u8> {
        self.take(1).map(|b| b[0])
    }
}

fn decode_payload(payload: &[u8]) -> Option<(String, JobOutput)> {
    let mut cur = Cursor {
        bytes: payload,
        at: 0,
    };
    let key = cur.chunk()?.to_owned();
    let flags = cur.byte()?;
    let body = cur.chunk()?.to_owned();
    let stats = cur.chunk()?.to_owned();
    if cur.at != payload.len() {
        return None; // trailing garbage is not a valid record
    }
    let output = JobOutput {
        body: Arc::new(body),
        degraded: flags & FLAG_DEGRADED != 0,
        stats: (flags & FLAG_HAS_STATS != 0).then(|| Arc::new(stats)),
    };
    Some((key, output))
}

/// Decodes one complete frame (header + payload, exactly as long as the
/// index says). Returns `None` — never panics — on any mismatch: short
/// buffer, bad length, checksum failure, undecodable payload. A `None`
/// from here is what quarantines a record at read time.
pub(crate) fn decode_frame(frame: &[u8]) -> Option<(String, JobOutput)> {
    let header = frame.get(..FRAME_HEADER)?;
    let len = u32::from_le_bytes(header[..4].try_into().ok()?) as usize;
    let sum = u64::from_le_bytes(header[4..].try_into().ok()?);
    let payload = frame.get(FRAME_HEADER..FRAME_HEADER + len)?;
    if FRAME_HEADER + len != frame.len() || fnv1a64(payload) != sum {
        return None;
    }
    decode_payload(payload)
}

/// One record located by a scan.
pub(crate) struct ScannedRecord {
    /// Byte offset of the frame start within the segment.
    pub offset: u64,
    /// Whole-frame length (header + payload).
    pub len: u32,
    /// The two FNV-1a lanes of the record key.
    pub lanes: (u64, u64),
}

/// Result of scanning a segment's bytes.
pub(crate) struct Scan {
    /// Every record in the longest valid prefix, in file order.
    pub records: Vec<ScannedRecord>,
    /// Length of that prefix; bytes past it are torn or corrupt.
    pub valid_len: u64,
}

/// Scans `bytes`, accepting the longest valid prefix of whole,
/// checksum-passing, decodable frames.
pub(crate) fn scan(bytes: &[u8]) -> Scan {
    let mut records = Vec::new();
    let mut offset = 0usize;
    while let Some(header) = bytes.get(offset..offset + FRAME_HEADER) {
        let len = u32::from_le_bytes(header[..4].try_into().expect("4 bytes")) as usize;
        if len > MAX_PAYLOAD {
            break;
        }
        let frame_len = FRAME_HEADER + len;
        let Some(frame) = bytes.get(offset..offset + frame_len) else {
            break;
        };
        let Some((key, _)) = decode_frame(frame) else {
            break;
        };
        records.push(ScannedRecord {
            offset: offset as u64,
            len: u32::try_from(frame_len).expect("frame fits u32"),
            lanes: hash_lanes(key.as_bytes()),
        });
        offset += frame_len;
    }
    Scan {
        records,
        valid_len: offset as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn output(body: &str, degraded: bool, stats: Option<&str>) -> JobOutput {
        JobOutput {
            body: Arc::new(body.to_owned()),
            degraded,
            stats: stats.map(|s| Arc::new(s.to_owned())),
        }
    }

    #[test]
    fn records_round_trip_with_flags_and_stats() {
        for (degraded, stats) in [
            (false, None),
            (true, None),
            (false, Some(r#"{"wall":1}"#)),
            (true, Some("")),
        ] {
            let out = output(r#"{"makespan":4.0}"#, degraded, stats);
            let frame = encode_record("key{json}", &out);
            let (key, got) = decode_frame(&frame).expect("decodes");
            assert_eq!(key, "key{json}");
            assert_eq!(got.body.as_str(), out.body.as_str());
            assert_eq!(got.degraded, degraded);
            assert_eq!(got.stats.as_deref().map(String::as_str), stats);
        }
    }

    #[test]
    fn any_flipped_byte_fails_the_decode() {
        let frame = encode_record("k", &output("body", false, None));
        for i in 0..frame.len() {
            let mut bad = frame.clone();
            bad[i] ^= 0x40;
            // Either the frame no longer decodes, or (for flag/length
            // bits that keep the checksum valid — impossible here since
            // the checksum covers the payload and header mismatches are
            // structural) it must not silently alter the key or body.
            if let Some((key, out)) = decode_frame(&bad) {
                panic!(
                    "flip at byte {i} still decoded (key={key:?}, body={:?})",
                    out.body
                );
            }
        }
    }

    #[test]
    fn scan_accepts_the_longest_valid_prefix() {
        let mut bytes = Vec::new();
        for i in 0..4 {
            bytes.extend_from_slice(&encode_record(
                &format!("key-{i}"),
                &output(&format!("body-{i}"), false, None),
            ));
        }
        let full = scan(&bytes);
        assert_eq!(full.records.len(), 4);
        assert_eq!(full.valid_len, bytes.len() as u64);

        // Corrupt the third record: the first two survive, the rest are
        // rejected even though record four is intact (offsets past a
        // corrupt frame cannot be trusted).
        let third = full.records[2].offset as usize + FRAME_HEADER + 2;
        let mut corrupt = bytes.clone();
        corrupt[third] ^= 0xff;
        let partial = scan(&corrupt);
        assert_eq!(partial.records.len(), 2);
        assert_eq!(partial.valid_len, full.records[2].offset);

        // Torn tail: half a frame at the end drops only that frame.
        let torn = &bytes[..bytes.len() - 7];
        let tail = scan(torn);
        assert_eq!(tail.records.len(), 3);
    }

    #[test]
    fn absurd_length_prefix_stops_the_scan() {
        let mut bytes = vec![0xffu8; 64]; // length prefix ~4 GiB
        bytes[..4].copy_from_slice(&u32::MAX.to_le_bytes());
        let s = scan(&bytes);
        assert!(s.records.is_empty());
        assert_eq!(s.valid_len, 0);
    }
}
