//! Canonical JSON rendering and content hashing for the
//! content-addressed schedule cache.
//!
//! Two requests describe the same scheduling problem iff their
//! *canonical* renderings are byte-identical: objects print with keys
//! sorted ascending at every nesting level, arrays keep their order
//! (JSON arrays are ordered data), and numbers/strings print exactly as
//! the vendored `serde_json` writer prints them. The canonical string is
//! the cache key — collisions are impossible by construction — while
//! [`content_hash`] derives the short hex job id shown in URLs and
//! logs.

use serde::{Number, Value};

/// Renders `value` canonically: compact, object keys sorted ascending
/// (bytewise) at every level. Insensitive to the key order of the
/// incoming JSON text.
#[must_use]
pub fn canonical_string(value: &Value) -> String {
    let mut out = String::new();
    write_canonical(&mut out, value);
    out
}

fn write_canonical(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(out, *n),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_canonical(out, item);
            }
            out.push(']');
        }
        Value::Object(m) => {
            let mut entries: Vec<(&String, &Value)> = m.iter().collect();
            entries.sort_by(|a, b| a.0.cmp(b.0));
            out.push('{');
            for (i, (k, item)) in entries.into_iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, k);
                out.push(':');
                write_canonical(out, item);
            }
            out.push('}');
        }
    }
}

/// Mirrors the vendored `serde_json` number printer so a value and its
/// canonical form agree digit for digit (floats keep a `.0` marker,
/// non-finite floats collapse to `null`).
fn write_number(out: &mut String, n: Number) {
    match n {
        Number::PosInt(u) => out.push_str(&u.to_string()),
        Number::NegInt(i) => out.push_str(&i.to_string()),
        Number::Float(f) => {
            if f.is_finite() {
                let s = f.to_string();
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
    }
}

/// Mirrors the vendored `serde_json` string escaper.
fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// 64-bit FNV-1a over `bytes`, starting from `seed`.
fn fnv1a(bytes: &[u8], seed: u64) -> u64 {
    bytes
        .iter()
        .fold(seed, |h, &b| (h ^ u64::from(b)).wrapping_mul(FNV_PRIME))
}

/// 64-bit FNV-1a over `bytes` from the standard offset basis — the
/// record checksum of the crash-safe job journal ([`crate::journal`]).
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    fnv1a(bytes, FNV_OFFSET)
}

/// The two independent 64-bit FNV-1a lanes behind [`content_hash`],
/// exposed numerically so the persistent store's packed index
/// ([`crate::store`]) can record them without hex round-trips.
#[must_use]
pub(crate) fn hash_lanes(bytes: &[u8]) -> (u64, u64) {
    (
        fnv1a(bytes, FNV_OFFSET),
        fnv1a(bytes, FNV_OFFSET ^ 0x9e37_79b9_7f4a_7c15),
    )
}

/// 32-hex-digit content hash of a canonical string: two independent
/// 64-bit FNV-1a lanes (distinct seeds). Used as the job id; the cache
/// itself is keyed by the full canonical string, so a hash collision can
/// at worst alias two job-status URLs, never corrupt a cached schedule.
#[must_use]
pub fn content_hash(canonical: &str) -> String {
    let (a, b) = hash_lanes(canonical.as_bytes());
    format!("{a:016x}{b:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn canon(text: &str) -> String {
        canonical_string(&serde_json::from_str::<Value>(text).expect("valid JSON"))
    }

    #[test]
    fn key_is_insensitive_to_object_key_order() {
        let a = canon(r#"{"platform":"mesh:2x2","graph":{"b":1,"a":[1,2]},"scheduler":"eas"}"#);
        let b = canon(r#"{"scheduler":"eas","graph":{"a":[1,2],"b":1},"platform":"mesh:2x2"}"#);
        assert_eq!(a, b);
        assert_eq!(content_hash(&a), content_hash(&b));
    }

    #[test]
    fn key_sorts_nested_objects_at_every_level() {
        let a = canon(r#"{"outer":{"z":{"k":1,"a":2},"a":0}}"#);
        assert_eq!(a, r#"{"outer":{"a":0,"z":{"a":2,"k":1}}}"#);
    }

    #[test]
    fn arrays_keep_their_order() {
        assert_ne!(canon("[1,2]"), canon("[2,1]"));
    }

    #[test]
    fn value_changes_change_the_key() {
        assert_ne!(
            canon(r#"{"a":1,"b":2}"#),
            canon(r#"{"a":1,"b":3}"#),
            "different payloads must not collide"
        );
    }

    #[test]
    fn numbers_render_like_serde_json() {
        assert_eq!(canon("[2.0, 2, -3, 1.5]"), "[2.0,2,-3,1.5]");
    }

    #[test]
    fn strings_escape_like_serde_json() {
        let v = Value::String("a\"b\n\u{1}".to_owned());
        assert_eq!(
            canonical_string(&v),
            serde_json::to_string(&v).expect("serializes")
        );
    }

    #[test]
    fn whitespace_in_the_source_text_is_irrelevant() {
        assert_eq!(
            canon("{\"a\": 1,\n  \"b\": [1, 2]}"),
            canon(r#"{"a":1,"b":[1,2]}"#)
        );
    }

    #[test]
    fn hash_is_stable_and_hex() {
        let h = content_hash("hello");
        assert_eq!(h.len(), 32);
        assert!(h.chars().all(|c| c.is_ascii_hexdigit()));
        assert_eq!(h, content_hash("hello"));
        assert_ne!(h, content_hash("hello!"));
    }
}
