//! Crash-safe append-only job journal.
//!
//! The journal makes async admissions durable: every accepted async job
//! is recorded **before** its `202 Accepted` leaves the server
//! (write-ahead), and every completion is recorded when the worker
//! finishes. After a crash — including `kill -9` — the engine replays
//! the journal on startup: finished jobs are restored with their exact
//! response bytes (so polling them answers byte-identically to the
//! pre-crash server), and accepted-but-unfinished jobs are re-enqueued
//! and re-run. Because scheduling is deterministic, the re-run produces
//! the same bytes the lost run would have.
//!
//! # On-disk format
//!
//! A flat sequence of length-prefixed, checksummed frames:
//!
//! ```text
//! [u32 LE payload length][u64 LE FNV-1a checksum][JSON payload]
//! ```
//!
//! Each [`append`](Journal::append) is a single `write(2)` of one whole
//! frame, so a crash can only ever truncate the **tail** of the file
//! mid-frame. [`Journal::open`] stops replay at the first short or
//! checksum-failing frame and truncates the file back to the last
//! intact record, so recovery never trusts torn bytes. No `fsync` is
//! issued: data handed to `write(2)` survives process death (it lives
//! in the page cache); only whole-machine power loss can lose the tail,
//! and the truncating replay handles that too.

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use serde::{Map, Value};

use crate::hash::fnv1a64;

/// Bytes of frame header: u32 length + u64 checksum.
const FRAME_HEADER: usize = 4 + 8;

/// One journal record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Record {
    /// An async submission was admitted; `body` is the original request
    /// body, so replay can re-resolve and re-run the job.
    Accepted {
        /// Content-hash job id.
        id: String,
        /// The original `POST /v1/schedule` body.
        body: String,
    },
    /// The job finished; `body` is the exact response body served.
    Done {
        /// Content-hash job id.
        id: String,
        /// Whether the response came from the degraded EDF fallback.
        degraded: bool,
        /// The rendered response body.
        body: String,
    },
    /// The job finished and its response bytes are durable in the
    /// persistent schedule store ([`crate::store`]) — the journal
    /// records only the fact, not the bytes, which keeps it bounded.
    /// Replay resolves the body from the store by the key derived from
    /// the `Accepted` record; a store miss falls back to a re-run
    /// (deterministic scheduling reproduces the same bytes).
    DoneStored {
        /// Content-hash job id.
        id: String,
        /// Whether the response came from the degraded EDF fallback.
        degraded: bool,
    },
    /// The job failed terminally.
    Failed {
        /// Content-hash job id.
        id: String,
        /// The failure message.
        error: String,
    },
}

impl Record {
    /// The job id this record belongs to.
    #[must_use]
    pub fn id(&self) -> &str {
        match self {
            Record::Accepted { id, .. }
            | Record::Done { id, .. }
            | Record::DoneStored { id, .. }
            | Record::Failed { id, .. } => id,
        }
    }

    fn to_json(&self) -> String {
        let mut m = Map::new();
        match self {
            Record::Accepted { id, body } => {
                m.insert("t", Value::String("acc".to_owned()));
                m.insert("id", Value::String(id.clone()));
                m.insert("body", Value::String(body.clone()));
            }
            Record::Done { id, degraded, body } => {
                m.insert("t", Value::String("done".to_owned()));
                m.insert("id", Value::String(id.clone()));
                m.insert("degraded", Value::Bool(*degraded));
                m.insert("body", Value::String(body.clone()));
            }
            Record::DoneStored { id, degraded } => {
                m.insert("t", Value::String("done-stored".to_owned()));
                m.insert("id", Value::String(id.clone()));
                m.insert("degraded", Value::Bool(*degraded));
            }
            Record::Failed { id, error } => {
                m.insert("t", Value::String("fail".to_owned()));
                m.insert("id", Value::String(id.clone()));
                m.insert("error", Value::String(error.clone()));
            }
        }
        serde_json::to_string(&Value::Object(m)).expect("serialization is infallible")
    }

    fn from_json(text: &str) -> Option<Record> {
        let value: Value = serde_json::from_str(text).ok()?;
        let obj = match &value {
            Value::Object(m) => m,
            _ => return None,
        };
        let field = |name: &str| -> Option<String> {
            match obj.get(name) {
                Some(Value::String(s)) => Some(s.clone()),
                _ => None,
            }
        };
        let id = field("id")?;
        match field("t")?.as_str() {
            "acc" => Some(Record::Accepted {
                id,
                body: field("body")?,
            }),
            "done" => Some(Record::Done {
                id,
                degraded: matches!(obj.get("degraded"), Some(Value::Bool(true))),
                body: field("body")?,
            }),
            "done-stored" => Some(Record::DoneStored {
                id,
                degraded: matches!(obj.get("degraded"), Some(Value::Bool(true))),
            }),
            "fail" => Some(Record::Failed {
                id,
                error: field("error")?,
            }),
            _ => None,
        }
    }
}

/// Encodes one record as a complete frame: length prefix, checksum,
/// JSON payload.
fn encode_frame(record: &Record) -> Vec<u8> {
    let payload = record.to_json();
    let bytes = payload.as_bytes();
    let mut frame = Vec::with_capacity(FRAME_HEADER + bytes.len());
    frame.extend_from_slice(
        &u32::try_from(bytes.len())
            .expect("record fits u32")
            .to_le_bytes(),
    );
    frame.extend_from_slice(&fnv1a64(bytes).to_le_bytes());
    frame.extend_from_slice(bytes);
    frame
}

/// An open journal file; appends are serialized through a mutex.
pub struct Journal {
    file: Mutex<File>,
    path: PathBuf,
}

impl Journal {
    /// Opens (creating if absent) the journal at `path`, replaying every
    /// intact record already on disk. A torn or corrupt tail — the
    /// signature of a crash mid-append — is truncated away so new
    /// records extend the last intact one.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures (open, read, truncate).
    pub fn open(path: impl AsRef<Path>) -> io::Result<(Journal, Vec<Record>)> {
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        let mut buf = Vec::new();
        file.read_to_end(&mut buf)?;

        let mut records = Vec::new();
        let mut offset = 0usize;
        while let Some(header) = buf.get(offset..offset + FRAME_HEADER) {
            let len = u32::from_le_bytes(header[..4].try_into().expect("4 bytes")) as usize;
            let sum = u64::from_le_bytes(header[4..].try_into().expect("8 bytes"));
            let Some(payload) = buf.get(offset + FRAME_HEADER..offset + FRAME_HEADER + len) else {
                break;
            };
            if fnv1a64(payload) != sum {
                break;
            }
            let Some(record) = std::str::from_utf8(payload)
                .ok()
                .and_then(Record::from_json)
            else {
                break;
            };
            records.push(record);
            offset += FRAME_HEADER + len;
        }

        if offset as u64 != buf.len() as u64 {
            file.set_len(offset as u64)?;
        }
        file.seek(SeekFrom::End(0))?;
        Ok((
            Journal {
                file: Mutex::new(file),
                path,
            },
            records,
        ))
    }

    /// Appends one record as a single atomic-enough write: the whole
    /// frame goes down in one `write_all`, so a crash can only truncate
    /// it, never interleave it with another record.
    ///
    /// # Errors
    ///
    /// Propagates filesystem write failures.
    pub fn append(&self, record: &Record) -> io::Result<()> {
        self.file
            .lock()
            .expect("journal lock")
            .write_all(&encode_frame(record))
    }

    /// Rewrites the journal to hold exactly `keep`, atomically: the
    /// replacement is written to a sibling temp file and renamed over
    /// the journal, so a crash at any point leaves either the old or
    /// the new journal intact, never a mix. Used at startup once
    /// replayed response bytes are durable in the schedule store —
    /// records whose bodies the store can serve no longer need to ride
    /// in the journal, which keeps it bounded across restart cycles.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures; on error the old journal (and
    /// the open handle) remain in effect.
    pub fn compact(&self, keep: &[Record]) -> io::Result<()> {
        let mut bytes = Vec::new();
        for record in keep {
            bytes.extend_from_slice(&encode_frame(record));
        }
        let mut tmp_name = self.path.as_os_str().to_owned();
        tmp_name.push(".compact-tmp");
        let tmp = PathBuf::from(tmp_name);

        // Hold the append lock across the swap so no record lands in
        // the file we are about to replace.
        let mut guard = self.file.lock().expect("journal lock");
        std::fs::write(&tmp, &bytes)?;
        std::fs::rename(&tmp, &self.path)?;
        let mut file = OpenOptions::new().read(true).write(true).open(&self.path)?;
        file.seek(SeekFrom::End(0))?;
        *guard = file;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    /// A unique temp path per test, cleaned up on drop.
    struct TempJournal(PathBuf);

    impl TempJournal {
        fn new(name: &str) -> Self {
            let path =
                std::env::temp_dir().join(format!("noc-journal-{}-{name}", std::process::id()));
            let _ = std::fs::remove_file(&path);
            TempJournal(path)
        }
    }

    impl Drop for TempJournal {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.0);
        }
    }

    fn sample() -> Vec<Record> {
        vec![
            Record::Accepted {
                id: "a1".into(),
                body: r#"{"graph":{},"platform":"mesh:2x2"}"#.into(),
            },
            Record::Done {
                id: "a1".into(),
                degraded: true,
                body: r#"{"scheduler":"edf"}"#.into(),
            },
            Record::Failed {
                id: "b2".into(),
                error: "boom".into(),
            },
        ]
    }

    #[test]
    fn records_round_trip_across_reopen() {
        let tmp = TempJournal::new("round-trip");
        let (journal, replayed) = Journal::open(&tmp.0).expect("opens");
        assert!(replayed.is_empty());
        for r in sample() {
            journal.append(&r).expect("appends");
        }
        drop(journal);
        let (_journal, replayed) = Journal::open(&tmp.0).expect("reopens");
        assert_eq!(replayed, sample());
    }

    #[test]
    fn torn_tail_is_truncated_and_appendable() {
        let tmp = TempJournal::new("torn-tail");
        let (journal, _) = Journal::open(&tmp.0).expect("opens");
        for r in sample() {
            journal.append(&r).expect("appends");
        }
        drop(journal);
        // Simulate a crash mid-append: chop half the last frame off.
        let bytes = std::fs::read(&tmp.0).expect("reads");
        std::fs::write(&tmp.0, &bytes[..bytes.len() - 10]).expect("truncates");

        let (journal, replayed) = Journal::open(&tmp.0).expect("recovers");
        assert_eq!(replayed, sample()[..2], "intact prefix survives");
        let extra = Record::Failed {
            id: "c3".into(),
            error: "later".into(),
        };
        journal.append(&extra).expect("appends after recovery");
        drop(journal);
        let (_journal, replayed) = Journal::open(&tmp.0).expect("reopens");
        assert_eq!(replayed.len(), 3);
        assert_eq!(replayed[2], extra);
    }

    #[test]
    fn corrupt_checksum_stops_replay() {
        let tmp = TempJournal::new("corrupt");
        let (journal, _) = Journal::open(&tmp.0).expect("opens");
        for r in sample() {
            journal.append(&r).expect("appends");
        }
        drop(journal);
        let mut bytes = std::fs::read(&tmp.0).expect("reads");
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff; // flip a payload byte of the final record
        std::fs::write(&tmp.0, &bytes).expect("writes");
        let (_journal, replayed) = Journal::open(&tmp.0).expect("recovers");
        assert_eq!(replayed, sample()[..2], "corrupt record is dropped");
    }

    #[test]
    fn empty_and_missing_files_replay_nothing() {
        let tmp = TempJournal::new("empty");
        let (_journal, replayed) = Journal::open(&tmp.0).expect("creates");
        assert!(replayed.is_empty());
    }

    #[test]
    fn done_stored_records_round_trip() {
        let tmp = TempJournal::new("done-stored");
        let record = Record::DoneStored {
            id: "a1".into(),
            degraded: true,
        };
        let (journal, _) = Journal::open(&tmp.0).expect("opens");
        journal.append(&record).expect("appends");
        drop(journal);
        let (_journal, replayed) = Journal::open(&tmp.0).expect("reopens");
        assert_eq!(replayed, vec![record]);
    }

    #[test]
    fn compaction_keeps_exactly_the_requested_records_and_stays_appendable() {
        let tmp = TempJournal::new("compact");
        let (journal, _) = Journal::open(&tmp.0).expect("opens");
        for r in sample() {
            journal.append(&r).expect("appends");
        }
        let size_before = std::fs::metadata(&tmp.0).expect("meta").len();
        let keep = vec![sample()[0].clone()];
        journal.compact(&keep).expect("compacts");
        assert!(
            std::fs::metadata(&tmp.0).expect("meta").len() < size_before,
            "compaction must shrink the journal"
        );
        let extra = Record::DoneStored {
            id: "a1".into(),
            degraded: false,
        };
        journal.append(&extra).expect("appends after compaction");
        drop(journal);
        let (_journal, replayed) = Journal::open(&tmp.0).expect("reopens");
        assert_eq!(replayed, vec![keep[0].clone(), extra]);
    }

    #[test]
    fn compaction_to_empty_is_valid() {
        let tmp = TempJournal::new("compact-empty");
        let (journal, _) = Journal::open(&tmp.0).expect("opens");
        for r in sample() {
            journal.append(&r).expect("appends");
        }
        journal.compact(&[]).expect("compacts");
        assert_eq!(std::fs::metadata(&tmp.0).expect("meta").len(), 0);
        drop(journal);
        let (_journal, replayed) = Journal::open(&tmp.0).expect("reopens");
        assert!(replayed.is_empty());
    }
}
