//! Cluster-wide request observability: trace contexts, the per-node
//! flight recorder, and the structured JSONL service log.
//!
//! A request is traced from ingress: the server mints (or accepts
//! inbound) a fixed-format trace id, allocates a root span, and every
//! internal hop — peer cache-fill lookups, replication deliveries,
//! anti-entropy repairs, store and journal writes — records a child
//! span tagged `(node, span, parent_span, stage, wall_us, outcome)`.
//! Spans land in a bounded ring buffer (the *flight recorder*) that
//! `GET /v1/internal/trace/<id>` serves per node; requests slower
//! than the `--slow-ms` threshold additionally snapshot their span
//! tree into a separate slow-request ring served by
//! `GET /v1/internal/slow`.
//!
//! Trace metadata travels in the `X-Noc-Trace` / `X-Noc-Span`
//! headers only — never in cache keys, stored records, or response
//! bodies — so tracing can never perturb the byte-determinism
//! guarantees the serving tier makes. With the recorder disabled
//! (`--flight-recorder-entries 0`) the hot path performs no
//! allocation and no locking for tracing.

use std::collections::VecDeque;
use std::fs::OpenOptions;
use std::io::{self, BufWriter, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{SystemTime, UNIX_EPOCH};

use serde::{Deserialize, Serialize};

use crate::hash::fnv1a64;

/// Bound of the slow-request ring — small and fixed: slow requests
/// are the exception, and each entry carries a full span snapshot.
const SLOW_RING_MAX: usize = 64;

/// The trace context of one in-flight request on one node.
///
/// `span` is this node's span id for the current unit of work;
/// `parent` is the span id of the upstream hop (0 for a root). An
/// untraced context (recorder disabled, or a background path with no
/// originating request) has an empty id and records nothing.
#[derive(Debug, Clone)]
pub struct TraceCtx {
    /// The hex trace id shared by every hop of the request.
    pub id: Arc<str>,
    /// This unit of work's span id (unique across the cluster).
    pub span: u64,
    /// The upstream span id, 0 when this is the root.
    pub parent: u64,
}

impl TraceCtx {
    /// A context that records nothing — the default for paths
    /// entered outside a traced request (direct engine calls, tests).
    #[must_use]
    pub fn untraced() -> TraceCtx {
        TraceCtx {
            id: Arc::from(""),
            span: 0,
            parent: 0,
        }
    }

    /// Whether this context belongs to a live trace.
    #[must_use]
    pub fn is_traced(&self) -> bool {
        !self.id.is_empty()
    }
}

/// One recorded span in the flight-recorder ring. Stage and outcome
/// are static so recording never allocates for them.
struct SpanRec {
    trace: Arc<str>,
    span: u64,
    parent: u64,
    stage: &'static str,
    outcome: &'static str,
    wall_us: u64,
}

/// One slow-request entry: the root outcome plus a snapshot of the
/// trace's spans at finish time.
struct SlowRec {
    trace: Arc<str>,
    endpoint: &'static str,
    outcome: &'static str,
    wall_us: u64,
    spans: Vec<SpanWire>,
}

/// The wire form of one span, as served by
/// `GET /v1/internal/trace/<id>` and embedded in slow entries.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SpanWire {
    /// The trace id the span belongs to.
    pub trace: String,
    /// The recording node's ring identity.
    pub node: String,
    /// The span id (unique across the cluster).
    pub span: u64,
    /// The parent span id, 0 for roots.
    pub parent_span: u64,
    /// What the span measured (endpoint label or internal stage).
    pub stage: String,
    /// Wall time of the unit of work, microseconds.
    pub wall_us: u64,
    /// How it ended (`hit`, `peer`, `miss`, `sent`, `failed`, …).
    pub outcome: String,
}

/// The body of `GET /v1/internal/trace/<id>`: one node's spans for
/// the trace.
#[derive(Debug, Serialize, Deserialize)]
pub struct TraceDump {
    /// The answering node's ring identity.
    pub node: String,
    /// Every span this node recorded for the trace, oldest first.
    pub spans: Vec<SpanWire>,
}

/// One entry of the slow-request ring on the wire.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SlowWire {
    /// The slow request's trace id.
    pub trace: String,
    /// The recording node's ring identity.
    pub node: String,
    /// The request's endpoint label.
    pub endpoint: String,
    /// The root span's outcome.
    pub outcome: String,
    /// End-to-end wall time on this node, microseconds.
    pub wall_us: u64,
    /// The span tree snapshot taken when the request finished.
    pub spans: Vec<SpanWire>,
}

/// The body of `GET /v1/internal/slow`: one node's slow ring.
#[derive(Debug, Serialize, Deserialize)]
pub struct SlowDump {
    /// The answering node's ring identity.
    pub node: String,
    /// Slow entries, oldest first.
    pub slow: Vec<SlowWire>,
}

/// The per-node flight recorder: a bounded ring of recent spans plus
/// a separate bounded ring of slow-request snapshots.
///
/// Recording takes one short mutex hold and allocates nothing beyond
/// the ring slot (trace ids are shared `Arc<str>`s, stages and
/// outcomes are `&'static str`). With `entries == 0` every method is
/// an early-return no-op.
pub struct Recorder {
    node: Arc<str>,
    entries: usize,
    slow_us: u64,
    /// Upper 32 bits of every span id this node allocates — derived
    /// from the node identity so ids from different nodes cannot
    /// collide in an assembled tree.
    node_lane: u64,
    /// Per-process mint seed: node hash mixed with startup time, so
    /// restarts never reuse trace ids.
    seed: u64,
    seq: AtomicU64,
    /// Shared empty id handed to untraced contexts without allocating.
    empty: Arc<str>,
    spans: Mutex<VecDeque<SpanRec>>,
    slow: Mutex<VecDeque<SlowRec>>,
}

impl Recorder {
    /// Builds a recorder for `node` holding up to `entries` spans;
    /// requests at or above `slow_ms` snapshot into the slow ring.
    /// `entries == 0` disables recording entirely.
    #[must_use]
    pub fn new(node: &str, entries: usize, slow_ms: u64) -> Recorder {
        let node_hash = fnv1a64(node.as_bytes());
        let nanos = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| u64::try_from(d.as_nanos() & u128::from(u64::MAX)).unwrap_or(0))
            .unwrap_or(0);
        Recorder {
            node: Arc::from(node),
            entries,
            slow_us: slow_ms.saturating_mul(1000),
            node_lane: node_hash & 0xffff_ffff_0000_0000,
            seed: node_hash ^ nanos,
            seq: AtomicU64::new(0),
            empty: Arc::from(""),
            spans: Mutex::new(VecDeque::new()),
            slow: Mutex::new(VecDeque::new()),
        }
    }

    /// A recorder that records nothing (the default for engines built
    /// without observability configuration).
    #[must_use]
    pub fn disabled() -> Recorder {
        Recorder::new("", 0, 0)
    }

    /// Whether the recorder accepts spans.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.entries > 0
    }

    /// The recording node's identity.
    #[must_use]
    pub fn node(&self) -> &str {
        &self.node
    }

    fn next_seq(&self) -> u64 {
        self.seq.fetch_add(1, Ordering::Relaxed).wrapping_add(1)
    }

    /// Allocates a span id: the node lane in the upper bits, a local
    /// counter in the lower. Never 0 (0 means "no parent").
    fn next_span(&self) -> u64 {
        self.node_lane | (self.next_seq() & 0xffff_ffff)
    }

    /// Builds the ingress context for a request: accepts a valid
    /// client-supplied trace id (hex, 8–64 chars) for correlation,
    /// otherwise mints a fresh 32-hex id. The inbound `X-Noc-Span`
    /// value, when parseable, becomes the root's parent so
    /// cross-node hops connect.
    #[must_use]
    pub fn ingress(&self, trace: Option<&str>, span: Option<&str>) -> TraceCtx {
        if !self.enabled() {
            return TraceCtx {
                id: Arc::clone(&self.empty),
                span: 0,
                parent: 0,
            };
        }
        let id: Arc<str> = match trace {
            Some(t) if valid_trace_id(t) => Arc::from(t),
            _ => Arc::from(format!("{:016x}{:016x}", self.seed, self.next_seq()).as_str()),
        };
        let parent = span
            .and_then(|s| u64::from_str_radix(s, 16).ok())
            .unwrap_or(0);
        TraceCtx {
            id,
            span: self.next_span(),
            parent,
        }
    }

    /// A child context of `parent` on this node (for internal hops
    /// like peer fills, store writes, compute). No-op clone of the
    /// empty context when untraced.
    #[must_use]
    pub fn child(&self, parent: &TraceCtx) -> TraceCtx {
        if !self.enabled() || !parent.is_traced() {
            return TraceCtx {
                id: Arc::clone(&self.empty),
                span: 0,
                parent: 0,
            };
        }
        TraceCtx {
            id: Arc::clone(&parent.id),
            span: self.next_span(),
            parent: parent.span,
        }
    }

    /// A child context under an explicit `(trace id, parent span)`
    /// pair — used by the replication queue, whose entries carry the
    /// originating trace across threads.
    #[must_use]
    pub fn child_of(&self, id: &Arc<str>, parent: u64) -> TraceCtx {
        if !self.enabled() || id.is_empty() {
            return TraceCtx {
                id: Arc::clone(&self.empty),
                span: 0,
                parent: 0,
            };
        }
        TraceCtx {
            id: Arc::clone(id),
            span: self.next_span(),
            parent,
        }
    }

    /// Mints a fresh root context (used by background work that has
    /// no originating request, like anti-entropy sweep rounds).
    #[must_use]
    pub fn mint(&self) -> TraceCtx {
        self.ingress(None, None)
    }

    /// Records one finished span. No-op when the recorder is
    /// disabled or the context is untraced.
    pub fn record(&self, ctx: &TraceCtx, stage: &'static str, outcome: &'static str, wall_us: u64) {
        if !self.enabled() || !ctx.is_traced() {
            return;
        }
        let mut spans = self.spans.lock().expect("recorder lock");
        if spans.len() >= self.entries {
            spans.pop_front();
        }
        spans.push_back(SpanRec {
            trace: Arc::clone(&ctx.id),
            span: ctx.span,
            parent: ctx.parent,
            stage,
            outcome,
            wall_us,
        });
    }

    /// Records the request's root span and, when `wall_us` reaches
    /// the slow threshold, snapshots the trace's spans into the slow
    /// ring.
    pub fn finish_root(
        &self,
        ctx: &TraceCtx,
        endpoint: &'static str,
        outcome: &'static str,
        wall_us: u64,
    ) {
        if !self.enabled() || !ctx.is_traced() {
            return;
        }
        self.record(ctx, endpoint, outcome, wall_us);
        if wall_us < self.slow_us {
            return;
        }
        let spans = self.trace(&ctx.id);
        let mut slow = self.slow.lock().expect("slow ring lock");
        if slow.len() >= SLOW_RING_MAX {
            slow.pop_front();
        }
        slow.push_back(SlowRec {
            trace: Arc::clone(&ctx.id),
            endpoint,
            outcome,
            wall_us,
            spans,
        });
    }

    /// Every span this node holds for trace `id`, oldest first.
    #[must_use]
    pub fn trace(&self, id: &str) -> Vec<SpanWire> {
        if !self.enabled() {
            return Vec::new();
        }
        let spans = self.spans.lock().expect("recorder lock");
        spans
            .iter()
            .filter(|s| &*s.trace == id)
            .map(|s| self.wire(s))
            .collect()
    }

    /// The slow ring, oldest first.
    #[must_use]
    pub fn slow(&self) -> Vec<SlowWire> {
        if !self.enabled() {
            return Vec::new();
        }
        let slow = self.slow.lock().expect("slow ring lock");
        slow.iter()
            .map(|s| SlowWire {
                trace: s.trace.to_string(),
                node: self.node.to_string(),
                endpoint: s.endpoint.to_owned(),
                outcome: s.outcome.to_owned(),
                wall_us: s.wall_us,
                spans: s.spans.clone(),
            })
            .collect()
    }

    fn wire(&self, s: &SpanRec) -> SpanWire {
        SpanWire {
            trace: s.trace.to_string(),
            node: self.node.to_string(),
            span: s.span,
            parent_span: s.parent,
            stage: s.stage.to_owned(),
            wall_us: s.wall_us,
            outcome: s.outcome.to_owned(),
        }
    }
}

/// Accepts 8–64 hex chars as a client-supplied trace id; anything
/// else gets a freshly minted id instead.
fn valid_trace_id(s: &str) -> bool {
    (8..=64).contains(&s.len()) && s.bytes().all(|b| b.is_ascii_hexdigit())
}

/// Microseconds since `started`, saturating — the span wall-time
/// helper every hop uses.
#[must_use]
pub fn span_us(started: std::time::Instant) -> u64 {
    u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX)
}

/// Service-log severities.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LogLevel {
    /// Routine lifecycle events (journal replay, peer recovery).
    Info,
    /// Degradations the service absorbed (compaction failure,
    /// rejected admissions, peers going Down).
    Warn,
    /// Lost durability or capability (store quarantine, journal
    /// append failure).
    Error,
}

impl LogLevel {
    /// The level's wire/label name.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            LogLevel::Info => "info",
            LogLevel::Warn => "warn",
            LogLevel::Error => "error",
        }
    }
}

/// Per-level event counters, rendered as
/// `noc_svc_log_events_total{level}`.
#[derive(Debug, Default)]
pub struct LogCounters {
    /// Events logged at info.
    pub info: AtomicU64,
    /// Events logged at warn.
    pub warn: AtomicU64,
    /// Events logged at error.
    pub error: AtomicU64,
}

/// The structured service event log: one JSON object per line, to a
/// file when `serve --log-json <path>` is given, to stderr otherwise.
///
/// Every line carries `ts_ms`, `level`, `event`, `node`, `msg`, plus
/// event-specific fields. The log replaces the service's ad-hoc
/// `eprintln!` diagnostics so operators get one parseable stream.
pub struct ServiceLog {
    node: String,
    sink: Option<Mutex<BufWriter<std::fs::File>>>,
    counters: Arc<LogCounters>,
}

impl ServiceLog {
    /// Opens the log. `path == None` keeps events on stderr (still
    /// structured). The file is appended to, never truncated.
    ///
    /// # Errors
    ///
    /// Fails when the file cannot be opened for append.
    pub fn open(
        path: Option<&str>,
        node: &str,
        counters: Arc<LogCounters>,
    ) -> io::Result<ServiceLog> {
        let sink = match path {
            Some(p) => {
                let file = OpenOptions::new().create(true).append(true).open(p)?;
                Some(Mutex::new(BufWriter::new(file)))
            }
            None => None,
        };
        Ok(ServiceLog {
            node: node.to_owned(),
            sink,
            counters,
        })
    }

    /// The process-wide stderr fallback, for components that can be
    /// built before (or without) a configured log.
    pub fn stderr_fallback() -> Arc<ServiceLog> {
        static FALLBACK: OnceLock<Arc<ServiceLog>> = OnceLock::new();
        Arc::clone(FALLBACK.get_or_init(|| {
            Arc::new(ServiceLog {
                node: String::new(),
                sink: None,
                counters: Arc::new(LogCounters::default()),
            })
        }))
    }

    /// Emits one structured event line.
    pub fn event(&self, level: LogLevel, event: &str, msg: &str, fields: &[(&str, &str)]) {
        match level {
            LogLevel::Info => &self.counters.info,
            LogLevel::Warn => &self.counters.warn,
            LogLevel::Error => &self.counters.error,
        }
        .fetch_add(1, Ordering::Relaxed);
        let ts_ms = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_millis())
            .unwrap_or(0);
        let mut line = String::with_capacity(96);
        line.push_str("{\"ts_ms\":");
        line.push_str(&ts_ms.to_string());
        line.push_str(",\"level\":\"");
        line.push_str(level.as_str());
        line.push_str("\",\"event\":");
        push_json_str(&mut line, event);
        line.push_str(",\"node\":");
        push_json_str(&mut line, &self.node);
        line.push_str(",\"msg\":");
        push_json_str(&mut line, msg);
        for (key, value) in fields {
            line.push(',');
            push_json_str(&mut line, key);
            line.push(':');
            push_json_str(&mut line, value);
        }
        line.push('}');
        match &self.sink {
            Some(sink) => {
                let mut writer = sink.lock().expect("log sink lock");
                let _ = writeln!(writer, "{line}");
                let _ = writer.flush();
            }
            None => eprintln!("{line}"),
        }
    }
}

/// Appends `s` as a JSON string literal (quoted, escaped).
fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_is_a_zero_cost_no_op() {
        let rec = Recorder::disabled();
        assert!(!rec.enabled());
        let ctx = rec.ingress(Some("deadbeefdeadbeef"), Some("1f"));
        assert!(!ctx.is_traced(), "disabled recorder mints no context");
        rec.record(&ctx, "peer_fill", "hit", 10);
        rec.finish_root(&ctx, "/v1/schedule", "hit", 10);
        assert!(rec.trace("deadbeefdeadbeef").is_empty());
        assert!(rec.slow().is_empty());
    }

    #[test]
    fn minted_trace_ids_are_32_hex_and_unique() {
        let rec = Recorder::new("127.0.0.1:9001", 16, 1000);
        let a = rec.ingress(None, None);
        let b = rec.ingress(None, None);
        for ctx in [&a, &b] {
            assert_eq!(ctx.id.len(), 32, "fixed-format id: {}", ctx.id);
            assert!(ctx.id.bytes().all(|c| c.is_ascii_hexdigit()));
        }
        assert_ne!(a.id, b.id);
        assert_ne!(a.span, b.span);
        assert_ne!(a.span, 0, "span 0 is reserved for 'no parent'");
    }

    #[test]
    fn inbound_ids_are_adopted_only_when_hex() {
        let rec = Recorder::new("n1", 16, 1000);
        let ok = rec.ingress(Some("00c0ffee00c0ffee"), Some("2a"));
        assert_eq!(&*ok.id, "00c0ffee00c0ffee");
        assert_eq!(ok.parent, 0x2a);
        let bad = rec.ingress(Some("not hex!"), None);
        assert_ne!(&*bad.id, "not hex!");
        assert_eq!(bad.id.len(), 32);
    }

    #[test]
    fn span_ring_is_bounded_and_filters_by_trace() {
        let rec = Recorder::new("n1", 4, 1000);
        let a = rec.ingress(None, None);
        let b = rec.ingress(None, None);
        for _ in 0..3 {
            rec.record(&rec.child(&a), "peer_fill", "hit", 5);
        }
        for _ in 0..3 {
            rec.record(&rec.child(&b), "peer_fill", "miss", 7);
        }
        let spans_a = rec.trace(&a.id);
        let spans_b = rec.trace(&b.id);
        assert!(spans_a.len() + spans_b.len() <= 4, "ring bound holds");
        assert_eq!(spans_b.len(), 3, "newest spans survive");
        assert!(spans_b
            .iter()
            .all(|s| s.trace == *b.id && s.outcome == "miss"));
        assert!(spans_a.iter().all(|s| s.trace == *a.id));
    }

    #[test]
    fn child_spans_connect_to_their_parent() {
        let rec = Recorder::new("n1", 16, 1000);
        let root = rec.ingress(None, None);
        let child = rec.child(&root);
        assert_eq!(child.parent, root.span);
        assert_eq!(child.id, root.id);
        let grand = rec.child(&child);
        assert_eq!(grand.parent, child.span);
    }

    #[test]
    fn slow_requests_snapshot_their_span_tree() {
        let rec = Recorder::new("n1", 16, 1);
        let fast = rec.ingress(None, None);
        rec.finish_root(&fast, "/v1/schedule", "hit", 10);
        assert!(rec.slow().is_empty(), "10 µs is under the 1 ms threshold");
        let slow = rec.ingress(None, None);
        rec.record(&rec.child(&slow), "compute", "ok", 900);
        rec.finish_root(&slow, "/v1/schedule", "miss", 1500);
        let ring = rec.slow();
        assert_eq!(ring.len(), 1);
        assert_eq!(ring[0].trace, *slow.id);
        assert_eq!(ring[0].wall_us, 1500);
        assert_eq!(
            ring[0].spans.len(),
            2,
            "snapshot holds the compute child and the root"
        );
    }

    #[test]
    fn service_log_writes_parseable_jsonl_and_counts_levels() {
        let dir = std::env::temp_dir().join(format!("noc-obs-log-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("svc.jsonl");
        let counters = Arc::new(LogCounters::default());
        let log = ServiceLog::open(
            Some(path.to_str().expect("utf8 path")),
            "127.0.0.1:9001",
            Arc::clone(&counters),
        )
        .expect("log opens");
        log.event(
            LogLevel::Info,
            "journal-replay",
            "replayed 3 records",
            &[("records", "3")],
        );
        log.event(
            LogLevel::Error,
            "store-degraded",
            "segment \"seg-0\" quarantined\nbad checksum",
            &[],
        );
        drop(log);
        let text = std::fs::read_to_string(&path).expect("log file");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in &lines {
            let value: serde_json::Value = serde_json::from_str(line).expect("line parses");
            let obj = value.as_object().expect("object");
            for key in ["ts_ms", "level", "event", "node", "msg"] {
                assert!(obj.get(key).is_some(), "line has {key}: {line}");
            }
        }
        assert!(lines[1].contains("\\n"), "newlines are escaped in place");
        assert_eq!(counters.info.load(Ordering::Relaxed), 1);
        assert_eq!(counters.error.load(Ordering::Relaxed), 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}
