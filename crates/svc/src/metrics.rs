//! Service metrics, rendered in Prometheus text exposition format.
//!
//! All counters are monotone and cheap (`AtomicU64`); the per-endpoint
//! request table and the scheduling-latency histogram sit behind a
//! mutex taken only on the affected events. Rendering iterates sorted
//! containers so `/metrics` output is deterministic for a given state —
//! the service's byte-stability discipline extends to its
//! observability surface.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::cluster::ClusterStats;
use crate::net::ReactorStats;
use crate::obs::LogCounters;
use crate::store::StoreStats;

/// Upper bounds (seconds) of the scheduling-latency histogram buckets;
/// an implicit `+Inf` bucket completes the set.
pub const LATENCY_BUCKETS: [f64; 12] = [
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
];

#[derive(Debug, Default)]
struct Histogram {
    /// Cumulative counts per bucket of [`LATENCY_BUCKETS`] (non-Inf).
    buckets: [u64; LATENCY_BUCKETS.len()],
    count: u64,
    sum: f64,
}

fn observe(h: &mut Histogram, seconds: f64) {
    h.count += 1;
    h.sum += seconds;
    for (i, bound) in LATENCY_BUCKETS.iter().enumerate() {
        if seconds <= *bound {
            h.buckets[i] += 1;
        }
    }
}

/// The service-wide metrics registry.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Requests served, keyed by (normalized endpoint, status code).
    requests: Mutex<BTreeMap<(String, u16), u64>>,
    /// Schedule-cache hits (response served from memory).
    pub cache_hits: AtomicU64,
    /// Schedule-cache misses (a scheduling job ran or was joined).
    pub cache_misses: AtomicU64,
    /// Requests coalesced onto an identical in-flight job
    /// (single-flight; counted in addition to the cache miss).
    pub coalesced: AtomicU64,
    /// Submissions rejected with 429 because the job queue was full.
    pub queue_rejected: AtomicU64,
    /// Scheduling jobs actually executed (cache misses that ran).
    pub schedules_executed: AtomicU64,
    /// Scheduling jobs that failed with a scheduler error.
    pub schedule_errors: AtomicU64,
    /// Jobs answered by the degraded EDF fallback after the compute
    /// budget expired.
    pub degraded: AtomicU64,
    /// Delta jobs answered by a warm start (prior schedule rebased and
    /// repaired).
    pub delta_warm: AtomicU64,
    /// Delta jobs that fell back to a full reschedule (or the degraded
    /// EDF fallback).
    pub delta_fallback: AtomicU64,
    /// Delta jobs whose prior schedule was served from the cache
    /// (misses recompute the prior first).
    pub delta_prior_hits: AtomicU64,
    /// Scheduler panics caught and isolated to their own job.
    pub worker_panics: AtomicU64,
    /// Journal records applied during startup crash recovery.
    pub journal_replayed: AtomicU64,
    /// Journal records dropped by startup compaction (their response
    /// bytes are durable in the schedule store).
    pub journal_compacted: AtomicU64,
    /// Counters of the persistent schedule store, shared with the
    /// store itself; set once when a `--store-dir` is configured. The
    /// whole `noc_svc_store_*` family is omitted from `/metrics` until
    /// then.
    store: OnceLock<Arc<StoreStats>>,
    /// Counters of the cluster layer (peer fill, replication), set
    /// once when `--peers` configures multi-node mode; the
    /// `noc_svc_cluster_*` family is omitted until then.
    cluster: OnceLock<Arc<ClusterStats>>,
    /// Gauges and counters of the nonblocking reactor, set once when
    /// the reactor entry path starts; the `noc_svc_reactor_*` family
    /// is omitted under `--net thread`.
    reactor: OnceLock<Arc<ReactorStats>>,
    /// Current job-queue depth (gauge, maintained by the engine).
    pub queue_depth: AtomicU64,
    /// Jobs currently executing on scheduler workers (gauge). Together
    /// with [`queue_depth`](Metrics::queue_depth) this makes queue
    /// saturation observable *before* 429s fire.
    pub jobs_inflight: AtomicU64,
    latency: Mutex<Histogram>,
    /// Per-stage execution time, keyed by stage name — the scheduling
    /// pipeline stages (`budgeting`, `level`, `comm`, `repair`,
    /// `anneal`, `validate`) fed from the trace spans of every
    /// executed job, plus the distributed serving stages
    /// (`peer_fill`, `replication_deliver`, `anti_entropy`). Shared
    /// with [`StageObserver`] handles held by cluster worker threads.
    stages: Arc<Mutex<BTreeMap<String, Histogram>>>,
    /// Structured service-log events per level, shared with the
    /// [`crate::obs::ServiceLog`]; rendered as
    /// `noc_svc_log_events_total{level}`.
    log_events: Arc<LogCounters>,
}

/// A cheap cloneable handle for recording stage latencies from
/// threads that do not hold the [`Metrics`] registry (the cluster's
/// replicator and anti-entropy workers).
#[derive(Clone, Default)]
pub struct StageObserver {
    stages: Arc<Mutex<BTreeMap<String, Histogram>>>,
}

impl StageObserver {
    /// A handle whose observations go nowhere visible (its map is
    /// never rendered) — the default for clusters built without an
    /// engine.
    #[must_use]
    pub fn disabled() -> StageObserver {
        StageObserver::default()
    }

    /// Records one stage execution time, in seconds.
    pub fn observe(&self, stage: &str, seconds: f64) {
        let mut stages = self.stages.lock().expect("metrics lock");
        let h = stages.entry(stage.to_owned()).or_default();
        observe(h, seconds);
    }
}

impl Metrics {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Counts one served request for `endpoint` with `status`.
    pub fn record_request(&self, endpoint: &str, status: u16) {
        let mut table = self.requests.lock().expect("metrics lock");
        *table.entry((endpoint.to_owned(), status)).or_insert(0) += 1;
    }

    /// Total requests recorded across all endpoints and statuses.
    #[must_use]
    pub fn total_requests(&self) -> u64 {
        self.requests.lock().expect("metrics lock").values().sum()
    }

    /// Registers the persistent store's counters for rendering. Called
    /// once at engine startup when a store directory is configured;
    /// later calls are ignored.
    pub fn set_store_stats(&self, stats: Arc<StoreStats>) {
        let _ = self.store.set(stats);
    }

    /// Registers the cluster layer's counters for rendering. Called
    /// once at engine startup in multi-node mode; later calls are
    /// ignored.
    pub fn set_cluster_stats(&self, stats: Arc<ClusterStats>) {
        let _ = self.cluster.set(stats);
    }

    /// Registers the reactor's counters for rendering. Called once
    /// when the reactor entry path starts; later calls are ignored.
    pub fn set_reactor_stats(&self, stats: Arc<ReactorStats>) {
        let _ = self.reactor.set(stats);
    }

    /// A cloneable handle onto the stage-latency histograms, for
    /// worker threads that do not hold the registry.
    #[must_use]
    pub fn stage_observer(&self) -> StageObserver {
        StageObserver {
            stages: Arc::clone(&self.stages),
        }
    }

    /// The service-log level counters this registry renders; shared
    /// with the [`crate::obs::ServiceLog`] so logged events surface
    /// as `noc_svc_log_events_total{level}`.
    #[must_use]
    pub fn log_counters(&self) -> Arc<LogCounters> {
        Arc::clone(&self.log_events)
    }

    /// Records one scheduling execution latency, in seconds.
    pub fn observe_latency(&self, seconds: f64) {
        let mut h = self.latency.lock().expect("metrics lock");
        observe(&mut h, seconds);
    }

    /// Records the execution time of one pipeline stage of a job.
    pub fn observe_stage(&self, stage: &str, seconds: f64) {
        let mut stages = self.stages.lock().expect("metrics lock");
        let h = stages.entry(stage.to_owned()).or_default();
        observe(h, seconds);
    }

    /// Renders the registry in Prometheus text exposition format.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();

        out.push_str(&format!(
            "# HELP noc_svc_build_info Build metadata of the running service.\n\
             # TYPE noc_svc_build_info gauge\n\
             noc_svc_build_info{{version=\"{}\",git_hash=\"{}\"}} 1\n",
            env!("CARGO_PKG_VERSION"),
            option_env!("NOC_GIT_HASH").unwrap_or("unknown"),
        ));

        out.push_str(
            "# HELP noc_svc_requests_total HTTP requests served, by endpoint and status.\n\
             # TYPE noc_svc_requests_total counter\n",
        );
        for ((endpoint, status), count) in self.requests.lock().expect("metrics lock").iter() {
            out.push_str(&format!(
                "noc_svc_requests_total{{endpoint=\"{endpoint}\",status=\"{status}\"}} {count}\n"
            ));
        }

        let counter = |out: &mut String, name: &str, help: &str, v: &AtomicU64| {
            out.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} counter\n{name} {}\n",
                v.load(Ordering::Relaxed)
            ));
        };
        let gauge = |out: &mut String, name: &str, help: &str, v: &AtomicU64| {
            out.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} gauge\n{name} {}\n",
                v.load(Ordering::Relaxed)
            ));
        };
        counter(
            &mut out,
            "noc_svc_cache_hits_total",
            "Schedule-cache hits.",
            &self.cache_hits,
        );
        counter(
            &mut out,
            "noc_svc_cache_misses_total",
            "Schedule-cache misses.",
            &self.cache_misses,
        );
        counter(
            &mut out,
            "noc_svc_requests_coalesced_total",
            "Requests coalesced onto an identical in-flight job.",
            &self.coalesced,
        );
        counter(
            &mut out,
            "noc_svc_queue_rejected_total",
            "Submissions rejected with 429 (queue full).",
            &self.queue_rejected,
        );
        counter(
            &mut out,
            "noc_svc_schedules_executed_total",
            "Scheduling jobs executed.",
            &self.schedules_executed,
        );
        counter(
            &mut out,
            "noc_svc_schedule_errors_total",
            "Scheduling jobs that failed.",
            &self.schedule_errors,
        );
        counter(
            &mut out,
            "noc_svc_degraded_total",
            "Jobs answered by the degraded EDF fallback (budget expired).",
            &self.degraded,
        );
        counter(
            &mut out,
            "noc_svc_delta_warm_total",
            "Delta jobs answered by a warm start.",
            &self.delta_warm,
        );
        counter(
            &mut out,
            "noc_svc_delta_fallback_total",
            "Delta jobs that fell back to a full reschedule.",
            &self.delta_fallback,
        );
        counter(
            &mut out,
            "noc_svc_delta_prior_hits_total",
            "Delta jobs whose prior schedule came from the cache.",
            &self.delta_prior_hits,
        );
        counter(
            &mut out,
            "noc_svc_worker_panics_total",
            "Scheduler panics caught and isolated to their own job.",
            &self.worker_panics,
        );
        counter(
            &mut out,
            "noc_svc_journal_replayed_total",
            "Journal records applied during startup crash recovery.",
            &self.journal_replayed,
        );
        counter(
            &mut out,
            "noc_svc_journal_compacted_total",
            "Journal records dropped by startup compaction (bytes durable in the store).",
            &self.journal_compacted,
        );
        out.push_str(
            "# HELP noc_svc_log_events_total Structured service-log events, by level.\n\
             # TYPE noc_svc_log_events_total counter\n",
        );
        for (level, count) in [
            ("error", &self.log_events.error),
            ("info", &self.log_events.info),
            ("warn", &self.log_events.warn),
        ] {
            out.push_str(&format!(
                "noc_svc_log_events_total{{level=\"{level}\"}} {}\n",
                count.load(Ordering::Relaxed)
            ));
        }
        if let Some(store) = self.store.get() {
            counter(
                &mut out,
                "noc_svc_store_hits_total",
                "Disk-tier store lookups that returned verified bytes.",
                &store.hits,
            );
            counter(
                &mut out,
                "noc_svc_store_misses_total",
                "Disk-tier store lookups that found nothing.",
                &store.misses,
            );
            counter(
                &mut out,
                "noc_svc_store_quarantined_total",
                "Store records dropped because their bytes failed verification.",
                &store.quarantined,
            );
            counter(
                &mut out,
                "noc_svc_store_faults_total",
                "Disk I/O failures observed by the store.",
                &store.faults,
            );
            counter(
                &mut out,
                "noc_svc_store_torn_tails_total",
                "Torn active-segment tails truncated at store open.",
                &store.torn_tails,
            );
            counter(
                &mut out,
                "noc_svc_store_rotations_total",
                "Store segment rotations.",
                &store.rotations,
            );
            gauge(
                &mut out,
                "noc_svc_store_degraded",
                "1 while the disk tier is out of service (memory-only mode).",
                &store.degraded,
            );
            gauge(
                &mut out,
                "noc_svc_store_records",
                "Records currently indexed in the store.",
                &store.records,
            );
            gauge(
                &mut out,
                "noc_svc_store_segments",
                "Store segment files (sealed + active).",
                &store.segments,
            );
        }
        if let Some(cluster) = self.cluster.get() {
            counter(
                &mut out,
                "noc_svc_cluster_peer_fill_total",
                "Local misses answered by a peer's stored bytes.",
                &cluster.peer_fills,
            );
            counter(
                &mut out,
                "noc_svc_cluster_peer_fill_misses_total",
                "Local misses no consulted peer could answer.",
                &cluster.peer_fill_misses,
            );
            counter(
                &mut out,
                "noc_svc_cluster_peer_fill_errors_total",
                "Internal lookups that failed in transport or verification.",
                &cluster.peer_fill_errors,
            );
            counter(
                &mut out,
                "noc_svc_cluster_lookups_served_total",
                "Internal lookups answered for peers from the local store.",
                &cluster.lookups_served,
            );
            counter(
                &mut out,
                "noc_svc_cluster_replication_sent_total",
                "Done records delivered to a peer.",
                &cluster.replication_sent,
            );
            counter(
                &mut out,
                "noc_svc_cluster_replication_received_total",
                "Done records accepted from a peer.",
                &cluster.replication_received,
            );
            counter(
                &mut out,
                "noc_svc_cluster_replication_delivery_failures_total",
                "Replication deliveries that failed in transport (record stays queued).",
                &cluster.replication_delivery_failures,
            );
            counter(
                &mut out,
                "noc_svc_cluster_replication_overflow_total",
                "Records dropped (oldest first) from a full per-peer retry queue.",
                &cluster.replication_overflow,
            );
            gauge(
                &mut out,
                "noc_svc_cluster_replication_lag",
                "Done records queued for replication delivery.",
                &cluster.replication_lag,
            );
            counter(
                &mut out,
                "noc_svc_cluster_peer_fill_skips_total",
                "Fill probes skipped in O(1) because the detector held the peer down.",
                &cluster.peer_fill_skips,
            );
            counter(
                &mut out,
                "noc_svc_cluster_probes_total",
                "Backoff-gated probes sent to down peers.",
                &cluster.probes,
            );
            counter(
                &mut out,
                "noc_svc_cluster_peer_recoveries_total",
                "Down peers that recovered to up.",
                &cluster.peer_recoveries,
            );
            counter(
                &mut out,
                "noc_svc_cluster_anti_entropy_rounds_total",
                "Anti-entropy sweep rounds completed.",
                &cluster.anti_entropy_rounds,
            );
            counter(
                &mut out,
                "noc_svc_cluster_anti_entropy_repairs_total",
                "Records re-enqueued because a peer's digest was missing them.",
                &cluster.anti_entropy_repairs,
            );
            counter(
                &mut out,
                "noc_svc_cluster_read_repair_total",
                "Peer-filled records persisted locally by a node in the owner chain.",
                &cluster.read_repairs,
            );
            let peer_up = cluster.peer_up.lock().expect("peer gauge lock");
            if !peer_up.is_empty() {
                out.push_str(
                    "# HELP noc_svc_cluster_peer_up Failure-detector availability per \
                     peer (1 = up/suspect, 0 = down).\n\
                     # TYPE noc_svc_cluster_peer_up gauge\n",
                );
                for (peer, up) in peer_up.iter() {
                    out.push_str(&format!(
                        "noc_svc_cluster_peer_up{{peer=\"{peer}\"}} {up}\n"
                    ));
                }
            }
        }
        if let Some(reactor) = self.reactor.get() {
            counter(
                &mut out,
                "noc_svc_reactor_accepted_total",
                "Connections accepted by the reactor.",
                &reactor.accepted,
            );
            counter(
                &mut out,
                "noc_svc_reactor_wakeups_total",
                "Readiness wakeups (poll returns) across event loops.",
                &reactor.wakeups,
            );
            counter(
                &mut out,
                "noc_svc_reactor_write_stalls_total",
                "Responses that hit socket backpressure and waited for POLLOUT.",
                &reactor.write_stalls_entered,
            );
            gauge(
                &mut out,
                "noc_svc_reactor_connections",
                "Connections currently open on the reactor.",
                &reactor.connections,
            );
            gauge(
                &mut out,
                "noc_svc_reactor_write_stalled",
                "Connections currently blocked on socket write backpressure.",
                &reactor.write_stalled,
            );
        }
        out.push_str(&format!(
            "# HELP noc_svc_queue_depth Jobs waiting in the bounded queue.\n\
             # TYPE noc_svc_queue_depth gauge\n\
             noc_svc_queue_depth {}\n",
            self.queue_depth.load(Ordering::Relaxed)
        ));
        out.push_str(&format!(
            "# HELP noc_svc_jobs_inflight Jobs currently executing on scheduler workers.\n\
             # TYPE noc_svc_jobs_inflight gauge\n\
             noc_svc_jobs_inflight {}\n",
            self.jobs_inflight.load(Ordering::Relaxed)
        ));

        let stages = self.stages.lock().expect("metrics lock");
        if !stages.is_empty() {
            out.push_str(
                "# HELP noc_svc_stage_seconds Scheduling pipeline stage execution time.\n\
                 # TYPE noc_svc_stage_seconds histogram\n",
            );
            for (stage, h) in stages.iter() {
                for (i, bound) in LATENCY_BUCKETS.iter().enumerate() {
                    out.push_str(&format!(
                        "noc_svc_stage_seconds_bucket{{stage=\"{stage}\",le=\"{bound}\"}} {}\n",
                        h.buckets[i]
                    ));
                }
                out.push_str(&format!(
                    "noc_svc_stage_seconds_bucket{{stage=\"{stage}\",le=\"+Inf\"}} {}\n\
                     noc_svc_stage_seconds_sum{{stage=\"{stage}\"}} {}\n\
                     noc_svc_stage_seconds_count{{stage=\"{stage}\"}} {}\n",
                    h.count, h.sum, h.count
                ));
            }
        }
        drop(stages);

        let h = self.latency.lock().expect("metrics lock");
        out.push_str(
            "# HELP noc_svc_schedule_seconds Scheduling execution latency.\n\
             # TYPE noc_svc_schedule_seconds histogram\n",
        );
        for (i, bound) in LATENCY_BUCKETS.iter().enumerate() {
            out.push_str(&format!(
                "noc_svc_schedule_seconds_bucket{{le=\"{bound}\"}} {}\n",
                h.buckets[i]
            ));
        }
        out.push_str(&format!(
            "noc_svc_schedule_seconds_bucket{{le=\"+Inf\"}} {}\n\
             noc_svc_schedule_seconds_sum {}\n\
             noc_svc_schedule_seconds_count {}\n",
            h.count, h.sum, h.count
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_table_renders_sorted_labels() {
        let m = Metrics::new();
        m.record_request("/v1/schedule", 200);
        m.record_request("/healthz", 200);
        m.record_request("/v1/schedule", 200);
        m.record_request("/v1/schedule", 429);
        let text = m.render();
        let healthz = text.find("endpoint=\"/healthz\"").expect("healthz row");
        let sched = text
            .find("endpoint=\"/v1/schedule\"")
            .expect("schedule row");
        assert!(healthz < sched, "rows render in sorted order");
        assert!(text.contains("noc_svc_requests_total{endpoint=\"/v1/schedule\",status=\"200\"} 2"));
        assert!(text.contains("noc_svc_requests_total{endpoint=\"/v1/schedule\",status=\"429\"} 1"));
        assert_eq!(m.total_requests(), 4);
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let m = Metrics::new();
        m.observe_latency(0.002); // falls into le=0.0025 and everything above
        m.observe_latency(0.2); // le=0.25 and above
        m.observe_latency(100.0); // only +Inf
        let text = m.render();
        assert!(text.contains("noc_svc_schedule_seconds_bucket{le=\"0.001\"} 0"));
        assert!(text.contains("noc_svc_schedule_seconds_bucket{le=\"0.0025\"} 1"));
        assert!(text.contains("noc_svc_schedule_seconds_bucket{le=\"0.25\"} 2"));
        assert!(text.contains("noc_svc_schedule_seconds_bucket{le=\"5\"} 2"));
        assert!(text.contains("noc_svc_schedule_seconds_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("noc_svc_schedule_seconds_count 3"));
    }

    #[test]
    fn stage_histograms_render_sorted_by_label() {
        let m = Metrics::new();
        assert!(
            !m.render().contains("noc_svc_stage_seconds"),
            "stage family is omitted until a stage is observed"
        );
        m.observe_stage("level", 0.002);
        m.observe_stage("budgeting", 0.0001);
        m.observe_stage("level", 0.3);
        let text = m.render();
        assert!(text.contains("# TYPE noc_svc_stage_seconds histogram"));
        assert!(text.contains("noc_svc_stage_seconds_bucket{stage=\"budgeting\",le=\"0.001\"} 1"));
        assert!(text.contains("noc_svc_stage_seconds_bucket{stage=\"level\",le=\"0.0025\"} 1"));
        assert!(text.contains("noc_svc_stage_seconds_bucket{stage=\"level\",le=\"+Inf\"} 2"));
        assert!(text.contains("noc_svc_stage_seconds_count{stage=\"level\"} 2"));
        let budgeting = text
            .find("stage=\"budgeting\"")
            .expect("budgeting series present");
        let level = text.find("stage=\"level\"").expect("level series present");
        assert!(budgeting < level, "stage series render in sorted order");
    }

    #[test]
    fn inflight_gauge_renders_its_value() {
        let m = Metrics::new();
        m.jobs_inflight.store(2, Ordering::Relaxed);
        let text = m.render();
        assert!(text.contains("# TYPE noc_svc_jobs_inflight gauge"));
        assert!(text.contains("noc_svc_jobs_inflight 2"));
    }

    #[test]
    fn store_family_renders_only_once_registered() {
        let m = Metrics::new();
        assert!(
            !m.render().contains("noc_svc_store_"),
            "store family is omitted until a store is configured"
        );
        let stats = Arc::new(StoreStats::default());
        stats.hits.fetch_add(3, Ordering::Relaxed);
        stats.quarantined.fetch_add(1, Ordering::Relaxed);
        stats.degraded.store(1, Ordering::Relaxed);
        stats.records.store(42, Ordering::Relaxed);
        m.set_store_stats(stats);
        m.journal_compacted.fetch_add(9, Ordering::Relaxed);
        let text = m.render();
        assert!(text.contains("noc_svc_store_hits_total 3"));
        assert!(text.contains("noc_svc_store_quarantined_total 1"));
        assert!(text.contains("# TYPE noc_svc_store_degraded gauge"));
        assert!(text.contains("noc_svc_store_degraded 1"));
        assert!(text.contains("noc_svc_store_records 42"));
        assert!(text.contains("noc_svc_journal_compacted_total 9"));
    }

    #[test]
    fn cluster_and_reactor_families_render_only_once_registered() {
        let m = Metrics::new();
        let text = m.render();
        assert!(
            !text.contains("noc_svc_cluster_") && !text.contains("noc_svc_reactor_"),
            "cluster/reactor families are omitted until registered"
        );
        let cluster = Arc::new(crate::cluster::ClusterStats::default());
        cluster.peer_fills.fetch_add(4, Ordering::Relaxed);
        cluster.lookups_served.fetch_add(9, Ordering::Relaxed);
        cluster.replication_lag.store(2, Ordering::Relaxed);
        m.set_cluster_stats(cluster);
        let reactor = Arc::new(crate::net::ReactorStats::default());
        reactor.connections.store(10_000, Ordering::Relaxed);
        reactor.accepted.fetch_add(5, Ordering::Relaxed);
        reactor.write_stalls_entered.fetch_add(3, Ordering::Relaxed);
        m.set_reactor_stats(reactor);
        let text = m.render();
        assert!(text.contains("noc_svc_cluster_peer_fill_total 4"));
        assert!(text.contains("noc_svc_cluster_lookups_served_total 9"));
        assert!(text.contains("# TYPE noc_svc_cluster_replication_lag gauge"));
        assert!(text.contains("noc_svc_cluster_replication_lag 2"));
        assert!(text.contains("# TYPE noc_svc_reactor_connections gauge"));
        assert!(text.contains("noc_svc_reactor_connections 10000"));
        assert!(text.contains("noc_svc_reactor_accepted_total 5"));
        assert!(text.contains("noc_svc_reactor_write_stalls_total 3"));
    }

    #[test]
    fn distributed_stages_render_alongside_pipeline_stages() {
        let m = Metrics::new();
        m.observe_stage("level", 0.002);
        let observer = m.stage_observer();
        observer.observe("peer_fill", 0.0008);
        observer.observe("replication_deliver", 0.004);
        observer.observe("anti_entropy", 0.02);
        observer.observe("peer_fill", 0.3);
        let text = m.render();
        assert!(text.contains("noc_svc_stage_seconds_bucket{stage=\"peer_fill\",le=\"0.001\"} 1"));
        assert!(text.contains("noc_svc_stage_seconds_count{stage=\"peer_fill\"} 2"));
        assert!(text.contains(
            "noc_svc_stage_seconds_bucket{stage=\"replication_deliver\",le=\"0.005\"} 1"
        ));
        assert!(
            text.contains("noc_svc_stage_seconds_bucket{stage=\"anti_entropy\",le=\"0.025\"} 1")
        );
        let anti = text
            .find("stage=\"anti_entropy\"")
            .expect("anti_entropy series");
        let peer = text.find("stage=\"peer_fill\"").expect("peer_fill series");
        let repl = text
            .find("stage=\"replication_deliver\"")
            .expect("replication_deliver series");
        assert!(
            anti < peer && peer < repl,
            "distributed stages render sorted with the rest"
        );
    }

    #[test]
    fn log_events_and_build_info_always_render() {
        let m = Metrics::new();
        let text = m.render();
        assert!(text.contains("# TYPE noc_svc_build_info gauge"));
        assert!(text.contains(&format!(
            "noc_svc_build_info{{version=\"{}\",",
            env!("CARGO_PKG_VERSION")
        )));
        assert!(text.contains("noc_svc_log_events_total{level=\"info\"} 0"));
        let counters = m.log_counters();
        counters.warn.fetch_add(2, Ordering::Relaxed);
        counters.error.fetch_add(1, Ordering::Relaxed);
        let text = m.render();
        assert!(text.contains("noc_svc_log_events_total{level=\"warn\"} 2"));
        assert!(text.contains("noc_svc_log_events_total{level=\"error\"} 1"));
    }

    #[test]
    fn counters_render_their_values() {
        let m = Metrics::new();
        m.cache_hits.fetch_add(7, Ordering::Relaxed);
        m.queue_depth.store(3, Ordering::Relaxed);
        m.degraded.fetch_add(2, Ordering::Relaxed);
        m.worker_panics.fetch_add(1, Ordering::Relaxed);
        m.journal_replayed.fetch_add(5, Ordering::Relaxed);
        let text = m.render();
        assert!(text.contains("noc_svc_cache_hits_total 7"));
        assert!(text.contains("noc_svc_queue_depth 3"));
        assert!(text.contains("noc_svc_degraded_total 2"));
        assert!(text.contains("noc_svc_worker_panics_total 1"));
        assert!(text.contains("noc_svc_journal_replayed_total 5"));
    }
}
