//! `noc-svc` — the NoC scheduling daemon: a std-only HTTP/1.1 service
//! exposing the workspace's schedulers (EAS and baselines) over a JSON
//! API, with a bounded job queue (explicit 429 backpressure), a
//! content-addressed response cache, single-flight deduplication of
//! identical in-flight requests, Prometheus-text metrics and graceful
//! shutdown.
//!
//! The service's defining contract is **byte determinism**: the same
//! request body answers with byte-identical schedule JSON whether it is
//! computed cold, served from cache, or coalesced onto a concurrent
//! twin — and, in multi-node mode ([`cluster`]), whichever node
//! answers and whether its bytes came from local compute, the local
//! store, or a peer. Everything here — canonical request hashing
//! ([`hash`]), the single response serialization ([`api`]), sorted
//! metrics rendering ([`metrics`]), the shared wire renderer both the
//! threaded and reactor ([`net`]) entry paths emit through — exists
//! to keep that promise.
//!
//! No external dependencies beyond the workspace's vendored
//! `serde`/`serde_json` and the vendored `polling` binding to
//! `poll(2)`: networking is `std::net`, threading is `std::thread`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod cache;
pub mod client;
pub mod cluster;
pub mod engine;
pub mod hash;
pub mod http;
pub mod journal;
pub mod metrics;
pub mod net;
pub mod obs;
pub mod queue;
pub mod server;
pub mod spec;
pub mod store;

pub use engine::{Engine, EngineConfig};
pub use server::{NetMode, Server, ServiceConfig};
