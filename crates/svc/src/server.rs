//! The HTTP server: a fixed pool of connection workers over one
//! `TcpListener`, routing to the [`Engine`](crate::engine::Engine), and
//! a graceful shutdown that drains admitted jobs before the process
//! exits.
//!
//! Endpoints:
//!
//! | Method | Path             | Purpose                                    |
//! |--------|------------------|--------------------------------------------|
//! | POST   | `/v1/schedule`   | Schedule a CTG; sync or `"mode":"async"`   |
//! | POST   | `/v1/schedule/delta` | Repair a prior schedule after edits    |
//! | POST   | `/v1/validate`   | Structurally check a schedule              |
//! | GET    | `/v1/jobs/<id>`  | Poll an async submission                   |
//! | GET    | `/healthz`       | Liveness                                   |
//! | GET    | `/metrics`       | Prometheus text metrics                    |

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::api::error_body;
use crate::engine::{Engine, EngineConfig, JobPhase, Submission};
use crate::http::{read_request, write_response, ReadError, Request, Response};

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Bind address, e.g. `127.0.0.1:8533`; port 0 picks a free port.
    pub addr: String,
    /// Connection (HTTP) worker threads.
    pub http_workers: usize,
    /// Scheduling worker threads; 0 admits jobs but never runs them
    /// (useful to test queue backpressure deterministically).
    pub sched_workers: usize,
    /// Bounded job-queue capacity.
    pub queue_capacity: usize,
    /// Response-cache capacity in entries; 0 disables caching.
    pub cache_capacity: usize,
    /// Default scheduler thread count (0 = all hardware threads).
    pub threads: usize,
    /// Largest accepted request body, bytes.
    pub max_body: usize,
    /// Per-connection socket read/write timeout.
    pub io_timeout: Duration,
    /// Per-request compute budget in wall-clock milliseconds; expired
    /// budgets are answered by the degraded EDF fallback. `None` runs
    /// schedulers to completion.
    pub budget_ms: Option<u64>,
    /// Path of the crash-safe job journal; `None` disables journaling.
    pub journal: Option<String>,
    /// Directory of the persistent schedule store; `None` serves from
    /// the in-memory cache tier only.
    pub store_dir: Option<String>,
    /// Segment-rotation threshold for the persistent store, bytes.
    pub store_segment_bytes: u64,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            addr: "127.0.0.1:8533".to_owned(),
            http_workers: 4,
            sched_workers: 2,
            queue_capacity: 64,
            cache_capacity: 1024,
            threads: 0,
            max_body: 16 * 1024 * 1024,
            io_timeout: Duration::from_secs(30),
            budget_ms: None,
            journal: None,
            store_dir: None,
            store_segment_bytes: crate::store::DEFAULT_SEGMENT_BYTES,
        }
    }
}

/// A running service instance.
pub struct Server {
    engine: Arc<Engine>,
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    http_handles: Vec<JoinHandle<()>>,
    sched_handles: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds the listener and spawns the worker pools.
    ///
    /// # Errors
    ///
    /// Propagates bind/clone failures on the listening socket.
    pub fn start(config: ServiceConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let engine = Engine::new(EngineConfig {
            queue_capacity: config.queue_capacity,
            cache_capacity: config.cache_capacity,
            threads: config.threads,
            budget_ms: config.budget_ms,
            journal: config.journal.clone(),
            store_dir: config.store_dir.clone(),
            store_segment_bytes: config.store_segment_bytes,
        })?;
        let stop = Arc::new(AtomicBool::new(false));

        let mut sched_handles = Vec::new();
        for i in 0..config.sched_workers {
            let engine = Arc::clone(&engine);
            sched_handles.push(
                std::thread::Builder::new()
                    .name(format!("svc-sched-{i}"))
                    .spawn(move || {
                        // Defense in depth: `run_job` already isolates
                        // scheduler panics, but if the loop itself ever
                        // unwinds the worker restarts instead of the
                        // pool silently shrinking. A normal return
                        // (queue closed and drained) exits.
                        use std::panic::{catch_unwind, AssertUnwindSafe};
                        loop {
                            if catch_unwind(AssertUnwindSafe(|| engine.worker_loop())).is_ok() {
                                break;
                            }
                            engine.metrics.worker_panics.fetch_add(1, Ordering::Relaxed);
                        }
                    })?,
            );
        }

        let mut http_handles = Vec::new();
        for i in 0..config.http_workers.max(1) {
            let listener = listener.try_clone()?;
            let engine = Arc::clone(&engine);
            let stop = Arc::clone(&stop);
            let max_body = config.max_body;
            let io_timeout = config.io_timeout;
            http_handles.push(
                std::thread::Builder::new()
                    .name(format!("svc-http-{i}"))
                    .spawn(move || {
                        while !stop.load(Ordering::Acquire) {
                            match listener.accept() {
                                Ok((conn, _)) => {
                                    if stop.load(Ordering::Acquire) {
                                        break;
                                    }
                                    handle_connection(&engine, conn, max_body, io_timeout, &stop);
                                }
                                Err(_) => break,
                            }
                        }
                    })?,
            );
        }

        Ok(Server {
            engine,
            addr,
            stop,
            http_handles,
            sched_handles,
        })
    }

    /// The bound socket address.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The engine, for inspection (metrics, queue depth).
    #[must_use]
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// Graceful shutdown: stop accepting, refuse new submissions, drain
    /// every admitted job, join all workers.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Release);
        self.engine.shutdown();
        // accept() has no timeout; unblock each HTTP worker with one
        // dummy connection, which it drops on seeing the stop flag.
        for _ in 0..self.http_handles.len() {
            let _ = TcpStream::connect(self.addr);
        }
        for h in self.http_handles.drain(..) {
            let _ = h.join();
        }
        for h in self.sched_handles.drain(..) {
            let _ = h.join();
        }
    }

    /// Blocks until every worker exits (i.e. forever, unless another
    /// thread triggers shutdown or the process is signalled).
    pub fn wait(mut self) {
        for h in self.http_handles.drain(..) {
            let _ = h.join();
        }
        for h in self.sched_handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Socket read granularity: bounds both shutdown latency (the stop
/// flag is re-checked every poll) and the cost of idle keep-alive
/// connections.
const READ_POLL: Duration = Duration::from_millis(250);

fn handle_connection(
    engine: &Engine,
    mut conn: TcpStream,
    max_body: usize,
    timeout: Duration,
    stop: &AtomicBool,
) {
    let _ = conn.set_read_timeout(Some(READ_POLL.min(timeout)));
    let _ = conn.set_write_timeout(Some(timeout));
    let _ = conn.set_nodelay(true);
    let mut idle_since = std::time::Instant::now();
    // Bytes a pipelining client sent past the previous request's body.
    let mut carry: Vec<u8> = Vec::new();
    loop {
        let request = match read_request(&mut conn, max_body, &mut carry) {
            Ok(r) => {
                idle_since = std::time::Instant::now();
                r
            }
            Err(ReadError::TimedOut) => {
                // Idle connection: drop it on shutdown or past the
                // keep-alive timeout, otherwise poll again.
                if stop.load(Ordering::Acquire) || idle_since.elapsed() >= timeout {
                    return;
                }
                continue;
            }
            Err(ReadError::Disconnected) => return,
            Err(ReadError::Malformed(msg)) => {
                let resp = Response::json(400, error_body(&format!("malformed request: {msg}")));
                engine.metrics.record_request("malformed", 400);
                let _ = write_response(&mut conn, &resp, false);
                return;
            }
            Err(ReadError::BodyTooLarge(n)) => {
                let resp = Response::json(
                    413,
                    error_body(&format!("request body of {n} bytes too large")),
                );
                engine.metrics.record_request("malformed", 413);
                let _ = write_response(&mut conn, &resp, false);
                return;
            }
        };
        // A back-to-back keep-alive client would otherwise be served
        // past shutdown indefinitely: once the stop flag is set, answer
        // the in-flight request with `Connection: close` and hang up.
        let keep_alive = request.keep_alive() && !stop.load(Ordering::Acquire);
        let response = route(engine, &request);
        engine
            .metrics
            .record_request(endpoint_label(&request), response.status);
        if write_response(&mut conn, &response, keep_alive).is_err() || !keep_alive {
            return;
        }
    }
}

/// Normalizes a request path to a bounded metrics label.
fn endpoint_label(request: &Request) -> &'static str {
    match request.path.as_str() {
        "/v1/schedule" => "/v1/schedule",
        "/v1/schedule/delta" => "/v1/schedule/delta",
        "/v1/validate" => "/v1/validate",
        "/healthz" => "/healthz",
        "/metrics" => "/metrics",
        p if p.starts_with("/v1/jobs/") => "/v1/jobs",
        _ => "other",
    }
}

fn route(engine: &Engine, request: &Request) -> Response {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => Response::text(200, "ok\n".to_owned()),
        ("GET", "/metrics") => Response::text(200, engine.metrics.render()),
        ("POST", "/v1/schedule") => with_store_state(engine, schedule_route(engine, request)),
        ("POST", "/v1/schedule/delta") => with_store_state(engine, delta_route(engine, request)),
        ("POST", "/v1/validate") => match std::str::from_utf8(&request.body) {
            Err(_) => Response::json(400, error_body("request body is not UTF-8")),
            Ok(body) => match engine.validate(body) {
                Ok(resp) => Response::json(200, resp.to_json()),
                Err((status, msg)) => Response::json(status, error_body(&msg)),
            },
        },
        ("GET", path) if path.starts_with("/v1/jobs/") => {
            jobs_route(engine, &path["/v1/jobs/".len()..])
        }
        (_, "/healthz" | "/metrics" | "/v1/schedule" | "/v1/schedule/delta" | "/v1/validate") => {
            Response::json(405, error_body("method not allowed"))
        }
        _ => Response::json(404, error_body("no such endpoint")),
    }
}

fn schedule_route(engine: &Engine, request: &Request) -> Response {
    let Ok(body) = std::str::from_utf8(&request.body) else {
        return Response::json(400, error_body("request body is not UTF-8"));
    };
    // `mode` only matters for fresh/joined jobs; a cached answer is
    // final either way. `stats` is presentation-only: it selects how
    // the stored output is rendered, never what is stored.
    let (wants_async, wants_stats) = serde_json::from_str::<crate::api::ScheduleRequest>(body)
        .map(|r| (r.is_async(), r.wants_stats()))
        .unwrap_or((false, false));
    match engine.submit(body) {
        Submission::BadRequest(msg) => Response::json(400, error_body(&msg)),
        Submission::BadSpec(msg) => Response::json(422, error_body(&msg)),
        Submission::Cached { id, output } => {
            let resp = Response::json(200, rendered_body(&output, wants_stats))
                .with_header("X-Cache", "hit")
                .with_header("X-Request-Hash", &id);
            with_degraded(resp, output.degraded)
        }
        Submission::Joined { id, job } => {
            if wants_async {
                accepted_response(&id)
            } else {
                finish_response(&id, &job.wait(), "join", wants_stats)
            }
        }
        Submission::Enqueued { id, job } => {
            if wants_async {
                accepted_response(&id)
            } else {
                finish_response(&id, &job.wait(), "miss", wants_stats)
            }
        }
        Submission::Rejected => Response::json(429, error_body("job queue is full; retry later"))
            .with_header("Retry-After", "1"),
        Submission::ShuttingDown => Response::json(503, error_body("service is shutting down")),
    }
}

fn delta_route(engine: &Engine, request: &Request) -> Response {
    let Ok(body) = std::str::from_utf8(&request.body) else {
        return Response::json(400, error_body("request body is not UTF-8"));
    };
    let (wants_async, wants_stats) = serde_json::from_str::<crate::api::DeltaRequest>(body)
        .map(|r| (r.is_async(), r.wants_stats()))
        .unwrap_or((false, false));
    match engine.submit_delta(body) {
        Submission::BadRequest(msg) => Response::json(400, error_body(&msg)),
        Submission::BadSpec(msg) => Response::json(422, error_body(&msg)),
        Submission::Cached { id, output } => {
            let resp = Response::json(200, rendered_body(&output, wants_stats))
                .with_header("X-Cache", "hit")
                .with_header("X-Request-Hash", &id);
            with_degraded(resp, output.degraded)
        }
        Submission::Joined { id, job } => {
            if wants_async {
                accepted_response(&id)
            } else {
                finish_response(&id, &job.wait(), "join", wants_stats)
            }
        }
        Submission::Enqueued { id, job } => {
            if wants_async {
                accepted_response(&id)
            } else {
                finish_response(&id, &job.wait(), "miss", wants_stats)
            }
        }
        Submission::Rejected => Response::json(429, error_body("job queue is full; retry later"))
            .with_header("Retry-After", "1"),
        Submission::ShuttingDown => Response::json(503, error_body("service is shutting down")),
    }
}

/// 202 body for an async submission (ids are hex — no escaping needed).
fn accepted_response(id: &str) -> Response {
    Response::json(202, format!("{{\"id\":\"{id}\",\"status\":\"queued\"}}"))
        .with_header("X-Request-Hash", id)
}

/// Flags schedule responses served while the persistent store's disk
/// tier is down: responses stay byte-correct, but they are no longer
/// durable across a restart.
fn with_store_state(engine: &Engine, resp: Response) -> Response {
    if engine.store_degraded() {
        resp.with_header("Store-Degraded", "memory-only")
    } else {
        resp
    }
}

/// Marks a degraded (EDF fallback) response so clients can detect the
/// quality downgrade without parsing the body.
fn with_degraded(resp: Response, degraded: bool) -> Response {
    if degraded {
        resp.with_header("Degraded-Mode", "edf-fallback")
    } else {
        resp
    }
}

/// Renders the body a client sees: the stored bytes verbatim, or —
/// only when this request opted in and the producing run left a
/// summary — those bytes with a `"stats"` member spliced in before the
/// closing brace. The stored output (and therefore the cache and every
/// other client's bytes) is never modified.
fn rendered_body(output: &crate::cache::JobOutput, wants_stats: bool) -> String {
    let body = output.body.as_str();
    if wants_stats {
        if let Some(stats) = &output.stats {
            if let Some(head) = body.strip_suffix('}') {
                return format!("{head},\"stats\":{stats}}}");
            }
        }
    }
    body.to_owned()
}

fn finish_response(id: &str, phase: &JobPhase, cache_label: &str, wants_stats: bool) -> Response {
    match phase {
        JobPhase::Done(output) => with_degraded(
            Response::json(200, rendered_body(output, wants_stats))
                .with_header("X-Cache", cache_label)
                .with_header("X-Request-Hash", id),
            output.degraded,
        ),
        JobPhase::Failed(msg) => {
            Response::json(500, error_body(&format!("scheduling failed: {msg}")))
                .with_header("X-Request-Hash", id)
        }
        JobPhase::Queued | JobPhase::Running => {
            Response::json(500, error_body("job did not reach a terminal state"))
        }
    }
}

fn jobs_route(engine: &Engine, id: &str) -> Response {
    let Some(job) = engine.job(id) else {
        return Response::json(404, error_body("no such job"));
    };
    match job.phase() {
        JobPhase::Queued => {
            Response::json(200, format!("{{\"id\":\"{id}\",\"status\":\"queued\"}}"))
        }
        JobPhase::Running => {
            Response::json(200, format!("{{\"id\":\"{id}\",\"status\":\"running\"}}"))
        }
        // Splice the stored body verbatim so the `result` field is
        // byte-identical to the sync answer.
        JobPhase::Done(output) => with_degraded(
            Response::json(
                200,
                format!(
                    "{{\"id\":\"{id}\",\"status\":\"done\",\"result\":{}}}",
                    output.body
                ),
            ),
            output.degraded,
        ),
        JobPhase::Failed(msg) => Response::json(
            200,
            format!(
                "{{\"id\":\"{id}\",\"status\":\"failed\",\"error\":{}}}",
                serde_json::to_string(&serde::Value::String(msg)).expect("serializes")
            ),
        ),
    }
}
