//! The HTTP server: request routing shared by both entry paths — the
//! nonblocking reactor ([`crate::net`], the default) and the
//! thread-per-connection pool — over one `TcpListener`, dispatching to
//! the [`Engine`](crate::engine::Engine), with a graceful shutdown
//! that drains admitted jobs before the process exits.
//!
//! Endpoints:
//!
//! | Method | Path             | Purpose                                    |
//! |--------|------------------|--------------------------------------------|
//! | POST   | `/v1/schedule`   | Schedule a CTG; sync or `"mode":"async"`   |
//! | POST   | `/v1/schedule/delta` | Repair a prior schedule after edits    |
//! | POST   | `/v1/validate`   | Structurally check a schedule              |
//! | GET    | `/v1/jobs/<id>`  | Poll an async submission                   |
//! | GET    | `/healthz`       | Liveness                                   |
//! | GET    | `/metrics`       | Prometheus text metrics                    |
//! | GET    | `/v1/internal/lookup/<hash>` | Peer cache-fill (cluster)      |
//! | POST   | `/v1/internal/record/<hash>` | Replica ingest (cluster)       |
//! | GET    | `/v1/internal/digest` | Held record ids (anti-entropy)        |
//! | GET    | `/v1/internal/health` | Failure-detector peer table (cluster) |
//! | GET    | `/v1/internal/trace/<id>` | Flight-recorder spans for a trace |
//! | GET    | `/v1/internal/slow` | The slow-request ring                   |

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::api::error_body;
use crate::cluster::ClusterConfig;
use crate::engine::{Engine, EngineConfig, Job, JobPhase, Submission};
use crate::http::{read_request, write_response, ReadError, Request, Response};
use crate::obs::{span_us, TraceCtx};

/// How the service turns sockets into requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NetMode {
    /// Nonblocking `poll(2)` reactor: a few event-loop threads
    /// multiplex every connection, so tens of thousands of idle
    /// keep-alive clients cost no threads. The default.
    #[default]
    Reactor,
    /// The original thread-per-live-connection pool: each HTTP worker
    /// owns one connection at a time with blocking reads.
    Thread,
}

impl NetMode {
    /// The mode's CLI spelling, for logs.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            NetMode::Reactor => "reactor",
            NetMode::Thread => "thread",
        }
    }
}

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Bind address, e.g. `127.0.0.1:8533`; port 0 picks a free port.
    pub addr: String,
    /// Connection (HTTP) worker threads.
    pub http_workers: usize,
    /// Scheduling worker threads; 0 admits jobs but never runs them
    /// (useful to test queue backpressure deterministically).
    pub sched_workers: usize,
    /// Bounded job-queue capacity.
    pub queue_capacity: usize,
    /// Response-cache capacity in entries; 0 disables caching.
    pub cache_capacity: usize,
    /// Default scheduler thread count (0 = all hardware threads).
    pub threads: usize,
    /// Largest accepted request body, bytes.
    pub max_body: usize,
    /// Per-connection socket read/write timeout.
    pub io_timeout: Duration,
    /// Per-request compute budget in wall-clock milliseconds; expired
    /// budgets are answered by the degraded EDF fallback. `None` runs
    /// schedulers to completion.
    pub budget_ms: Option<u64>,
    /// Path of the crash-safe job journal; `None` disables journaling.
    pub journal: Option<String>,
    /// Directory of the persistent schedule store; `None` serves from
    /// the in-memory cache tier only.
    pub store_dir: Option<String>,
    /// Segment-rotation threshold for the persistent store, bytes.
    pub store_segment_bytes: u64,
    /// Entry path: reactor event loops (default) or blocking threads.
    pub net: NetMode,
    /// Peer service addresses for multi-node mode; empty runs
    /// single-node. The list need not include this node.
    pub peers: Vec<String>,
    /// This node's address as peers see it (ring identity). Defaults
    /// to the bound listener address.
    pub self_addr: Option<String>,
    /// Per-operation timeout for cluster internal lookups and
    /// replication deliveries.
    pub peer_timeout: Duration,
    /// First probe backoff after the failure detector marks a peer
    /// down; doubles per failed probe up to 16× this value.
    pub probe_interval: Duration,
    /// Anti-entropy sweep period; zero disables the sweep.
    pub anti_entropy_interval: Duration,
    /// Flight-recorder capacity in spans; 0 disables request tracing
    /// entirely (no `X-Noc-Trace` header, no recording).
    pub flight_recorder_entries: usize,
    /// Requests at or above this wall time (milliseconds) snapshot
    /// their span tree into the slow-request ring.
    pub slow_ms: u64,
    /// Path of the structured JSONL service log; `None` keeps events
    /// on stderr.
    pub log_json: Option<String>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            addr: "127.0.0.1:8533".to_owned(),
            http_workers: 4,
            sched_workers: 2,
            queue_capacity: 64,
            cache_capacity: 1024,
            threads: 0,
            max_body: 16 * 1024 * 1024,
            io_timeout: Duration::from_secs(30),
            budget_ms: None,
            journal: None,
            store_dir: None,
            store_segment_bytes: crate::store::DEFAULT_SEGMENT_BYTES,
            net: NetMode::default(),
            peers: Vec::new(),
            self_addr: None,
            peer_timeout: Duration::from_secs(1),
            probe_interval: Duration::from_millis(250),
            anti_entropy_interval: Duration::from_secs(2),
            flight_recorder_entries: 4096,
            slow_ms: 250,
            log_json: None,
        }
    }
}

/// A running service instance.
pub struct Server {
    engine: Arc<Engine>,
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    http_handles: Vec<JoinHandle<()>>,
    sched_handles: Vec<JoinHandle<()>>,
    reactor: Option<crate::net::ReactorHandle>,
}

impl Server {
    /// Binds the listener and spawns the worker pools.
    ///
    /// # Errors
    ///
    /// Propagates bind/clone failures on the listening socket.
    pub fn start(config: ServiceConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let cluster = if config.peers.is_empty() {
            None
        } else {
            let self_addr = config.self_addr.clone().unwrap_or_else(|| addr.to_string());
            let mut cluster = ClusterConfig::new(self_addr, config.peers.clone());
            cluster.timeout = config.peer_timeout;
            let base_ms = u64::try_from(config.probe_interval.as_millis())
                .unwrap_or(u64::MAX)
                .max(1);
            cluster.detector.probe_base_ms = base_ms;
            cluster.detector.probe_max_ms = base_ms.saturating_mul(16);
            cluster.anti_entropy_interval = config.anti_entropy_interval;
            Some(cluster)
        };
        let engine = Engine::new(EngineConfig {
            queue_capacity: config.queue_capacity,
            cache_capacity: config.cache_capacity,
            threads: config.threads,
            budget_ms: config.budget_ms,
            journal: config.journal.clone(),
            store_dir: config.store_dir.clone(),
            store_segment_bytes: config.store_segment_bytes,
            cluster,
            flight_recorder_entries: config.flight_recorder_entries,
            slow_ms: config.slow_ms,
            log_json: config.log_json.clone(),
        })?;
        engine.log.event(
            crate::obs::LogLevel::Info,
            "serve-started",
            &format!("listening on {addr}"),
            &[
                ("addr", &addr.to_string()),
                ("net", config.net.as_str()),
                ("peers", &config.peers.len().to_string()),
            ],
        );
        let stop = Arc::new(AtomicBool::new(false));

        let mut sched_handles = Vec::new();
        for i in 0..config.sched_workers {
            let engine = Arc::clone(&engine);
            sched_handles.push(
                std::thread::Builder::new()
                    .name(format!("svc-sched-{i}"))
                    .spawn(move || {
                        // Defense in depth: `run_job` already isolates
                        // scheduler panics, but if the loop itself ever
                        // unwinds the worker restarts instead of the
                        // pool silently shrinking. A normal return
                        // (queue closed and drained) exits.
                        use std::panic::{catch_unwind, AssertUnwindSafe};
                        loop {
                            if catch_unwind(AssertUnwindSafe(|| engine.worker_loop())).is_ok() {
                                break;
                            }
                            engine.metrics.worker_panics.fetch_add(1, Ordering::Relaxed);
                        }
                    })?,
            );
        }

        let mut http_handles = Vec::new();
        let mut reactor = None;
        match config.net {
            NetMode::Reactor => {
                reactor = Some(crate::net::spawn(
                    Arc::clone(&engine),
                    listener,
                    Arc::clone(&stop),
                    &crate::net::ReactorOptions {
                        loops: config.http_workers.max(1),
                        max_body: config.max_body,
                        idle_timeout: config.io_timeout,
                    },
                )?);
            }
            NetMode::Thread => {
                for i in 0..config.http_workers.max(1) {
                    let listener = listener.try_clone()?;
                    let engine = Arc::clone(&engine);
                    let stop = Arc::clone(&stop);
                    let max_body = config.max_body;
                    let io_timeout = config.io_timeout;
                    http_handles.push(
                        std::thread::Builder::new()
                            .name(format!("svc-http-{i}"))
                            .spawn(move || {
                                while !stop.load(Ordering::Acquire) {
                                    match listener.accept() {
                                        Ok((conn, _)) => {
                                            if stop.load(Ordering::Acquire) {
                                                break;
                                            }
                                            handle_connection(
                                                &engine, conn, max_body, io_timeout, &stop,
                                            );
                                        }
                                        Err(_) => break,
                                    }
                                }
                            })?,
                    );
                }
            }
        }

        Ok(Server {
            engine,
            addr,
            stop,
            http_handles,
            sched_handles,
            reactor,
        })
    }

    /// The bound socket address.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The engine, for inspection (metrics, queue depth).
    #[must_use]
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// Graceful shutdown: stop accepting, refuse new submissions, drain
    /// every admitted job, join all workers.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Release);
        self.engine.shutdown();
        // The reactor drains in-flight responses before exiting; the
        // scheduler workers (joined below) keep feeding completions
        // while it does.
        if let Some(reactor) = self.reactor.take() {
            reactor.shutdown();
        }
        // accept() has no timeout; unblock each HTTP worker with one
        // dummy connection, which it drops on seeing the stop flag.
        for _ in 0..self.http_handles.len() {
            let _ = TcpStream::connect(self.addr);
        }
        for h in self.http_handles.drain(..) {
            let _ = h.join();
        }
        for h in self.sched_handles.drain(..) {
            let _ = h.join();
        }
    }

    /// Blocks until every worker exits (i.e. forever, unless another
    /// thread triggers shutdown or the process is signalled).
    pub fn wait(mut self) {
        if let Some(reactor) = self.reactor.take() {
            reactor.wait();
        }
        for h in self.http_handles.drain(..) {
            let _ = h.join();
        }
        for h in self.sched_handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Socket read granularity: bounds both shutdown latency (the stop
/// flag is re-checked every poll) and the cost of idle keep-alive
/// connections.
const READ_POLL: Duration = Duration::from_millis(250);

fn handle_connection(
    engine: &Engine,
    mut conn: TcpStream,
    max_body: usize,
    timeout: Duration,
    stop: &AtomicBool,
) {
    let _ = conn.set_read_timeout(Some(READ_POLL.min(timeout)));
    let _ = conn.set_write_timeout(Some(timeout));
    let _ = conn.set_nodelay(true);
    let mut idle_since = std::time::Instant::now();
    // Bytes a pipelining client sent past the previous request's body.
    let mut carry: Vec<u8> = Vec::new();
    loop {
        let request = match read_request(&mut conn, max_body, &mut carry) {
            Ok(r) => {
                idle_since = std::time::Instant::now();
                r
            }
            Err(ReadError::TimedOut) => {
                // Idle connection: drop it on shutdown or past the
                // keep-alive timeout, otherwise poll again.
                if stop.load(Ordering::Acquire) || idle_since.elapsed() >= timeout {
                    return;
                }
                continue;
            }
            Err(ReadError::Disconnected) => return,
            Err(ReadError::Malformed(msg)) => {
                let resp = Response::json(400, error_body(&format!("malformed request: {msg}")));
                engine.metrics.record_request("malformed", 400);
                let _ = write_response(&mut conn, &resp, false);
                return;
            }
            Err(ReadError::BodyTooLarge(n)) => {
                let resp = Response::json(
                    413,
                    error_body(&format!("request body of {n} bytes too large")),
                );
                engine.metrics.record_request("malformed", 413);
                let _ = write_response(&mut conn, &resp, false);
                return;
            }
        };
        // A back-to-back keep-alive client would otherwise be served
        // past shutdown indefinitely: once the stop flag is set, answer
        // the in-flight request with `Connection: close` and hang up.
        let keep_alive = request.keep_alive() && !stop.load(Ordering::Acquire);
        let response = route(engine, &request);
        engine
            .metrics
            .record_request(endpoint_label(&request), response.status);
        if write_response(&mut conn, &response, keep_alive).is_err() || !keep_alive {
            return;
        }
    }
}

/// Normalizes a request path to a bounded metrics label.
pub(crate) fn endpoint_label(request: &Request) -> &'static str {
    match request.path.as_str() {
        "/v1/schedule" => "/v1/schedule",
        "/v1/schedule/delta" => "/v1/schedule/delta",
        "/v1/validate" => "/v1/validate",
        "/healthz" => "/healthz",
        "/metrics" => "/metrics",
        p if p.starts_with("/v1/jobs/") => "/v1/jobs",
        "/v1/internal/digest" => "/v1/internal/digest",
        "/v1/internal/health" => "/v1/internal/health",
        "/v1/internal/slow" => "/v1/internal/slow",
        p if p.starts_with("/v1/internal/lookup/") => "/v1/internal/lookup",
        p if p.starts_with("/v1/internal/record/") => "/v1/internal/record",
        p if p.starts_with("/v1/internal/trace/") => "/v1/internal/trace",
        _ => "other",
    }
}

/// A routed request: either an immediately ready response, or a
/// submission parked on a scheduler job whose terminal phase produces
/// the response (via [`complete`]).
///
/// Splitting routing this way is what lets the threaded path block
/// (`job.wait()`) while the reactor parks only a response slot — both
/// flow through the same code and emit the same bytes.
pub(crate) enum Routed {
    /// The response is ready now.
    Ready(Response),
    /// The response awaits a scheduler job's terminal phase.
    Pending(Pending),
}

/// A submission whose response is pending on its job.
pub(crate) struct Pending {
    /// Canonical request hash.
    pub id: String,
    /// The admitted (or joined) job.
    pub job: Arc<Job>,
    /// `X-Cache` label the finished response will carry.
    pub cache_label: &'static str,
    /// Whether the client opted into the stats member.
    pub wants_stats: bool,
    /// Everything needed to finish the request's root span.
    pub finish: TraceFinish,
}

/// The tracing context a pending submission carries to its terminal
/// response: the request's trace, its ingress instant, and the
/// endpoint label that becomes the root span's stage.
#[derive(Clone)]
pub(crate) struct TraceFinish {
    pub trace: TraceCtx,
    pub started: Instant,
    pub endpoint: &'static str,
}

/// Endpoints that read the recorder (or are pure liveness probes):
/// tracing them would let introspection scrapes pollute the rings
/// they serve.
fn untraced_endpoint(endpoint: &str) -> bool {
    matches!(
        endpoint,
        "/healthz" | "/metrics" | "/v1/internal/trace" | "/v1/internal/slow"
    )
}

/// Routes a request to a [`Routed`] outcome without ever blocking on
/// scheduler work. Both entry paths call this.
///
/// This is also the tracing ingress: a [`TraceCtx`] is built from the
/// inbound `X-Noc-Trace`/`X-Noc-Span` headers (or freshly minted),
/// ready responses record their root span here, and pending ones
/// carry the context to [`complete`]. Trace metadata rides in
/// response headers only — bodies stay byte-identical to an untraced
/// run.
pub(crate) fn respond(engine: &Engine, request: &Request) -> Routed {
    let endpoint = endpoint_label(request);
    let trace = if untraced_endpoint(endpoint) {
        TraceCtx::untraced()
    } else {
        engine.recorder.ingress(
            request.header(crate::api::TRACE_HEADER),
            request.header(crate::api::SPAN_HEADER),
        )
    };
    let started = Instant::now();
    let routed = match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/v1/schedule") => submission_route(
            engine,
            request,
            SubmitKind::Schedule,
            &trace,
            started,
            endpoint,
        ),
        ("POST", "/v1/schedule/delta") => submission_route(
            engine,
            request,
            SubmitKind::Delta,
            &trace,
            started,
            endpoint,
        ),
        _ => Routed::Ready(inline_route(engine, request)),
    };
    match routed {
        Routed::Ready(response) => {
            Routed::Ready(finish_traced(engine, endpoint, &trace, started, response))
        }
        pending => pending,
    }
}

/// Builds the terminal response for a pending submission. Shared by
/// the threaded path (after `job.wait()`) and the reactor (inside the
/// job's finish watcher).
pub(crate) fn complete(
    engine: &Engine,
    id: &str,
    phase: &JobPhase,
    cache_label: &str,
    wants_stats: bool,
    finish: &TraceFinish,
) -> Response {
    let resp = with_store_state(engine, finish_response(id, phase, cache_label, wants_stats));
    finish_traced(engine, finish.endpoint, &finish.trace, finish.started, resp)
}

/// Records the request's root span (stage = endpoint label, outcome
/// derived from the response) and stamps the trace id on the
/// response. A no-op passthrough when untraced.
fn finish_traced(
    engine: &Engine,
    endpoint: &'static str,
    trace: &TraceCtx,
    started: Instant,
    resp: Response,
) -> Response {
    if !trace.is_traced() {
        return resp;
    }
    engine
        .recorder
        .finish_root(trace, endpoint, response_outcome(&resp), span_us(started));
    resp.with_header("X-Noc-Trace", &trace.id)
}

/// The root span's outcome: the `X-Cache` serving class when present,
/// otherwise the status class.
fn response_outcome(resp: &Response) -> &'static str {
    if let Some((_, label)) = resp.extra_headers.iter().find(|(k, _)| k == "X-Cache") {
        return match label.as_str() {
            "hit" => "hit",
            "peer" => "peer",
            "join" => "join",
            _ => "miss",
        };
    }
    match resp.status {
        200..=299 => "ok",
        404 => "not-found",
        429 => "rejected",
        300..=499 => "bad-request",
        _ => "error",
    }
}

fn route(engine: &Engine, request: &Request) -> Response {
    match respond(engine, request) {
        Routed::Ready(response) => response,
        Routed::Pending(p) => complete(
            engine,
            &p.id,
            &p.job.wait(),
            p.cache_label,
            p.wants_stats,
            &p.finish,
        ),
    }
}

/// Every endpoint that answers without scheduler work.
fn inline_route(engine: &Engine, request: &Request) -> Response {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => Response::text(200, "ok\n".to_owned()),
        ("GET", "/metrics") => Response::text(200, engine.metrics.render()),
        ("POST", "/v1/validate") => match std::str::from_utf8(&request.body) {
            Err(_) => Response::json(400, error_body("request body is not UTF-8")),
            Ok(body) => match engine.validate(body) {
                Ok(resp) => Response::json(200, resp.to_json()),
                Err((status, msg)) => Response::json(status, error_body(&msg)),
            },
        },
        ("GET", path) if path.starts_with("/v1/jobs/") => {
            jobs_route(engine, &path["/v1/jobs/".len()..])
        }
        ("GET", path) if path.starts_with("/v1/internal/lookup/") => {
            internal_lookup_route(engine, &path["/v1/internal/lookup/".len()..])
        }
        ("POST", path) if path.starts_with("/v1/internal/record/") => {
            internal_record_route(engine, &path["/v1/internal/record/".len()..], &request.body)
        }
        ("GET", "/v1/internal/digest") => internal_digest_route(engine),
        ("GET", "/v1/internal/health") => internal_health_route(engine),
        ("GET", path) if path.starts_with("/v1/internal/trace/") => {
            internal_trace_route(engine, &path["/v1/internal/trace/".len()..])
        }
        ("GET", "/v1/internal/slow") => internal_slow_route(engine),
        (_, "/healthz" | "/metrics" | "/v1/schedule" | "/v1/schedule/delta" | "/v1/validate") => {
            Response::json(405, error_body("method not allowed"))
        }
        _ => Response::json(404, error_body("no such endpoint")),
    }
}

enum SubmitKind {
    Schedule,
    Delta,
}

fn submission_route(
    engine: &Engine,
    request: &Request,
    kind: SubmitKind,
    trace: &TraceCtx,
    started: Instant,
    endpoint: &'static str,
) -> Routed {
    let ready = |resp: Response| Routed::Ready(with_store_state(engine, resp));
    let Ok(body) = std::str::from_utf8(&request.body) else {
        return ready(Response::json(400, error_body("request body is not UTF-8")));
    };
    // `mode` only matters for fresh/joined jobs; a cached answer is
    // final either way. `stats` is presentation-only: it selects how
    // the stored output is rendered, never what is stored.
    let (wants_async, wants_stats) = match kind {
        SubmitKind::Schedule => serde_json::from_str::<crate::api::ScheduleRequest>(body)
            .map(|r| (r.is_async(), r.wants_stats()))
            .unwrap_or((false, false)),
        SubmitKind::Delta => serde_json::from_str::<crate::api::DeltaRequest>(body)
            .map(|r| (r.is_async(), r.wants_stats()))
            .unwrap_or((false, false)),
    };
    let submission = match kind {
        SubmitKind::Schedule => engine.submit_traced(body, trace),
        SubmitKind::Delta => engine.submit_delta_traced(body, trace),
    };
    match submission {
        Submission::BadRequest(msg) => ready(Response::json(400, error_body(&msg))),
        Submission::BadSpec(msg) => ready(Response::json(422, error_body(&msg))),
        Submission::Cached { id, output } => {
            ready(cached_response(&id, &output, wants_stats, "hit"))
        }
        Submission::PeerFilled { id, output } => {
            ready(cached_response(&id, &output, wants_stats, "peer"))
        }
        Submission::Joined { id, job } => {
            if wants_async {
                ready(accepted_response(&id))
            } else {
                Routed::Pending(Pending {
                    id,
                    job,
                    cache_label: "join",
                    wants_stats,
                    finish: TraceFinish {
                        trace: trace.clone(),
                        started,
                        endpoint,
                    },
                })
            }
        }
        Submission::Enqueued { id, job } => {
            if wants_async {
                ready(accepted_response(&id))
            } else {
                Routed::Pending(Pending {
                    id,
                    job,
                    cache_label: "miss",
                    wants_stats,
                    finish: TraceFinish {
                        trace: trace.clone(),
                        started,
                        endpoint,
                    },
                })
            }
        }
        Submission::Rejected => ready(
            Response::json(429, error_body("job queue is full; retry later"))
                .with_header("Retry-After", "1"),
        ),
        Submission::ShuttingDown => {
            ready(Response::json(503, error_body("service is shutting down")))
        }
    }
}

/// 200 response for bytes that already exist — from the local cache
/// tier (`hit`) or fetched from the owning peer (`peer`). The bytes
/// are identical either way; only the label differs.
fn cached_response(
    id: &str,
    output: &crate::cache::JobOutput,
    wants_stats: bool,
    label: &str,
) -> Response {
    let resp = Response::json(200, rendered_body(output, wants_stats))
        .with_header("X-Cache", label)
        .with_header("X-Request-Hash", id);
    with_degraded(resp, output.degraded)
}

/// Serves a peer's cache-fill probe: the stored record for a content
/// hash as a [`crate::cluster::RecordEnvelope`], or 404 when this
/// node holds nothing.
fn internal_lookup_route(engine: &Engine, hash: &str) -> Response {
    match engine.internal_lookup(hash) {
        Some((key, output)) => Response::json(
            200,
            serde_json::to_string(&crate::cluster::RecordEnvelope::from_output(&key, &output))
                .expect("envelope serializes"),
        ),
        None => Response::json(404, error_body("no record for hash")),
    }
}

/// Serves the anti-entropy digest: every record id this node durably
/// holds, for peers deciding what to re-replicate here.
fn internal_digest_route(engine: &Engine) -> Response {
    let node = engine
        .cluster()
        .map_or(String::new(), |c| c.self_addr().to_owned());
    let digest = crate::cluster::Digest {
        node,
        ids: engine.digest_ids(),
    };
    Response::json(
        200,
        serde_json::to_string(&digest).expect("digest serializes"),
    )
}

/// Serves the failure detector's peer table: per-peer state,
/// consecutive failures, probe countdown and retry-queue depth.
fn internal_health_route(engine: &Engine) -> Response {
    let Some(cluster) = engine.cluster() else {
        return Response::json(200, "{\"self\":null,\"peers\":[]}".to_owned());
    };
    let depths = cluster.retry_depths();
    let peers: Vec<String> = cluster
        .health_snapshot()
        .iter()
        .map(|p| {
            format!(
                "{{\"peer\":{},\"state\":\"{}\",\"consecutive_failures\":{},\
                 \"probe_in_ms\":{},\"retry_queue\":{}}}",
                serde_json::to_string(&serde::Value::String(p.peer.clone()))
                    .expect("string serializes"),
                p.state.as_str(),
                p.consecutive_failures,
                p.probe_in_ms,
                depths.get(&p.peer).copied().unwrap_or(0)
            )
        })
        .collect();
    Response::json(
        200,
        format!(
            "{{\"self\":{},\"peers\":[{}]}}",
            serde_json::to_string(&serde::Value::String(cluster.self_addr().to_owned()))
                .expect("string serializes"),
            peers.join(",")
        ),
    )
}

/// Serves this node's flight-recorder spans for one trace id, or 404
/// when the node holds none (expired from the ring, or never seen).
fn internal_trace_route(engine: &Engine, id: &str) -> Response {
    let spans = engine.recorder.trace(id);
    if spans.is_empty() {
        return Response::json(404, error_body("no spans recorded for trace"));
    }
    let dump = crate::obs::TraceDump {
        node: engine.recorder.node().to_owned(),
        spans,
    };
    Response::json(200, serde_json::to_string(&dump).expect("dump serializes"))
}

/// Serves this node's slow-request ring.
fn internal_slow_route(engine: &Engine) -> Response {
    let dump = crate::obs::SlowDump {
        node: engine.recorder.node().to_owned(),
        slow: engine.recorder.slow(),
    };
    Response::json(200, serde_json::to_string(&dump).expect("dump serializes"))
}

/// Ingests a replicated done-record from the hash's owner.
fn internal_record_route(engine: &Engine, hash: &str, body: &[u8]) -> Response {
    let Ok(body) = std::str::from_utf8(body) else {
        return Response::json(400, error_body("request body is not UTF-8"));
    };
    match engine.apply_replica(hash, body) {
        Ok(()) => Response::json(200, "{\"status\":\"stored\"}".to_owned()),
        Err(msg) => Response::json(400, error_body(&msg)),
    }
}

/// 202 body for an async submission (ids are hex — no escaping needed).
fn accepted_response(id: &str) -> Response {
    Response::json(202, format!("{{\"id\":\"{id}\",\"status\":\"queued\"}}"))
        .with_header("X-Request-Hash", id)
}

/// Flags schedule responses served while the persistent store's disk
/// tier is down: responses stay byte-correct, but they are no longer
/// durable across a restart.
fn with_store_state(engine: &Engine, resp: Response) -> Response {
    if engine.store_degraded() {
        resp.with_header("Store-Degraded", "memory-only")
    } else {
        resp
    }
}

/// Marks a degraded (EDF fallback) response so clients can detect the
/// quality downgrade without parsing the body.
fn with_degraded(resp: Response, degraded: bool) -> Response {
    if degraded {
        resp.with_header("Degraded-Mode", "edf-fallback")
    } else {
        resp
    }
}

/// Renders the body a client sees: the stored bytes verbatim, or —
/// only when this request opted in and the producing run left a
/// summary — those bytes with a `"stats"` member spliced in before the
/// closing brace. The stored output (and therefore the cache and every
/// other client's bytes) is never modified.
fn rendered_body(output: &crate::cache::JobOutput, wants_stats: bool) -> String {
    let body = output.body.as_str();
    if wants_stats {
        if let Some(stats) = &output.stats {
            if let Some(head) = body.strip_suffix('}') {
                return format!("{head},\"stats\":{stats}}}");
            }
        }
    }
    body.to_owned()
}

fn finish_response(id: &str, phase: &JobPhase, cache_label: &str, wants_stats: bool) -> Response {
    match phase {
        JobPhase::Done(output) => with_degraded(
            Response::json(200, rendered_body(output, wants_stats))
                .with_header("X-Cache", cache_label)
                .with_header("X-Request-Hash", id),
            output.degraded,
        ),
        JobPhase::Failed(msg) => {
            Response::json(500, error_body(&format!("scheduling failed: {msg}")))
                .with_header("X-Request-Hash", id)
        }
        JobPhase::Queued | JobPhase::Running => {
            Response::json(500, error_body("job did not reach a terminal state"))
        }
    }
}

fn jobs_route(engine: &Engine, id: &str) -> Response {
    let Some(job) = engine.job(id) else {
        return Response::json(404, error_body("no such job"));
    };
    match job.phase() {
        JobPhase::Queued => {
            Response::json(200, format!("{{\"id\":\"{id}\",\"status\":\"queued\"}}"))
        }
        JobPhase::Running => {
            Response::json(200, format!("{{\"id\":\"{id}\",\"status\":\"running\"}}"))
        }
        // Splice the stored body verbatim so the `result` field is
        // byte-identical to the sync answer.
        JobPhase::Done(output) => with_degraded(
            Response::json(
                200,
                format!(
                    "{{\"id\":\"{id}\",\"status\":\"done\",\"result\":{}}}",
                    output.body
                ),
            ),
            output.degraded,
        ),
        JobPhase::Failed(msg) => Response::json(
            200,
            format!(
                "{{\"id\":\"{id}\",\"status\":\"failed\",\"error\":{}}}",
                serde_json::to_string(&serde::Value::String(msg)).expect("serializes")
            ),
        ),
    }
}
