//! The reactor event loop: one thread, one `poll(2)` set covering the
//! shared listener, the waker pipe, and every connection this loop
//! owns.

use std::collections::HashMap;
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use polling::{PollFd, POLLERR, POLLHUP, POLLIN, POLLNVAL, POLLOUT};

use super::conn::{Conn, Fate};
use super::{Completion, Inbox, ReactorStats};
use crate::api::error_body;
use crate::engine::Engine;
use crate::http::{render_response, ReadError, Request, Response};
use crate::server::{self, Routed};

/// Poll timeout — the idle-sweep / stop-flag observation cadence.
const TICK: Duration = Duration::from_millis(250);

/// How long a draining loop waits for in-flight responses after the
/// stop flag flips before abandoning them.
const DRAIN_GRACE: Duration = Duration::from_secs(10);

/// Everything an event loop needs, cloned per loop at spawn.
pub(crate) struct LoopCtx {
    pub engine: Arc<Engine>,
    pub inbox: Arc<Inbox>,
    pub stop: Arc<AtomicBool>,
    pub stats: Arc<ReactorStats>,
    pub max_body: usize,
    pub idle_timeout: Duration,
}

/// Runs one event loop until shutdown completes.
pub(crate) fn event_loop(ctx: &LoopCtx, listener: &TcpListener, mut waker_rx: TcpStream) {
    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut next_token: u64 = 1;
    let mut stop_since: Option<Instant> = None;
    loop {
        let stopping = ctx.stop.load(Ordering::Acquire);
        if stopping && stop_since.is_none() {
            stop_since = Some(Instant::now());
        }
        if stopping {
            let drained = conns.values().all(|c| !c.has_work());
            let expired = stop_since
                .map(|t| t.elapsed() >= DRAIN_GRACE)
                .unwrap_or(false);
            if drained || expired {
                break;
            }
        }

        // Build the poll set: waker, listener (while accepting), then
        // one entry per connection with a live interest.
        let mut fds = Vec::with_capacity(conns.len() + 2);
        fds.push(PollFd::new(waker_rx.as_raw_fd(), POLLIN));
        let accepting = !stopping;
        if accepting {
            fds.push(PollFd::new(listener.as_raw_fd(), POLLIN));
        }
        let base = fds.len();
        let mut tokens = Vec::with_capacity(conns.len());
        for (&token, conn) in conns.iter() {
            let interest = conn.interest();
            if interest != 0 {
                fds.push(PollFd::new(conn.stream.as_raw_fd(), interest));
                tokens.push(token);
            }
        }

        match polling::poll(&mut fds, TICK.as_millis() as i32) {
            Ok(_) => {}
            Err(_) => {
                // A transient poll failure: back off a tick rather
                // than spin.
                std::thread::sleep(Duration::from_millis(10));
            }
        }
        ctx.stats.wakeups.fetch_add(1, Ordering::Relaxed);

        if fds[0].has(POLLIN) {
            super::drain_waker(&mut waker_rx);
        }
        // Apply completions regardless of which fd woke us — the
        // waker is an optimisation, not the source of truth.
        for completion in ctx.inbox.drain() {
            apply_completion(&mut conns, completion);
        }

        if accepting && fds[1].has(POLLIN) {
            accept_ready(ctx, listener, &mut conns, &mut next_token);
        }

        for (i, &token) in tokens.iter().enumerate() {
            let revents_fd = &fds[base + i];
            let mut fate = Fate::Keep;
            if let Some(conn) = conns.get_mut(&token) {
                if revents_fd.has(POLLERR | POLLNVAL) {
                    fate = Fate::Close;
                } else {
                    if revents_fd.has(POLLIN | POLLHUP) && fate == Fate::Keep {
                        fate = handle_readable(ctx, token, conn);
                    }
                    if revents_fd.has(POLLOUT) && fate == Fate::Keep {
                        fate = flush(ctx, conn);
                    }
                }
            }
            if fate == Fate::Close {
                close(ctx, &mut conns, token);
            }
        }

        sweep_idle(ctx, &mut conns, stopping);
    }

    // Abandon whatever is left (grace expired or nothing pending).
    let remaining: Vec<u64> = conns.keys().copied().collect();
    for token in remaining {
        close(ctx, &mut conns, token);
    }
}

/// Accepts every pending connection on the shared listener.
fn accept_ready(
    ctx: &LoopCtx,
    listener: &TcpListener,
    conns: &mut HashMap<u64, Conn>,
    next_token: &mut u64,
) {
    // Errors mean WouldBlock, or another loop won the accept race.
    while let Ok((stream, _)) = listener.accept() {
        if stream.set_nonblocking(true).is_err() {
            continue;
        }
        let _ = stream.set_nodelay(true);
        let token = *next_token;
        *next_token += 1;
        conns.insert(token, Conn::new(stream, Instant::now()));
        ctx.stats.accepted.fetch_add(1, Ordering::Relaxed);
        ctx.stats.connections.fetch_add(1, Ordering::Relaxed);
    }
}

/// Reads and dispatches every complete request on a readable
/// connection, then answers any protocol error and flushes.
fn handle_readable(ctx: &LoopCtx, token: u64, conn: &mut Conn) -> Fate {
    let stopping = ctx.stop.load(Ordering::Acquire);
    let fate = conn.on_readable(ctx.max_body, |conn, request| {
        dispatch(ctx, token, conn, &request, stopping)
    });
    if let Some(err) = conn.take_protocol_error() {
        // Byte-identical to the threaded path's terminal responses.
        let response = match err {
            ReadError::BodyTooLarge(n) => Response::json(
                413,
                error_body(&format!("request body of {n} bytes too large")),
            ),
            ReadError::Malformed(msg) => {
                Response::json(400, error_body(&format!("malformed request: {msg}")))
            }
            // `parse_request` never times out or disconnects; close
            // without an answer if it somehow surfaces here.
            ReadError::TimedOut | ReadError::Disconnected => return Fate::Close,
        };
        ctx.engine
            .metrics
            .record_request("malformed", response.status);
        conn.push_ready(render_response(&response, false));
    }
    if fate == Fate::Close {
        return Fate::Close;
    }
    flush(ctx, conn)
}

/// Routes one request. Returns `false` when the connection must stop
/// accepting further requests (`Connection: close` or shutdown).
fn dispatch(ctx: &LoopCtx, token: u64, conn: &mut Conn, request: &Request, stopping: bool) -> bool {
    let keep_alive = request.keep_alive() && !stopping;
    let endpoint = server::endpoint_label(request);
    match server::respond(&ctx.engine, request) {
        Routed::Ready(response) => {
            ctx.engine.metrics.record_request(endpoint, response.status);
            conn.push_ready(render_response(&response, keep_alive));
        }
        Routed::Pending(pending) => {
            let seq = conn.reserve_slot(keep_alive);
            let engine = Arc::clone(&ctx.engine);
            let inbox = Arc::clone(&ctx.inbox);
            let job = Arc::clone(&pending.job);
            let id = pending.id;
            let cache_label = pending.cache_label;
            let wants_stats = pending.wants_stats;
            let finish = pending.finish;
            job.on_finish(move |phase| {
                let response =
                    server::complete(&engine, &id, phase, cache_label, wants_stats, &finish);
                engine.metrics.record_request(endpoint, response.status);
                inbox.post(Completion {
                    token,
                    seq,
                    response,
                });
            });
        }
    }
    keep_alive
}

/// Renders a finished response into its reserved slot.
fn apply_completion(conns: &mut HashMap<u64, Conn>, completion: Completion) {
    // The connection may have died while the job ran; completions for
    // unknown tokens are simply dropped.
    if let Some(conn) = conns.get_mut(&completion.token) {
        conn.complete(completion.seq, &completion.response);
    }
}

/// Flushes buffered output, maintaining the stall gauge.
fn flush(ctx: &LoopCtx, conn: &mut Conn) -> Fate {
    let was_stalled = conn.stalled;
    let mut entered = false;
    let fate = conn.flush_output(&mut entered);
    if entered {
        ctx.stats
            .write_stalls_entered
            .fetch_add(1, Ordering::Relaxed);
    }
    if !was_stalled && conn.stalled {
        ctx.stats.write_stalled.fetch_add(1, Ordering::Relaxed);
    } else if was_stalled && !conn.stalled {
        ctx.stats.write_stalled.fetch_sub(1, Ordering::Relaxed);
    }
    fate
}

/// Drops connections idle past the keep-alive timeout (or idle at
/// all, once stopping) with no work in flight.
fn sweep_idle(ctx: &LoopCtx, conns: &mut HashMap<u64, Conn>, stopping: bool) {
    let idle: Vec<u64> = conns
        .iter()
        .filter(|(_, c)| !c.has_work() && (stopping || c.idle_since.elapsed() >= ctx.idle_timeout))
        .map(|(&t, _)| t)
        .collect();
    for token in idle {
        close(ctx, conns, token);
    }
}

/// Removes a connection, keeping the gauges truthful.
fn close(ctx: &LoopCtx, conns: &mut HashMap<u64, Conn>, token: u64) {
    if let Some(conn) = conns.remove(&token) {
        ctx.stats.connections.fetch_sub(1, Ordering::Relaxed);
        if conn.stalled {
            ctx.stats.write_stalled.fetch_sub(1, Ordering::Relaxed);
        }
    }
}
