//! A TCP fault-injection forwarder for partition and flap testing.
//!
//! [`ChaosProxy`] listens on one address and pumps bytes to a fixed
//! upstream, with a live-switchable [`ChaosPolicy`]:
//!
//! - **deny** — new connections are accepted and immediately closed,
//!   established ones are torn down at the next 50 ms tick: the fast
//!   failure shape (connection reset), as a crashed peer or an
//!   administratively filtered link produces. Denying only one node's
//!   inbound proxy creates a *one-way* partition: nobody reaches it,
//!   it still reaches everybody.
//! - **blackhole** — connections are accepted and bytes are read but
//!   never forwarded, and nothing ever comes back: the slow failure
//!   shape, where the caller learns nothing until its own timeout.
//! - **latency** — each request burst toward the upstream is delayed
//!   by the configured amount before being forwarded. A burst is the
//!   chunks read back-to-back after an idle gap, so one HTTP
//!   round-trip pays the latency about once regardless of how the
//!   kernel fragments it.
//!
//! The proxy is deliberately dumb — no HTTP awareness, no random
//! drops — so tests stay reproducible: every behaviour is an explicit
//! policy flip, not a dice roll.

use std::io::{Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// How often pumps re-check the policy and stop flags, and the read
/// timeout that delimits request bursts for latency injection.
const TICK: Duration = Duration::from_millis(50);

/// The live-switchable fault policy. All fields are atomics: tests
/// and the control endpoint flip them while connections are in
/// flight.
#[derive(Debug, Default)]
pub struct ChaosPolicy {
    deny: AtomicBool,
    blackhole: AtomicBool,
    latency_ms: AtomicU64,
}

impl ChaosPolicy {
    /// Denies the route: new connections close immediately,
    /// established ones are torn down within one tick.
    pub fn set_deny(&self, on: bool) {
        self.deny.store(on, Ordering::Release);
    }

    /// Black-holes the route: bytes are consumed, nothing is
    /// forwarded or answered.
    pub fn set_blackhole(&self, on: bool) {
        self.blackhole.store(on, Ordering::Release);
    }

    /// Sets the per-burst forwarding latency toward the upstream.
    pub fn set_latency(&self, latency: Duration) {
        let ms = u64::try_from(latency.as_millis()).unwrap_or(u64::MAX);
        self.latency_ms.store(ms, Ordering::Release);
    }

    /// Current deny state.
    #[must_use]
    pub fn denied(&self) -> bool {
        self.deny.load(Ordering::Acquire)
    }

    /// Current blackhole state.
    #[must_use]
    pub fn blackholed(&self) -> bool {
        self.blackhole.load(Ordering::Acquire)
    }

    /// Current injected latency, milliseconds.
    #[must_use]
    pub fn latency_ms(&self) -> u64 {
        self.latency_ms.load(Ordering::Acquire)
    }
}

/// A running fault proxy: one listener, one upstream, detached
/// per-connection pumps.
pub struct ChaosProxy {
    addr: std::net::SocketAddr,
    policy: Arc<ChaosPolicy>,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
}

impl ChaosProxy {
    /// Binds `listen` (port 0 picks a free port) and starts
    /// forwarding every connection to `upstream`. The upstream does
    /// not need to be listening yet — it is dialed per connection.
    ///
    /// # Errors
    ///
    /// Propagates bind/spawn failures.
    pub fn start(listen: &str, upstream: std::net::SocketAddr) -> std::io::Result<ChaosProxy> {
        let listener = TcpListener::bind(listen)?;
        let addr = listener.local_addr()?;
        let policy = Arc::new(ChaosPolicy::default());
        let stop = Arc::new(AtomicBool::new(false));
        let acceptor = {
            let policy = Arc::clone(&policy);
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("chaos-accept".to_owned())
                .spawn(move || accept_loop(&listener, upstream, &policy, &stop))?
        };
        Ok(ChaosProxy {
            addr,
            policy,
            stop,
            acceptor: Some(acceptor),
        })
    }

    /// The proxy's listening address — what clients and peers dial.
    #[must_use]
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// The live policy handle.
    #[must_use]
    pub fn policy(&self) -> &Arc<ChaosPolicy> {
        &self.policy
    }

    /// Stops accepting and tears down the acceptor. In-flight pumps
    /// notice the stop flag within one tick and exit.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        // Unblock the accept call with a throwaway connection.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(200));
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(
    listener: &TcpListener,
    upstream: std::net::SocketAddr,
    policy: &Arc<ChaosPolicy>,
    stop: &Arc<AtomicBool>,
) {
    for conn in listener.incoming() {
        if stop.load(Ordering::Acquire) {
            return;
        }
        let Ok(conn) = conn else { continue };
        if policy.denied() {
            // Dropping the just-accepted socket resets the client
            // immediately — the fast-failure partition shape.
            continue;
        }
        let policy = Arc::clone(policy);
        let stop = Arc::clone(stop);
        let _ = std::thread::Builder::new()
            .name("chaos-pump".to_owned())
            .spawn(move || handle_conn(conn, upstream, &policy, &stop));
    }
}

/// Dials the upstream and pumps both directions until either side
/// closes, the policy denies, or the proxy stops. Under blackhole the
/// client connection is held (bytes discarded) instead of forwarded.
fn handle_conn(
    client: TcpStream,
    upstream: std::net::SocketAddr,
    policy: &Arc<ChaosPolicy>,
    stop: &Arc<AtomicBool>,
) {
    if policy.blackholed() {
        hold_blackholed(&client, policy, stop);
        return;
    }
    let Ok(server) = TcpStream::connect_timeout(&upstream, Duration::from_secs(5)) else {
        return;
    };
    let _ = client.set_nodelay(true);
    let _ = server.set_nodelay(true);
    let pump_back = {
        let (Ok(server_rx), Ok(client_tx)) = (server.try_clone(), client.try_clone()) else {
            return;
        };
        let policy = Arc::clone(policy);
        let stop = Arc::clone(stop);
        std::thread::Builder::new()
            .name("chaos-pump-back".to_owned())
            .spawn(move || pump(server_rx, client_tx, &policy, &stop, false))
    };
    // Client → upstream carries the injected latency; deny and
    // blackhole flips apply mid-connection.
    pump(client, server, &Arc::clone(policy), &Arc::clone(stop), true);
    if let Ok(handle) = pump_back {
        let _ = handle.join();
    }
}

/// One pumping direction. Reads with a tick-sized timeout so policy
/// and stop flips are honoured within [`TICK`]; an idle gap re-arms
/// the latency injection for the next burst.
fn pump(
    mut from: TcpStream,
    mut to: TcpStream,
    policy: &Arc<ChaosPolicy>,
    stop: &Arc<AtomicBool>,
    inject_latency: bool,
) {
    let _ = from.set_read_timeout(Some(TICK));
    let mut buf = [0u8; 16 * 1024];
    // Whether the next successful read starts a fresh request burst
    // (and therefore pays the injected latency once).
    let mut burst_start = true;
    loop {
        if stop.load(Ordering::Acquire) || policy.denied() || policy.blackholed() {
            let _ = from.shutdown(Shutdown::Both);
            let _ = to.shutdown(Shutdown::Both);
            return;
        }
        match from.read(&mut buf) {
            Ok(0) => {
                // Half-close: let in-flight bytes in the other
                // direction drain, but signal EOF onward.
                let _ = to.shutdown(Shutdown::Write);
                return;
            }
            Ok(n) => {
                if inject_latency && burst_start {
                    let ms = policy.latency_ms();
                    if ms > 0 {
                        std::thread::sleep(Duration::from_millis(ms));
                        if policy.denied() || policy.blackholed() {
                            continue; // re-check tears the conn down
                        }
                    }
                }
                burst_start = false;
                if to.write_all(&buf[..n]).is_err() || to.flush().is_err() {
                    let _ = from.shutdown(Shutdown::Both);
                    return;
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut
                    || e.kind() == std::io::ErrorKind::Interrupted =>
            {
                burst_start = true;
            }
            Err(_) => {
                let _ = to.shutdown(Shutdown::Both);
                return;
            }
        }
    }
}

/// Holds a black-holed connection: reads and discards until the peer
/// gives up, the policy heals, or the proxy stops. Healing closes the
/// connection (the client reconnects cleanly) rather than suddenly
/// forwarding half a conversation.
fn hold_blackholed(client: &TcpStream, policy: &ChaosPolicy, stop: &AtomicBool) {
    let _ = client.set_read_timeout(Some(TICK));
    let mut sink = [0u8; 4096];
    let mut conn = match client.try_clone() {
        Ok(conn) => conn,
        Err(_) => return,
    };
    loop {
        if stop.load(Ordering::Acquire) || !policy.blackholed() || policy.denied() {
            let _ = conn.shutdown(Shutdown::Both);
            return;
        }
        match conn.read(&mut sink) {
            Ok(0) => return,
            Ok(_) => {}
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut
                    || e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}
