//! Per-connection state machine for the reactor: an input buffer fed
//! by nonblocking reads, an ordered queue of response *slots* (one per
//! parsed request, completed possibly out of order, written strictly
//! in order), and an output buffer drained under `POLLOUT`
//! backpressure.

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::Instant;

use polling::{POLLIN, POLLOUT};

use crate::http::{parse_request, render_response, ReadError, Request, Response};

/// Upper bound on responses in flight per connection. Parsing (and
/// read interest) pauses once a client has this many pipelined
/// requests unanswered, bounding per-connection memory.
pub(crate) const MAX_PIPELINE: usize = 32;

/// One response slot in request order.
enum Slot {
    /// The request was dispatched to the scheduler; bytes arrive via
    /// the loop's inbox. The keep-alive decision was made at parse
    /// time so the rendered bytes match the threaded path exactly.
    Pending {
        /// Whether this response advertises `keep-alive`.
        keep_alive: bool,
    },
    /// Wire bytes ready to move into the output buffer.
    Ready(Vec<u8>),
}

/// What a readiness callback decided about the connection's fate.
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum Fate {
    /// Keep polling the connection.
    Keep,
    /// Drop it now (peer gone, protocol finished, or I/O error).
    Close,
}

/// A single reactor-owned connection.
pub(crate) struct Conn {
    pub(crate) stream: TcpStream,
    /// Unparsed request bytes.
    buf: Vec<u8>,
    /// Response slots in request order; `front_seq` is the sequence
    /// number of `slots[0]`.
    slots: VecDeque<Slot>,
    front_seq: u64,
    next_seq: u64,
    /// Rendered bytes being written, and how far we got.
    out: Vec<u8>,
    out_pos: usize,
    /// Set once no further requests will be parsed (`Connection:
    /// close`, protocol error, EOF, or shutdown): the connection
    /// closes after the queued responses flush.
    closing: bool,
    /// Peer closed its write side; close as soon as we've flushed.
    eof: bool,
    /// Currently counted in the write-stall gauge.
    pub(crate) stalled: bool,
    /// A parse failure (400/413) awaiting its terminal response.
    protocol_error: Option<ReadError>,
    /// Last time a complete request was parsed (or the connection
    /// was accepted) — the keep-alive idle clock.
    pub(crate) idle_since: Instant,
}

impl Conn {
    pub(crate) fn new(stream: TcpStream, now: Instant) -> Conn {
        Conn {
            stream,
            buf: Vec::new(),
            slots: VecDeque::new(),
            front_seq: 0,
            next_seq: 0,
            out: Vec::new(),
            out_pos: 0,
            closing: false,
            eof: false,
            stalled: false,
            protocol_error: None,
            idle_since: now,
        }
    }

    /// The `poll(2)` event mask this connection currently cares about.
    pub(crate) fn interest(&self) -> i16 {
        let mut events = 0;
        if self.wants_read() {
            events |= POLLIN;
        }
        if self.has_output() {
            events |= POLLOUT;
        }
        events
    }

    fn wants_read(&self) -> bool {
        !self.closing && !self.eof && self.slots.len() < MAX_PIPELINE
    }

    fn has_output(&self) -> bool {
        self.out_pos < self.out.len()
    }

    /// True while any response has yet to be fully written — including
    /// the terminal 400/413 a recorded protocol error still owes.
    pub(crate) fn has_work(&self) -> bool {
        !self.slots.is_empty() || self.has_output() || self.protocol_error.is_some()
    }

    /// Whether the connection is done and should be dropped: nothing
    /// left to write and no way to make progress.
    fn finished(&self) -> bool {
        (self.closing || self.eof) && !self.has_work()
    }

    /// Reads until `WouldBlock`, appending to the parse buffer.
    /// Returns `Fate::Close` on a hard I/O error or when EOF arrives
    /// with nothing left to flush.
    fn fill(&mut self) -> Fate {
        let mut chunk = [0u8; 16 * 1024];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    // Peer half-closed; it may still read responses
                    // for requests already pipelined.
                    self.eof = true;
                    return if self.has_work() {
                        Fate::Keep
                    } else {
                        Fate::Close
                    };
                }
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Fate::Keep,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return Fate::Close,
            }
        }
    }

    /// Parses the next complete request out of the buffer.
    ///
    /// `Ok(Some(_))` reserves nothing — the caller decides between an
    /// immediate [`push_ready`](Conn::push_ready) and a
    /// [`reserve_slot`](Conn::reserve_slot).
    fn next_request(&mut self, max_body: usize) -> Result<Option<Request>, ReadError> {
        if self.buf.is_empty() {
            return Ok(None);
        }
        match parse_request(&self.buf, max_body)? {
            Some((request, consumed)) => {
                self.buf.drain(..consumed);
                Ok(Some(request))
            }
            None => Ok(None),
        }
    }

    /// Handles `POLLIN`: read, then parse-and-dispatch every complete
    /// request via `dispatch`. The callback returns `false` when the
    /// connection must stop parsing further requests (`Connection:
    /// close` or service shutdown).
    pub(crate) fn on_readable<F>(&mut self, max_body: usize, mut dispatch: F) -> Fate
    where
        F: FnMut(&mut Conn, Request) -> bool,
    {
        if self.fill() == Fate::Close {
            return Fate::Close;
        }
        while self.wants_read() {
            match self.next_request(max_body) {
                Ok(Some(request)) => {
                    self.idle_since = Instant::now();
                    if !dispatch(self, request) {
                        self.closing = true;
                    }
                }
                Ok(None) => break,
                Err(err) => {
                    // Parse failures (400/413) get the same terminal
                    // responses as the threaded path; the reactor
                    // renders them via `take_protocol_error` and the
                    // connection closes once they flush.
                    self.closing = true;
                    self.protocol_error = Some(err);
                    break;
                }
            }
        }
        if self.finished() {
            Fate::Close
        } else {
            Fate::Keep
        }
    }

    /// Appends an already-rendered response in request order.
    pub(crate) fn push_ready(&mut self, bytes: Vec<u8>) {
        self.slots.push_back(Slot::Ready(bytes));
        self.next_seq += 1;
        self.pump();
    }

    /// Reserves the next in-order slot for an asynchronous completion
    /// and returns its sequence number.
    pub(crate) fn reserve_slot(&mut self, keep_alive: bool) -> u64 {
        let seq = self.next_seq;
        self.slots.push_back(Slot::Pending { keep_alive });
        self.next_seq += 1;
        seq
    }

    /// Fills a previously reserved slot, rendering the response with
    /// the keep-alive decision recorded at parse time. Sequence
    /// numbers already flushed are ignored.
    pub(crate) fn complete(&mut self, seq: u64, response: &Response) {
        let Some(offset) = seq.checked_sub(self.front_seq) else {
            return;
        };
        if let Some(slot) = self.slots.get_mut(offset as usize) {
            if let Slot::Pending { keep_alive } = *slot {
                *slot = Slot::Ready(render_response(response, keep_alive));
            }
        }
        self.pump();
    }

    /// Moves every leading `Ready` slot into the output buffer,
    /// preserving request order across out-of-order completions.
    fn pump(&mut self) {
        while matches!(self.slots.front(), Some(Slot::Ready(_))) {
            let Some(Slot::Ready(bytes)) = self.slots.pop_front() else {
                unreachable!("front checked to be ready");
            };
            self.front_seq += 1;
            // Compact the drained prefix so the buffer doesn't grow
            // without bound under pipelining.
            if self.out_pos > 0 && self.out_pos == self.out.len() {
                self.out.clear();
                self.out_pos = 0;
            }
            self.out.extend_from_slice(&bytes);
        }
    }

    /// Writes as much buffered output as the socket accepts, keeping
    /// the `stalled` flag truthful. `stall_entered` is set when this
    /// call newly hit backpressure.
    pub(crate) fn flush_output(&mut self, stall_entered: &mut bool) -> Fate {
        while self.has_output() {
            match self.stream.write(&self.out[self.out_pos..]) {
                Ok(0) => return Fate::Close,
                Ok(n) => self.out_pos += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    if !self.stalled {
                        self.stalled = true;
                        *stall_entered = true;
                    }
                    return Fate::Keep;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return Fate::Close,
            }
        }
        self.stalled = false;
        self.out.clear();
        self.out_pos = 0;
        if self.finished() {
            return Fate::Close;
        }
        Fate::Keep
    }

    /// A protocol error recorded by [`on_readable`](Conn::on_readable)
    /// for the reactor to answer (400/413) before closing.
    pub(crate) fn take_protocol_error(&mut self) -> Option<ReadError> {
        self.protocol_error.take()
    }
}
