//! The nonblocking reactor entry path: a handful of event-loop
//! threads multiplexing every connection over `poll(2)` (the vendored
//! [`polling`] binding), so one node holds tens of thousands of idle
//! keep-alive connections without a thread per socket.
//!
//! Division of labour:
//!
//! - **Event loops** ([`reactor`]) own the sockets: accept, read,
//!   incremental parse ([`crate::http::parse_request`]), write with
//!   backpressure, keep-alive idle sweep. All loops poll one shared
//!   listener; the kernel's accept race balances them.
//! - **Connection state machines** ([`conn`]) keep per-connection
//!   buffers and the in-order response slot queue that makes
//!   pipelining safe: responses are written strictly in request
//!   order, however out of order the jobs finish.
//! - **Scheduling work never runs here.** Routing goes through the
//!   same [`crate::server`] code as the threaded path; a submission
//!   that needs a worker registers a [`crate::engine::Job::on_finish`]
//!   watcher and parks only its *slot*, not a thread. The worker's
//!   completion is posted to the owning loop's [`Inbox`] and flushed
//!   on the next wakeup.
//!
//! Responses are rendered through the same
//! [`crate::http::render_response`] bytes as the threaded path — the
//! entry path is observable only in throughput, never in bytes.

use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::engine::Engine;
use crate::http::Response;

pub mod chaos;
pub(crate) mod conn;
pub(crate) mod reactor;

/// Counters the reactor maintains, rendered as the
/// `noc_svc_reactor_*` metrics family.
#[derive(Debug, Default)]
pub struct ReactorStats {
    /// Connections currently open (gauge).
    pub connections: AtomicU64,
    /// Connections accepted since start.
    pub accepted: AtomicU64,
    /// Readiness wakeups — `poll(2)` returns — across event loops.
    pub wakeups: AtomicU64,
    /// Connections currently blocked on socket write backpressure
    /// (gauge).
    pub write_stalled: AtomicU64,
    /// Responses that hit write backpressure and waited for
    /// `POLLOUT` at least once.
    pub write_stalls_entered: AtomicU64,
}

/// Reactor tuning knobs, filled from the service config.
pub(crate) struct ReactorOptions {
    /// Event-loop threads.
    pub loops: usize,
    /// Largest accepted request body, bytes.
    pub max_body: usize,
    /// Keep-alive idle timeout.
    pub idle_timeout: Duration,
}

/// One queued job completion, posted from a scheduler worker to the
/// event loop owning the connection.
pub(crate) struct Completion {
    /// The connection's loop-local token.
    pub token: u64,
    /// The response slot within the connection.
    pub seq: u64,
    /// The finished response (rendered to wire bytes by the loop,
    /// which knows the slot's keep-alive decision).
    pub response: Response,
}

/// A loop's cross-thread mailbox: completions plus the byte-pipe that
/// wakes the loop out of `poll`.
pub(crate) struct Inbox {
    completions: Mutex<Vec<Completion>>,
    /// Write side of the waker pipe (a loopback socket pair —
    /// everything stays `std`). Nonblocking: a full pipe already
    /// means a wakeup is pending.
    waker_tx: Mutex<TcpStream>,
}

impl Inbox {
    fn new(waker_tx: TcpStream) -> Inbox {
        Inbox {
            completions: Mutex::new(Vec::new()),
            waker_tx: Mutex::new(waker_tx),
        }
    }

    /// Queues a completion and wakes the loop.
    pub(crate) fn post(&self, completion: Completion) {
        self.completions
            .lock()
            .expect("inbox lock")
            .push(completion);
        self.wake();
    }

    /// Wakes the loop without queueing anything (shutdown nudge).
    pub(crate) fn wake(&self) {
        let mut tx = self.waker_tx.lock().expect("inbox lock");
        // WouldBlock means unread wake bytes are already in the pipe.
        let _ = tx.write(&[1]);
    }

    /// Takes every queued completion.
    pub(crate) fn drain(&self) -> Vec<Completion> {
        std::mem::take(&mut *self.completions.lock().expect("inbox lock"))
    }
}

/// The running reactor: join handles plus the per-loop inboxes used
/// to nudge loops awake at shutdown.
pub(crate) struct ReactorHandle {
    loops: Vec<JoinHandle<()>>,
    inboxes: Vec<Arc<Inbox>>,
}

impl ReactorHandle {
    /// Wakes every loop (they observe the stop flag, drain in-flight
    /// responses and exit) and joins them.
    pub(crate) fn shutdown(self) {
        for inbox in &self.inboxes {
            inbox.wake();
        }
        for handle in self.loops {
            let _ = handle.join();
        }
    }

    /// Blocks until every loop exits.
    pub(crate) fn wait(self) {
        for handle in self.loops {
            let _ = handle.join();
        }
    }
}

/// Builds one waker pipe: a connected loopback socket pair, both ends
/// nonblocking. The read side is polled; the write side lives in the
/// loop's [`Inbox`].
fn waker_pair() -> io::Result<(TcpStream, TcpStream)> {
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let addr = listener.local_addr()?;
    let tx = TcpStream::connect(addr)?;
    let local = tx.local_addr()?;
    // Guard against a stray connection racing us to the ephemeral
    // port: accept until we see our own peer.
    let rx = loop {
        let (rx, peer) = listener.accept()?;
        if peer == local {
            break rx;
        }
    };
    tx.set_nonblocking(true)?;
    tx.set_nodelay(true)?;
    rx.set_nonblocking(true)?;
    Ok((tx, rx))
}

/// Drains the waker pipe so its readability is level-triggered per
/// wake batch, not sticky.
pub(crate) fn drain_waker(rx: &mut TcpStream) {
    let mut sink = [0u8; 256];
    loop {
        match rx.read(&mut sink) {
            Ok(0) => return,
            Ok(_) => {}
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

/// Spawns the event loops over a shared nonblocking listener.
pub(crate) fn spawn(
    engine: Arc<Engine>,
    listener: TcpListener,
    stop: Arc<AtomicBool>,
    opts: &ReactorOptions,
) -> io::Result<ReactorHandle> {
    let stats = Arc::new(ReactorStats::default());
    engine.metrics.set_reactor_stats(Arc::clone(&stats));
    listener.set_nonblocking(true)?;
    let mut loops = Vec::new();
    let mut inboxes = Vec::new();
    for i in 0..opts.loops.max(1) {
        let (tx, rx) = waker_pair()?;
        let inbox = Arc::new(Inbox::new(tx));
        let ctx = reactor::LoopCtx {
            engine: Arc::clone(&engine),
            inbox: Arc::clone(&inbox),
            stop: Arc::clone(&stop),
            stats: Arc::clone(&stats),
            max_body: opts.max_body,
            idle_timeout: opts.idle_timeout,
        };
        let listener = listener.try_clone()?;
        loops.push(
            std::thread::Builder::new()
                .name(format!("svc-reactor-{i}"))
                .spawn(move || reactor::event_loop(&ctx, &listener, rx))?,
        );
        inboxes.push(inbox);
    }
    Ok(ReactorHandle { loops, inboxes })
}
