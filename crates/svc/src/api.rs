//! Request and response bodies of the JSON API.
//!
//! These types are the **single serialization of a schedule** in the
//! workspace: the HTTP service, the CLI `--json` output and the
//! `svc_load` load generator all render [`ScheduleResponse`] /
//! [`ValidateResponse`] through [`to_json`](ScheduleResponse::to_json),
//! so a schedule serializes to the same bytes no matter which surface
//! produced it. Determinism matters: the service promises byte-identical
//! bodies whether a request is served cold, from cache, or coalesced
//! onto a concurrent twin.

use serde::{Deserialize, Map, Serialize, Value};

use noc_eas::ScheduleOutcome;
use noc_schedule::{Schedule, ValidationReport};

use crate::hash::{canonical_string, content_hash};

/// The request-correlation header: the service echoes the trace id of
/// every request here, accepts a client-supplied hex id (8–64 chars)
/// inbound, and forwards it on every internal hop. Trace metadata
/// lives in headers and the flight recorder only — never in cache
/// keys, stored records, or response bodies.
pub const TRACE_HEADER: &str = "x-noc-trace";

/// The hop-parent header: internal requests carry the caller's span
/// id here so the receiving node's serving span joins the caller's
/// tree (`parent_span` in the assembled trace).
pub const SPAN_HEADER: &str = "x-noc-span";

/// Body of `POST /v1/schedule`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScheduleRequest {
    /// The communication task graph, in the same JSON shape
    /// `noceas generate --out` writes.
    pub graph: Value,
    /// Platform spec, e.g. `"mesh:4x4"` or `"torus:3x3:yx"`.
    pub platform: String,
    /// Scheduler name (`eas`, `eas-base`, `edf`, `dls`, `anneal`,
    /// `map-then-schedule`); defaults to `eas`.
    #[serde(default)]
    pub scheduler: Option<String>,
    /// Optional fault spec, e.g. `"tile:4,link:1-2"`.
    #[serde(default)]
    pub faults: Option<String>,
    /// Worker threads for the schedulers that parallelize; results are
    /// identical for every value, so this is *excluded* from the cache
    /// key. Defaults to the server's `--threads`.
    #[serde(default)]
    pub threads: Option<usize>,
    /// `"sync"` (default) answers with the schedule; `"async"` answers
    /// `202` with a job id to poll via `GET /v1/jobs/<id>`.
    #[serde(default)]
    pub mode: Option<String>,
    /// `true` asks for a `"stats"` block (per-stage durations and
    /// decision counters) in the response. Presentation-only: excluded
    /// from the cache key, and cached bodies stay byte-identical whether
    /// or not any caller ever asked for stats.
    #[serde(default)]
    pub stats: Option<bool>,
}

impl ScheduleRequest {
    /// Resolved scheduler name.
    #[must_use]
    pub fn scheduler_name(&self) -> &str {
        self.scheduler.as_deref().unwrap_or("eas")
    }

    /// `true` when the client asked for an async submission.
    #[must_use]
    pub fn is_async(&self) -> bool {
        self.mode.as_deref() == Some("async")
    }

    /// `true` when the client asked for the `"stats"` block.
    #[must_use]
    pub fn wants_stats(&self) -> bool {
        self.stats == Some(true)
    }

    /// The canonical cache key: a sorted-key rendering of the
    /// *semantic* request content — graph, platform spec, fault spec and
    /// resolved scheduler name. Insensitive to JSON key order, to
    /// defaulted-vs-explicit `scheduler`, and to the volatile `mode` /
    /// `threads` fields (thread count never changes the schedule).
    #[must_use]
    pub fn canonical_key(&self) -> String {
        let mut m = Map::new();
        m.insert("graph", self.graph.clone());
        m.insert("platform", Value::String(self.platform.clone()));
        m.insert("scheduler", Value::String(self.scheduler_name().to_owned()));
        m.insert(
            "faults",
            match &self.faults {
                Some(f) => Value::String(f.clone()),
                None => Value::Null,
            },
        );
        canonical_string(&Value::Object(m))
    }

    /// Short hex id derived from [`canonical_key`](Self::canonical_key);
    /// doubles as the job id.
    #[must_use]
    pub fn request_hash(&self) -> String {
        content_hash(&self.canonical_key())
    }
}

/// Body of a successful `POST /v1/schedule` answer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScheduleResponse {
    /// Scheduler that produced the schedule.
    pub scheduler: String,
    /// Total Eq. 3 energy, nJ.
    pub energy_nj: f64,
    /// Computation part of the energy, nJ.
    pub computation_nj: f64,
    /// Communication part of the energy, nJ.
    pub communication_nj: f64,
    /// Schedule makespan, ticks.
    pub makespan: u64,
    /// Deadline misses in the schedule.
    pub deadline_misses: usize,
    /// Summed tardiness over the misses, ticks.
    pub tardiness: u64,
    /// `deadline_misses == 0`.
    pub meets_deadlines: bool,
    /// Average routers per data packet.
    pub avg_hops: f64,
    /// `true` when the requested scheduler exhausted its compute budget
    /// and this is the degraded energy-blind EDF fallback schedule
    /// (`scheduler` then reads `"edf"`).
    #[serde(default)]
    pub degraded: bool,
    /// The full schedule artifact (same shape `noceas schedule --out`
    /// writes).
    pub schedule: Schedule,
}

impl ScheduleResponse {
    /// Builds the response from a validated scheduling outcome.
    #[must_use]
    pub fn from_outcome(scheduler: &str, outcome: &ScheduleOutcome) -> Self {
        ScheduleResponse {
            scheduler: scheduler.to_owned(),
            energy_nj: outcome.stats.energy.total().as_nj(),
            computation_nj: outcome.stats.energy.computation.as_nj(),
            communication_nj: outcome.stats.energy.communication.as_nj(),
            makespan: outcome.report.makespan.ticks(),
            deadline_misses: outcome.report.deadline_misses.len(),
            tardiness: outcome.report.total_tardiness().ticks(),
            meets_deadlines: outcome.report.meets_deadlines(),
            avg_hops: outcome.stats.avg_hops_per_packet,
            degraded: false,
            schedule: outcome.schedule.clone(),
        }
    }

    /// The one true serialization: compact JSON, stable field order.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("serialization is infallible")
    }
}

/// Body of `POST /v1/schedule/delta`: an edit sequence against a prior
/// schedule request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeltaRequest {
    /// The prior request — the full `POST /v1/schedule` body the edits
    /// apply against. The service warm-starts from its cached result
    /// when available, recomputing it otherwise; either way the answer
    /// bytes are identical.
    pub prior: Value,
    /// The edit sequence: an array of `noc_eas::delta::Edit` values in
    /// their serde shape, e.g.
    /// `[{"SetDeadline":{"task":3,"deadline":900}}]`.
    pub edits: Value,
    /// Worker threads (identical output for every value; excluded from
    /// the cache key). Defaults to the server's `--threads`.
    #[serde(default)]
    pub threads: Option<usize>,
    /// `"sync"` (default) or `"async"` (poll `GET /v1/jobs/<id>`).
    #[serde(default)]
    pub mode: Option<String>,
    /// `true` asks for the presentation-only `"stats"` block.
    #[serde(default)]
    pub stats: Option<bool>,
}

impl DeltaRequest {
    /// `true` when the client asked for an async submission.
    #[must_use]
    pub fn is_async(&self) -> bool {
        self.mode.as_deref() == Some("async")
    }

    /// `true` when the client asked for the `"stats"` block.
    #[must_use]
    pub fn wants_stats(&self) -> bool {
        self.stats == Some(true)
    }

    /// Parses the embedded prior request.
    ///
    /// # Errors
    ///
    /// A message when `prior` is not a valid schedule-request body.
    pub fn prior_request(&self) -> Result<ScheduleRequest, String> {
        ScheduleRequest::from_value(&self.prior).map_err(|e| format!("invalid prior request: {e}"))
    }

    /// The canonical cache key: `(prior request hash, canonical
    /// edits)`. The prior collapses to its own content hash, so two
    /// delta requests agree exactly when their prior requests are
    /// semantically identical and their edit sequences canonicalize to
    /// the same JSON; `mode`, `threads` and `stats` stay excluded.
    #[must_use]
    pub fn canonical_key(&self, prior: &ScheduleRequest) -> String {
        let mut m = Map::new();
        m.insert(
            "delta_of",
            Value::String(content_hash(&prior.canonical_key())),
        );
        m.insert("edits", self.edits.clone());
        canonical_string(&Value::Object(m))
    }
}

/// Body of a successful `POST /v1/schedule/delta` answer: the
/// warm-start decision wrapped around the ordinary schedule body.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeltaResponse {
    /// `true` when the prior schedule was rebased and repaired;
    /// `false` when the service fell back to a full reschedule.
    pub warm_start: bool,
    /// `"warm-start"` or the fallback reason (`"edit-storm"`,
    /// `"no-alive-pe"`, `"retime-deadlock"`, `"budget-exhausted"`).
    pub reason: String,
    /// Number of edits applied.
    pub edits: usize,
    /// Tasks in the affected-region mask.
    pub mask_tasks: usize,
    /// The schedule of the edited problem, in the exact
    /// `POST /v1/schedule` body shape.
    pub result: ScheduleResponse,
}

impl DeltaResponse {
    /// The one true serialization: compact JSON, stable field order.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("serialization is infallible")
    }
}

/// Body of `POST /v1/validate`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ValidateRequest {
    /// The communication task graph.
    pub graph: Value,
    /// Platform spec, e.g. `"mesh:4x4"`.
    pub platform: String,
    /// The schedule to check (same JSON shape `noceas schedule --out`
    /// writes).
    pub schedule: Value,
    /// Optional fault spec masked into the platform first.
    #[serde(default)]
    pub faults: Option<String>,
}

/// Body of a `POST /v1/validate` answer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ValidateResponse {
    /// `true` when the schedule passed every structural check.
    pub valid: bool,
    /// The violated constraint, when invalid.
    #[serde(default)]
    pub error: Option<String>,
    /// Deadline misses found (0 when invalid — validation stops at the
    /// first structural violation).
    pub deadline_misses: usize,
    /// Summed tardiness over the misses, ticks.
    pub tardiness: u64,
    /// Schedule makespan, ticks (0 when invalid).
    pub makespan: u64,
}

impl ValidateResponse {
    /// A passing report.
    #[must_use]
    pub fn ok(report: &ValidationReport) -> Self {
        ValidateResponse {
            valid: true,
            error: None,
            deadline_misses: report.deadline_misses.len(),
            tardiness: report.total_tardiness().ticks(),
            makespan: report.makespan.ticks(),
        }
    }

    /// A structural failure.
    #[must_use]
    pub fn invalid(error: String) -> Self {
        ValidateResponse {
            valid: false,
            error: Some(error),
            deadline_misses: 0,
            tardiness: 0,
            makespan: 0,
        }
    }

    /// The one true serialization: compact JSON, stable field order.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("serialization is infallible")
    }
}

/// Renders a JSON error body `{"error": "..."}`.
#[must_use]
pub fn error_body(message: &str) -> String {
    let mut m = Map::new();
    m.insert("error", Value::String(message.to_owned()));
    serde_json::to_string(&Value::Object(m)).expect("serialization is infallible")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request(text: &str) -> ScheduleRequest {
        serde_json::from_str(text).expect("parses")
    }

    #[test]
    fn cache_key_ignores_field_order_and_volatile_fields() {
        let a = request(r#"{"platform":"mesh:2x2","graph":{"x":1,"y":2}}"#);
        let b = request(
            r#"{"graph":{"y":2,"x":1},"platform":"mesh:2x2","scheduler":"eas","mode":"async","threads":8}"#,
        );
        assert_eq!(a.canonical_key(), b.canonical_key());
        assert_eq!(a.request_hash(), b.request_hash());
        assert!(!a.is_async());
        assert!(b.is_async());
    }

    #[test]
    fn cache_key_ignores_the_stats_field() {
        let plain = request(r#"{"platform":"mesh:2x2","graph":{"x":1}}"#);
        let with_stats = request(r#"{"platform":"mesh:2x2","graph":{"x":1},"stats":true}"#);
        assert_eq!(plain.canonical_key(), with_stats.canonical_key());
        assert!(!plain.wants_stats());
        assert!(with_stats.wants_stats());
    }

    #[test]
    fn cache_key_separates_different_problems() {
        let a = request(r#"{"platform":"mesh:2x2","graph":{"x":1}}"#);
        let b = request(r#"{"platform":"mesh:4x4","graph":{"x":1}}"#);
        let c = request(r#"{"platform":"mesh:2x2","graph":{"x":1},"scheduler":"edf"}"#);
        let d = request(r#"{"platform":"mesh:2x2","graph":{"x":1},"faults":"tile:1"}"#);
        let keys = [
            a.canonical_key(),
            b.canonical_key(),
            c.canonical_key(),
            d.canonical_key(),
        ];
        for i in 0..keys.len() {
            for j in i + 1..keys.len() {
                assert_ne!(keys[i], keys[j], "keys {i} and {j} must differ");
            }
        }
    }

    #[test]
    fn error_body_escapes() {
        assert_eq!(error_body("bad \"x\""), r#"{"error":"bad \"x\""}"#);
    }

    #[test]
    fn validate_response_shapes() {
        let inv = ValidateResponse::invalid("overlap".into());
        assert!(!inv.valid);
        assert!(inv.to_json().contains("\"overlap\""));
        let parsed: ValidateResponse = serde_json::from_str(&inv.to_json()).expect("round-trips");
        assert_eq!(parsed, inv);
    }
}
