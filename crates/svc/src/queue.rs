//! A bounded FIFO job queue with explicit backpressure.
//!
//! Producers never block: [`JobQueue::try_push`] fails immediately with
//! [`PushError::Full`] when the queue is at capacity, which the HTTP
//! layer maps to `429 Too Many Requests` + `Retry-After`. Rejecting at
//! admission keeps memory bounded under overload instead of queueing
//! unboundedly. Consumers block in [`JobQueue::pop_blocking`]; closing
//! the queue lets them drain everything already admitted and then exit
//! — the graceful-shutdown contract.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a push was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// The queue is at capacity; retry later.
    Full,
    /// The queue was closed (service shutting down).
    Closed,
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// Bounded multi-producer multi-consumer FIFO.
pub struct JobQueue<T> {
    capacity: usize,
    inner: Mutex<Inner<T>>,
    added: Condvar,
}

impl<T> JobQueue<T> {
    /// Creates a queue admitting at most `capacity` pending items.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        JobQueue {
            capacity,
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                closed: false,
            }),
            added: Condvar::new(),
        }
    }

    /// Admits `item` unless the queue is full or closed. Never blocks.
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] at capacity, [`PushError::Closed`] after
    /// [`close`](JobQueue::close).
    pub fn try_push(&self, item: T) -> Result<(), PushError> {
        let mut inner = self.inner.lock().expect("queue lock");
        if inner.closed {
            return Err(PushError::Closed);
        }
        if inner.items.len() >= self.capacity {
            return Err(PushError::Full);
        }
        inner.items.push_back(item);
        self.added.notify_one();
        Ok(())
    }

    /// Admits `item` even past capacity. Crash-recovery replay uses
    /// this: a job the journal already acknowledged must never be
    /// dropped for backpressure, so startup may transiently overfill
    /// the queue (new submissions still see [`PushError::Full`] until
    /// the backlog drains).
    ///
    /// # Errors
    ///
    /// [`PushError::Closed`] after [`close`](JobQueue::close).
    pub fn push_unbounded(&self, item: T) -> Result<(), PushError> {
        let mut inner = self.inner.lock().expect("queue lock");
        if inner.closed {
            return Err(PushError::Closed);
        }
        inner.items.push_back(item);
        self.added.notify_one();
        Ok(())
    }

    /// Blocks until an item is available or the queue is closed *and*
    /// drained; `None` signals the consumer to exit.
    pub fn pop_blocking(&self) -> Option<T> {
        let mut inner = self.inner.lock().expect("queue lock");
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.added.wait(inner).expect("queue lock");
        }
    }

    /// Closes the queue: future pushes fail, consumers drain the
    /// backlog and then receive `None`.
    pub fn close(&self) {
        let mut inner = self.inner.lock().expect("queue lock");
        inner.closed = true;
        self.added.notify_all();
    }

    /// Items currently waiting (excludes jobs already being executed).
    #[must_use]
    pub fn depth(&self) -> usize {
        self.inner.lock().expect("queue lock").items.len()
    }

    /// Admission limit.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_is_preserved() {
        let q = JobQueue::new(8);
        for i in 0..5 {
            q.try_push(i).expect("fits");
        }
        assert_eq!(q.depth(), 5);
        for i in 0..5 {
            assert_eq!(q.pop_blocking(), Some(i));
        }
    }

    #[test]
    fn full_queue_rejects_instead_of_blocking() {
        let q = JobQueue::new(2);
        q.try_push(1).expect("fits");
        q.try_push(2).expect("fits");
        assert_eq!(q.try_push(3), Err(PushError::Full));
        assert_eq!(q.pop_blocking(), Some(1));
        q.try_push(3).expect("space freed");
    }

    #[test]
    fn close_drains_then_signals_exit() {
        let q = JobQueue::new(4);
        q.try_push("a").expect("fits");
        q.close();
        assert_eq!(q.try_push("b"), Err(PushError::Closed));
        assert_eq!(q.pop_blocking(), Some("a"), "backlog drains after close");
        assert_eq!(q.pop_blocking(), None, "then consumers are released");
    }

    #[test]
    fn unbounded_push_ignores_capacity_but_not_close() {
        let q = JobQueue::new(1);
        q.try_push(1).expect("fits");
        assert_eq!(q.try_push(2), Err(PushError::Full));
        q.push_unbounded(2).expect("recovery push overfills");
        q.push_unbounded(3).expect("recovery push overfills");
        assert_eq!(q.depth(), 3);
        assert_eq!(q.pop_blocking(), Some(1), "FIFO order still holds");
        q.close();
        assert_eq!(q.push_unbounded(4), Err(PushError::Closed));
    }

    #[test]
    fn blocked_consumer_wakes_on_push() {
        let q = std::sync::Arc::new(JobQueue::new(1));
        let q2 = std::sync::Arc::clone(&q);
        let h = std::thread::spawn(move || q2.pop_blocking());
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.try_push(42).expect("fits");
        assert_eq!(h.join().expect("no panic"), Some(42));
    }
}
