//! The scheduling engine behind the HTTP surface: request admission,
//! single-flight deduplication, the bounded job queue, the
//! content-addressed response cache and the scheduler workers.
//!
//! Admission order is fixed and lock-disciplined (lock order is always
//! jobs → queue, and the cache lock is never held with either): parse →
//! resolve specs → cache lookup → join an identical in-flight job →
//! enqueue a new one → reject with backpressure. The same canonical
//! request therefore runs the scheduler **at most once** no matter how
//! many clients submit it concurrently, and every one of them receives
//! byte-identical bodies.
//!
//! Three resilience layers wrap job execution:
//!
//! * **Panic isolation** — the scheduler runs under `catch_unwind`, so
//!   a panicking scheduler fails *its own* job with a typed error and
//!   the worker thread lives on.
//! * **Degraded mode** — with a per-request compute budget configured,
//!   a scheduler that exhausts it is answered by the cheap energy-blind
//!   EDF fallback, marked `"degraded": true`, instead of a 500.
//! * **Crash recovery** — with a journal configured, accepted async
//!   jobs are write-ahead logged and replayed on startup (see
//!   [`crate::journal`]), so a killed server finishes what it admitted
//!   and serves byte-identical responses after restart.

use std::collections::{HashMap, VecDeque};
use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use serde::{Deserialize, Value};

use noc_ctg::prelude::TaskGraph;
use noc_eas::prelude::{
    apply_edits, apply_platform_edits, repair_from_traced, AppliedEdits, BufferSink, ComputeBudget,
    EdfScheduler, Edit, Scheduler, SchedulerError, TraceSummary,
};
use noc_platform::prelude::Platform;

use crate::api::{
    DeltaRequest, DeltaResponse, ScheduleRequest, ScheduleResponse, ValidateRequest,
    ValidateResponse,
};
use crate::cache::JobOutput;
use crate::cluster::{
    Cluster, ClusterConfig, ClusterObs, ClusterStats, RecordEnvelope, RecordSource,
};
use crate::journal::{Journal, Record};
use crate::metrics::Metrics;
use crate::obs::{span_us, LogLevel, Recorder, ServiceLog, TraceCtx};
use crate::queue::{JobQueue, PushError};
use crate::store::{Store, StoreConfig, StoreStats, TieredStore};

/// Finished jobs kept for `GET /v1/jobs/<id>` before the oldest are
/// forgotten (their responses usually survive longer in the cache).
const FINISHED_JOBS_RETAINED: usize = 1024;

/// Lifecycle of one scheduling job.
#[derive(Debug, Clone)]
pub enum JobPhase {
    /// Admitted, waiting for a worker.
    Queued,
    /// A worker is executing the scheduler.
    Running,
    /// Finished; the rendered response body and its degraded flag.
    Done(JobOutput),
    /// The scheduler failed; the error message.
    Failed(String),
}

/// The resolved inputs a worker needs; taken (once) by the worker that
/// executes the job.
enum JobWork {
    /// An ordinary `POST /v1/schedule` job.
    Schedule {
        graph: TaskGraph,
        platform: Platform,
        scheduler: Box<dyn Scheduler + Send + Sync>,
        scheduler_name: String,
    },
    /// A `POST /v1/schedule/delta` job: warm-start from the prior
    /// request's cached result (recomputing it on a cache miss) and
    /// repair under the applied edits.
    Delta {
        prior_graph: TaskGraph,
        prior_platform: Box<Platform>,
        prior_scheduler: Box<dyn Scheduler + Send + Sync>,
        prior_scheduler_name: String,
        /// Canonical cache key of the prior request — the warm-start
        /// lookup handle.
        prior_key: String,
        /// The *edited* platform.
        platform: Box<Platform>,
        applied: AppliedEdits,
        threads: usize,
    },
}

/// One admitted scheduling job, shared between the submitting
/// connections and the worker executing it.
pub struct Job {
    /// Content-hash id (doubles as the `GET /v1/jobs/<id>` handle).
    id: String,
    /// Canonical request string — the cache key.
    key: String,
    /// Whether this job has an `acc` record in the journal, so its
    /// terminal phase must be journaled too. Set at admission for async
    /// submissions; flips to `true` when an async client joins a job a
    /// sync submission created first.
    journaled: AtomicBool,
    /// Trace context of the submission that admitted this job (the
    /// first one, under coalescing). Worker-side spans — compute,
    /// store write, replication — parent onto it.
    trace: TraceCtx,
    work: Mutex<Option<JobWork>>,
    state: Mutex<JobPhase>,
    finished: Condvar,
    /// Callbacks fired once when the job reaches a terminal phase —
    /// the reactor's alternative to parking a thread in [`Job::wait`].
    watchers: Mutex<Vec<FinishWatcher>>,
}

/// One completion callback registered via [`Job::on_finish`].
type FinishWatcher = Box<dyn FnOnce(&JobPhase) + Send>;

impl Job {
    /// The job's content-hash id.
    #[must_use]
    pub fn id(&self) -> &str {
        &self.id
    }

    /// Current lifecycle phase (a snapshot).
    #[must_use]
    pub fn phase(&self) -> JobPhase {
        self.state.lock().expect("job lock").clone()
    }

    /// Blocks until the job leaves the queue/running phases, returning
    /// the terminal phase.
    #[must_use]
    pub fn wait(&self) -> JobPhase {
        let mut state = self.state.lock().expect("job lock");
        loop {
            match &*state {
                JobPhase::Done(_) | JobPhase::Failed(_) => return state.clone(),
                JobPhase::Queued | JobPhase::Running => {
                    state = self.finished.wait(state).expect("job lock");
                }
            }
        }
    }

    /// Registers a callback to run once the job reaches a terminal
    /// phase, firing immediately (on the calling thread) when it
    /// already has; otherwise it runs on the worker thread that
    /// finishes the job. Keep callbacks cheap and non-blocking — the
    /// reactor uses them to post completions to its event loops.
    pub fn on_finish(&self, callback: impl FnOnce(&JobPhase) + Send + 'static) {
        // Lock order matters: holding the watcher list while reading
        // the phase means `set_phase` (which stores the phase first,
        // then drains watchers) can never slip between our check and
        // our push — a registered callback is always fired.
        let mut watchers = self.watchers.lock().expect("job lock");
        let phase = self.state.lock().expect("job lock").clone();
        match phase {
            JobPhase::Done(_) | JobPhase::Failed(_) => {
                drop(watchers);
                callback(&phase);
            }
            JobPhase::Queued | JobPhase::Running => watchers.push(Box::new(callback)),
        }
    }

    fn set_phase(&self, phase: JobPhase) {
        let terminal = matches!(phase, JobPhase::Done(_) | JobPhase::Failed(_));
        *self.state.lock().expect("job lock") = phase;
        self.finished.notify_all();
        if terminal {
            let drained = std::mem::take(&mut *self.watchers.lock().expect("job lock"));
            if !drained.is_empty() {
                let snapshot = self.state.lock().expect("job lock").clone();
                for watcher in drained {
                    watcher(&snapshot);
                }
            }
        }
    }
}

/// Outcome of admitting one `POST /v1/schedule` body.
pub enum Submission {
    /// The body was not valid JSON for a [`ScheduleRequest`] → 400.
    BadRequest(String),
    /// The specs inside the body did not resolve (unknown platform,
    /// scheduler, fault set or malformed graph) → 422.
    BadSpec(String),
    /// Served from the response cache → 200 with `X-Cache: hit`.
    Cached {
        /// Content-hash id of the request.
        id: String,
        /// The cached response body and its degraded flag.
        output: JobOutput,
    },
    /// Served from a peer node's store via the cluster's internal
    /// lookup → 200 with `X-Cache: peer`.
    PeerFilled {
        /// Content-hash id of the request.
        id: String,
        /// The peer's stored response body — byte-identical to what a
        /// local run would have produced.
        output: JobOutput,
    },
    /// Joined an identical job already queued or running →
    /// `X-Cache: join`.
    Joined {
        /// Content-hash id of the request.
        id: String,
        /// The in-flight job to wait on.
        job: Arc<Job>,
    },
    /// Admitted as a new job → `X-Cache: miss`.
    Enqueued {
        /// Content-hash id of the request.
        id: String,
        /// The newly queued job.
        job: Arc<Job>,
    },
    /// The job queue is full → 429 with `Retry-After`.
    Rejected,
    /// The engine is shutting down → 503.
    ShuttingDown,
}

struct JobTable {
    /// Live and recently finished jobs by id.
    map: HashMap<String, Arc<Job>>,
    /// Finished ids in completion order, for bounded retention.
    finished: VecDeque<String>,
}

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Bounded job-queue capacity; submissions past it get 429.
    pub queue_capacity: usize,
    /// Response-cache capacity in entries; 0 disables caching.
    pub cache_capacity: usize,
    /// Default scheduler thread count when a request does not name one
    /// (0 = all hardware threads).
    pub threads: usize,
    /// Per-request compute budget, wall-clock milliseconds. A scheduler
    /// that exhausts it is answered by the degraded EDF fallback.
    /// `None` (the default) runs schedulers to completion. Wall-clock
    /// budgets make responses timing-dependent — leave this off when
    /// byte determinism across runs matters more than latency bounds.
    pub budget_ms: Option<u64>,
    /// Path of the crash-safe job journal; `None` disables journaling.
    pub journal: Option<String>,
    /// Directory of the persistent schedule store's disk tier; `None`
    /// runs memory-only (the pre-store behaviour). When set, finished
    /// responses are written through to an append-only segment log and
    /// survive restarts, and any disk failure degrades the service
    /// back to memory-only mode instead of failing requests.
    pub store_dir: Option<String>,
    /// Store segment rotation threshold, bytes.
    pub store_segment_bytes: u64,
    /// Multi-node membership; `None` runs single-node (the default).
    /// See [`crate::cluster`] for ownership, peer cache-fill and
    /// replication semantics.
    pub cluster: Option<ClusterConfig>,
    /// Flight-recorder span capacity (see [`crate::obs::Recorder`]);
    /// 0 (the default here) disables request tracing entirely.
    pub flight_recorder_entries: usize,
    /// Requests at or above this wall time snapshot their span tree
    /// into the slow-request ring (`GET /v1/internal/slow`).
    pub slow_ms: u64,
    /// Path of the structured JSONL service event log; `None` keeps
    /// events on stderr.
    pub log_json: Option<String>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            queue_capacity: 64,
            cache_capacity: 1024,
            threads: 0,
            budget_ms: None,
            journal: None,
            store_dir: None,
            store_segment_bytes: crate::store::DEFAULT_SEGMENT_BYTES,
            cluster: None,
            flight_recorder_entries: 0,
            slow_ms: 250,
            log_json: None,
        }
    }
}

/// Bounded id → canonical-key map maintained in cluster mode, so the
/// internal lookup endpoint can resolve memory-tier records by their
/// 32-hex hash (disk-tier records resolve through the store index,
/// which is keyed on the hash's own lanes).
struct HashIndex {
    map: HashMap<String, String>,
    order: VecDeque<String>,
}

/// Retention bound of the id → key map; sized above the default
/// memory cache so LRU-resident records always resolve.
const HASH_INDEX_RETAINED: usize = 8192;

/// The scheduling engine: admission, cache, queue and workers.
pub struct Engine {
    config: EngineConfig,
    queue: JobQueue<Arc<Job>>,
    /// The two-tier response store: memory LRU fronting the optional
    /// persistent disk tier (see [`crate::store`]).
    store: TieredStore,
    jobs: Mutex<JobTable>,
    journal: Option<Journal>,
    /// Cluster membership and peer I/O; `None` in single-node mode.
    cluster: Option<Cluster>,
    /// Cluster-mode id → key resolution for memory-tier records.
    hash_keys: Mutex<HashIndex>,
    /// The service-wide metrics registry.
    pub metrics: Metrics,
    /// The node's flight recorder (request span trees + slow ring).
    pub recorder: Arc<Recorder>,
    /// The structured service event log.
    pub log: Arc<ServiceLog>,
}

impl Engine {
    /// Creates an engine; workers are spawned by the caller with
    /// [`worker_loop`](Engine::worker_loop). When the config names a
    /// journal, its records are replayed first: finished jobs come back
    /// with their exact response bytes and accepted-but-unfinished jobs
    /// are re-enqueued (past the capacity bound — an acknowledged job is
    /// never dropped).
    ///
    /// # Errors
    ///
    /// Propagates journal open/recovery I/O failures.
    pub fn new(config: EngineConfig) -> io::Result<Arc<Self>> {
        let (journal, backlog) = match &config.journal {
            Some(path) => {
                let (journal, records) = Journal::open(path)?;
                (Some(journal), records)
            }
            None => (None, Vec::new()),
        };
        let metrics = Metrics::new();
        let node = config
            .cluster
            .as_ref()
            .map_or("local", |c| c.self_addr.as_str())
            .to_owned();
        let log = Arc::new(ServiceLog::open(
            config.log_json.as_deref(),
            &node,
            metrics.log_counters(),
        )?);
        let recorder = Arc::new(Recorder::new(
            &node,
            config.flight_recorder_entries,
            config.slow_ms,
        ));
        let store = match &config.store_dir {
            Some(dir) => {
                let stats = Arc::new(StoreStats::default());
                metrics.set_store_stats(Arc::clone(&stats));
                let disk = match Store::open(
                    StoreConfig {
                        dir: PathBuf::from(dir),
                        segment_max_bytes: config.store_segment_bytes,
                        faults: None,
                    },
                    Arc::clone(&stats),
                ) {
                    Ok(disk) => Some(disk),
                    // A store that cannot open is the same failure
                    // class as one that fails later: serve memory-only
                    // rather than refuse to start.
                    Err(err) => {
                        stats.faults.fetch_add(1, Ordering::Relaxed);
                        stats.degraded.store(1, Ordering::Relaxed);
                        log.event(
                            LogLevel::Error,
                            "store-open-failed",
                            &format!("schedule store failed to open ({err}); serving memory-only"),
                            &[("dir", dir)],
                        );
                        None
                    }
                };
                TieredStore::with_disk(config.cache_capacity, disk)
            }
            None => TieredStore::memory_only(config.cache_capacity),
        };
        store.bind_log(&log);
        let cluster = match &config.cluster {
            Some(cluster_config) => {
                let stats = Arc::new(ClusterStats::default());
                metrics.set_cluster_stats(Arc::clone(&stats));
                let obs = ClusterObs {
                    recorder: Arc::clone(&recorder),
                    log: Arc::clone(&log),
                    stages: metrics.stage_observer(),
                };
                Some(Cluster::start_with_obs(cluster_config.clone(), stats, obs)?)
            }
            None => None,
        };
        let engine = Arc::new(Engine {
            queue: JobQueue::new(config.queue_capacity),
            store,
            jobs: Mutex::new(JobTable {
                map: HashMap::new(),
                finished: VecDeque::new(),
            }),
            journal,
            cluster,
            hash_keys: Mutex::new(HashIndex {
                map: HashMap::new(),
                order: VecDeque::new(),
            }),
            metrics,
            recorder,
            log,
            config,
        });
        // The anti-entropy sweep pulls records back out of this
        // engine's store; it holds only a weak reference, so the
        // cluster workers can never outlive-and-leak the engine.
        if let Some(cluster) = &engine.cluster {
            let weak = Arc::downgrade(&engine);
            cluster.bind_source(weak as std::sync::Weak<dyn RecordSource>);
        }
        let backlog_len = backlog.len();
        let kept = engine.replay(backlog);
        engine.compact_journal(kept, backlog_len);
        Ok(engine)
    }

    /// Applies the journal backlog: one pass folds the records per job
    /// id (keeping first-seen order), then each job is restored to its
    /// recorded terminal phase or, lacking one, re-enqueued to run.
    ///
    /// Returns the records the journal still needs after this replay —
    /// the compaction set. A record can be dropped once the response
    /// bytes it protects are durable (and verified readable) in the
    /// persistent store; everything else is kept.
    fn replay(&self, backlog: Vec<Record>) -> Vec<Record> {
        let mut order: Vec<String> = Vec::new();
        let mut accepted: HashMap<String, String> = HashMap::new();
        let mut terminal: HashMap<String, Record> = HashMap::new();
        let total = backlog.len() as u64;
        for record in backlog {
            let id = record.id().to_owned();
            if !accepted.contains_key(&id) && !terminal.contains_key(&id) {
                order.push(id.clone());
            }
            match record {
                Record::Accepted { body, .. } => {
                    accepted.insert(id, body);
                }
                done_or_failed => {
                    terminal.insert(id, done_or_failed);
                }
            }
        }
        let mut kept: Vec<Record> = Vec::new();
        let keep_accepted = |kept: &mut Vec<Record>, id: &str| {
            if let Some(body) = accepted.get(id) {
                kept.push(Record::Accepted {
                    id: id.to_owned(),
                    body: body.clone(),
                });
            }
        };
        for id in order {
            match terminal.remove(&id) {
                Some(Record::Done { degraded, body, .. }) => {
                    // The journal records response bytes only; stage
                    // stats do not survive a restart.
                    let output = JobOutput {
                        body: Arc::new(body.clone()),
                        degraded,
                        stats: None,
                    };
                    // Re-derive the cache key from the accepted body so
                    // resubmissions of the same problem hit the store;
                    // the write-through also persists pre-store journal
                    // bodies, which is what lets compaction drop them.
                    let durable = match accepted.get(&id).and_then(|b| journaled_key(b)) {
                        Some(key) => self.store.insert(&key, &output),
                        None => false,
                    };
                    if !durable {
                        keep_accepted(&mut kept, &id);
                        kept.push(Record::Done {
                            id: id.clone(),
                            degraded,
                            body,
                        });
                    }
                    self.restore_finished(&id, JobPhase::Done(output));
                }
                Some(Record::DoneStored { .. }) => {
                    // The bytes live in the store; resolve them by the
                    // key derived from the accepted body. Resolution
                    // re-verifies the record checksum, so a quarantined
                    // or degraded store falls through to a re-run —
                    // never to wrong bytes.
                    let resolved = accepted
                        .get(&id)
                        .and_then(|b| journaled_key(b))
                        .and_then(|key| self.store.get(&key));
                    match resolved {
                        Some(output) => {
                            self.restore_finished(&id, JobPhase::Done(output));
                        }
                        None => match accepted.get(&id) {
                            // Deterministic scheduling owes the same
                            // bytes the store lost: re-run the job.
                            Some(body) => {
                                keep_accepted(&mut kept, &id);
                                if let Err(reason) = self.recover(&id, body) {
                                    self.restore_finished(&id, JobPhase::Failed(reason));
                                }
                            }
                            None => {
                                self.restore_finished(
                                    &id,
                                    JobPhase::Failed(
                                        "stored response unavailable after restart".to_owned(),
                                    ),
                                );
                            }
                        },
                    }
                }
                Some(Record::Failed { error, .. }) => {
                    kept.push(Record::Failed {
                        id: id.clone(),
                        error: error.clone(),
                    });
                    self.restore_finished(&id, JobPhase::Failed(error));
                }
                Some(Record::Accepted { .. }) => unreachable!("acc records never land in terminal"),
                // Accepted but never finished: the crash interrupted it.
                // Re-admit and re-run; determinism makes the re-run
                // byte-identical to the answer the lost run owed.
                None => {
                    keep_accepted(&mut kept, &id);
                    let body = accepted.get(&id).expect("order only holds seen ids");
                    if let Err(reason) = self.recover(&id, body) {
                        self.restore_finished(&id, JobPhase::Failed(reason));
                    }
                }
            }
        }
        self.metrics
            .journal_replayed
            .fetch_add(total, Ordering::Relaxed);
        if total > 0 {
            self.log.event(
                LogLevel::Info,
                "journal-replay",
                &format!("replayed {total} journal records after restart"),
                &[("records", &total.to_string())],
            );
        }
        self.metrics
            .queue_depth
            .store(self.queue.depth() as u64, Ordering::Relaxed);
        kept
    }

    /// Rewrites the journal down to `kept` when the store's disk tier
    /// made some records redundant. Skipped without a healthy disk
    /// tier — compaction must never drop bytes the store cannot serve.
    fn compact_journal(&self, kept: Vec<Record>, total: usize) {
        let Some(journal) = &self.journal else { return };
        if kept.len() >= total {
            return;
        }
        let disk_ok = self.store.disk().is_some_and(|d| !d.is_degraded());
        if !disk_ok {
            return;
        }
        match journal.compact(&kept) {
            Ok(()) => {
                self.metrics
                    .journal_compacted
                    .fetch_add((total - kept.len()) as u64, Ordering::Relaxed);
            }
            Err(err) => self.log.event(
                LogLevel::Warn,
                "journal-compact-failed",
                &format!("journal compaction failed: {err}"),
                &[],
            ),
        }
    }

    /// Inserts a journal-recovered job directly in a terminal phase.
    fn restore_finished(&self, id: &str, phase: JobPhase) {
        let job = Arc::new(Job {
            id: id.to_owned(),
            key: String::new(),
            journaled: AtomicBool::new(false),
            trace: TraceCtx::untraced(),
            work: Mutex::new(None),
            state: Mutex::new(phase),
            finished: Condvar::new(),
            watchers: Mutex::new(Vec::new()),
        });
        let mut table = self.jobs.lock().expect("jobs lock");
        table.map.insert(id.to_owned(), job);
        table.finished.push_back(id.to_owned());
    }

    /// Re-admits one accepted-but-unfinished journal record. Unlike
    /// [`submit`](Engine::submit) this bypasses the capacity bound and
    /// never re-journals the acceptance (the original `acc` record is
    /// still on disk).
    fn recover(&self, id: &str, body: &str) -> Result<(), String> {
        let (work, key) = self.resolve_body(body)?;
        let job = Arc::new(Job {
            id: id.to_owned(),
            key,
            journaled: AtomicBool::new(true),
            trace: TraceCtx::untraced(),
            work: Mutex::new(Some(work)),
            state: Mutex::new(JobPhase::Queued),
            finished: Condvar::new(),
            watchers: Mutex::new(Vec::new()),
        });
        let mut table = self.jobs.lock().expect("jobs lock");
        self.queue
            .push_unbounded(Arc::clone(&job))
            .map_err(|_| "queue closed during recovery".to_owned())?;
        table.map.insert(id.to_owned(), job);
        Ok(())
    }

    /// Resolves a parsed request into runnable work + its cache key.
    fn resolve(&self, request: &ScheduleRequest) -> Result<(JobWork, String), String> {
        let platform =
            crate::spec::parse_platform_faulted(&request.platform, request.faults.as_deref())?;
        let graph =
            TaskGraph::from_value(&request.graph).map_err(|e| format!("invalid graph: {e}"))?;
        let threads = request.threads.unwrap_or(self.config.threads);
        let scheduler_name = request.scheduler_name().to_owned();
        let scheduler = crate::spec::parse_scheduler(&scheduler_name, threads)?;
        Ok((
            JobWork::Schedule {
                graph,
                platform,
                scheduler,
                scheduler_name,
            },
            request.canonical_key(),
        ))
    }

    /// Resolves a parsed delta request: the prior problem, the edit
    /// sequence applied to graph and platform, and the delta cache key
    /// `(prior request hash, canonical edits)`.
    fn resolve_delta(&self, request: &DeltaRequest) -> Result<(JobWork, String), String> {
        let prior = request.prior_request()?;
        let prior_platform =
            crate::spec::parse_platform_faulted(&prior.platform, prior.faults.as_deref())?;
        let prior_graph =
            TaskGraph::from_value(&prior.graph).map_err(|e| format!("invalid prior graph: {e}"))?;
        let threads = request.threads.unwrap_or(self.config.threads);
        let prior_scheduler_name = prior.scheduler_name().to_owned();
        let prior_scheduler = crate::spec::parse_scheduler(&prior_scheduler_name, threads)?;
        let edits =
            Vec::<Edit>::from_value(&request.edits).map_err(|e| format!("invalid edits: {e}"))?;
        let applied =
            apply_edits(&prior_graph, &edits).map_err(|e| format!("inapplicable edits: {e}"))?;
        let platform = apply_platform_edits(&prior_platform, &edits)
            .map_err(|e| format!("inapplicable edits: {e}"))?;
        Ok((
            JobWork::Delta {
                prior_key: prior.canonical_key(),
                prior_graph,
                prior_platform: Box::new(prior_platform),
                prior_scheduler,
                prior_scheduler_name,
                platform: Box::new(platform),
                applied,
                threads,
            },
            request.canonical_key(&prior),
        ))
    }

    /// Resolves a body of either request shape (sniffing the `"prior"`
    /// key that only delta requests carry) — the journal recovery path,
    /// which must re-admit both kinds.
    fn resolve_body(&self, body: &str) -> Result<(JobWork, String), String> {
        let value: Value =
            serde_json::from_str(body).map_err(|e| format!("journaled body unparseable: {e}"))?;
        if value.as_object().is_some_and(|o| o.get("prior").is_some()) {
            let request = DeltaRequest::from_value(&value)
                .map_err(|e| format!("journaled body unparseable: {e}"))?;
            self.resolve_delta(&request)
        } else {
            let request = ScheduleRequest::from_value(&value)
                .map_err(|e| format!("journaled body unparseable: {e}"))?;
            self.resolve(&request)
        }
    }

    /// The engine's configuration.
    #[must_use]
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Admits one `POST /v1/schedule` body.
    #[must_use]
    pub fn submit(&self, body: &str) -> Submission {
        self.submit_traced(body, &TraceCtx::untraced())
    }

    /// [`submit`](Engine::submit) with the request's trace context, so
    /// peer fills and worker-side spans attach to the caller's trace.
    #[must_use]
    pub fn submit_traced(&self, body: &str, trace: &TraceCtx) -> Submission {
        let request: ScheduleRequest = match serde_json::from_str(body) {
            Ok(r) => r,
            Err(e) => return Submission::BadRequest(format!("invalid request body: {e}")),
        };

        // Resolve every spec *before* touching cache or queue, so a
        // request that can never schedule is rejected up front and is
        // never admitted, cached or coalesced.
        let (work, key) = match self.resolve(&request) {
            Ok(resolved) => resolved,
            Err(e) => return Submission::BadSpec(e),
        };
        self.admit(body, work, key, request.is_async(), trace)
    }

    /// Admits one `POST /v1/schedule/delta` body. Delta jobs share the
    /// whole admission pipeline — content-addressed cache, single-flight
    /// coalescing, bounded queue, write-ahead journal — keyed on
    /// `(prior request hash, canonical edits)`.
    #[must_use]
    pub fn submit_delta(&self, body: &str) -> Submission {
        self.submit_delta_traced(body, &TraceCtx::untraced())
    }

    /// [`submit_delta`](Engine::submit_delta) with the request's trace
    /// context.
    #[must_use]
    pub fn submit_delta_traced(&self, body: &str, trace: &TraceCtx) -> Submission {
        let request: DeltaRequest = match serde_json::from_str(body) {
            Ok(r) => r,
            Err(e) => return Submission::BadRequest(format!("invalid request body: {e}")),
        };
        let (work, key) = match self.resolve_delta(&request) {
            Ok(resolved) => resolved,
            Err(e) => return Submission::BadSpec(e),
        };
        self.admit(body, work, key, request.is_async(), trace)
    }

    /// The shared admission tail: cache lookup → single-flight join →
    /// bounded enqueue with write-ahead journaling → backpressure.
    fn admit(
        &self,
        body: &str,
        work: JobWork,
        key: String,
        is_async: bool,
        trace: &TraceCtx,
    ) -> Submission {
        let id = crate::hash::content_hash(&key);

        if let Some(output) = self.store.get(&key) {
            self.metrics.cache_hits.fetch_add(1, Ordering::Relaxed);
            self.note_hash(&id, &key);
            return Submission::Cached { id, output };
        }
        self.metrics.cache_misses.fetch_add(1, Ordering::Relaxed);

        // Peer cache-fill: before scheduling locally, ask the nodes
        // that own this hash for their stored bytes. A hit is served
        // and cached exactly like a local store hit (disk persistence
        // still follows ownership); any miss or peer failure falls
        // through to local compute — never to an error.
        if let Some(cluster) = &self.cluster {
            let fill_started = Instant::now();
            let filled = cluster.fill(&id, &key, trace);
            self.metrics
                .observe_stage("peer_fill", fill_started.elapsed().as_secs_f64());
            if let Some(output) = filled {
                self.store_output(&id, &key, &output);
                // Read repair: a fill that lands on a node in the
                // owner chain just healed a replication gap.
                if cluster.stores_locally(&id) {
                    cluster.stats().read_repairs.fetch_add(1, Ordering::Relaxed);
                }
                return Submission::PeerFilled { id, output };
            }
        }

        // Single-flight: the jobs-table lock makes the check-then-insert
        // atomic, so concurrent identical submissions all land on one job.
        // It stays held across the queue push (lock order jobs → queue):
        // a job must never be visible in the table unless it is actually
        // queued, or a concurrent identical submission could join a job
        // that admission is about to discard and wait on it forever.
        let mut table = self.jobs.lock().expect("jobs lock");
        if let Some(existing) = table.map.get(&id) {
            match existing.phase() {
                JobPhase::Queued | JobPhase::Running => {
                    let job = Arc::clone(existing);
                    // An async client joining a sync-created job still
                    // expects crash durability: upgrade the job to
                    // journaled and write-ahead its acceptance now.
                    if self.journal.is_some()
                        && is_async
                        && !job.journaled.swap(true, Ordering::AcqRel)
                    {
                        self.journal_append(&Record::Accepted {
                            id: id.clone(),
                            body: body.to_owned(),
                        });
                    }
                    drop(table);
                    self.metrics.coalesced.fetch_add(1, Ordering::Relaxed);
                    return Submission::Joined { id, job };
                }
                // A finished twin's body is the canonical response for
                // this request: serve it directly. The cache lookup
                // above can legitimately miss it — the worker publishes
                // Done before the submitter's cache check lands, or the
                // entry was already evicted — and re-running instead
                // would break the at-most-once guarantee.
                JobPhase::Done(output) => {
                    drop(table);
                    self.metrics.coalesced.fetch_add(1, Ordering::Relaxed);
                    return Submission::Cached { id, output };
                }
                // A failed twin is forgotten and the request retried.
                JobPhase::Failed(_) => {
                    table.map.remove(&id);
                    table.finished.retain(|f| f != &id);
                }
            }
        }
        let journaled = self.journal.is_some() && is_async;
        let job = Arc::new(Job {
            id: id.clone(),
            key,
            journaled: AtomicBool::new(journaled),
            trace: trace.clone(),
            work: Mutex::new(Some(work)),
            state: Mutex::new(JobPhase::Queued),
            finished: Condvar::new(),
            watchers: Mutex::new(Vec::new()),
        });

        match self.queue.try_push(Arc::clone(&job)) {
            Ok(()) => {
                table.map.insert(id.clone(), Arc::clone(&job));
                // Write-ahead: the acceptance record hits the journal
                // before `Enqueued` returns — i.e. before any 202 can
                // leave the server — so a crash never acknowledges a
                // job the journal does not know about.
                if journaled {
                    self.journal_append(&Record::Accepted {
                        id: id.clone(),
                        body: body.to_owned(),
                    });
                }
                drop(table);
                self.metrics
                    .queue_depth
                    .store(self.queue.depth() as u64, Ordering::Relaxed);
                Submission::Enqueued { id, job }
            }
            Err(err) => {
                drop(table);
                match err {
                    PushError::Full => {
                        self.metrics.queue_rejected.fetch_add(1, Ordering::Relaxed);
                        self.log.event(
                            LogLevel::Warn,
                            "queue-rejected",
                            "admission queue full; submission rejected with 429",
                            &[("id", &id)],
                        );
                        Submission::Rejected
                    }
                    PushError::Closed => Submission::ShuttingDown,
                }
            }
        }
    }

    /// Looks a job up by its content-hash id.
    #[must_use]
    pub fn job(&self, id: &str) -> Option<Arc<Job>> {
        self.jobs.lock().expect("jobs lock").map.get(id).cloned()
    }

    /// Handles one `POST /v1/validate` body synchronously (validation
    /// is cheap — no queueing, no caching).
    ///
    /// # Errors
    ///
    /// `Err((status, message))` with 400 for unparseable bodies and 422
    /// for unresolvable specs; structural schedule violations are a
    /// *successful* validation with `valid: false`.
    pub fn validate(&self, body: &str) -> Result<ValidateResponse, (u16, String)> {
        let request: ValidateRequest =
            serde_json::from_str(body).map_err(|e| (400, format!("invalid request body: {e}")))?;
        let platform =
            crate::spec::parse_platform_faulted(&request.platform, request.faults.as_deref())
                .map_err(|e| (422, e))?;
        let graph = TaskGraph::from_value(&request.graph)
            .map_err(|e| (422, format!("invalid graph: {e}")))?;
        let schedule = noc_schedule::Schedule::from_value(&request.schedule)
            .map_err(|e| (422, format!("invalid schedule: {e}")))?;
        Ok(match noc_schedule::validate(&schedule, &graph, &platform) {
            Ok(report) => ValidateResponse::ok(&report),
            Err(e) => ValidateResponse::invalid(e.to_string()),
        })
    }

    /// Runs jobs until the queue is closed and drained. Spawn one
    /// thread per scheduling worker on this.
    pub fn worker_loop(&self) {
        while let Some(job) = self.queue.pop_blocking() {
            self.metrics
                .queue_depth
                .store(self.queue.depth() as u64, Ordering::Relaxed);
            self.run_job(&job);
        }
    }

    fn run_job(&self, job: &Job) {
        let Some(work) = job.work.lock().expect("job lock").take() else {
            return; // already executed (double enqueue cannot happen, but stay safe)
        };
        job.set_phase(JobPhase::Running);
        self.metrics.jobs_inflight.fetch_add(1, Ordering::Relaxed);
        let started = Instant::now();
        // Panic isolation: a panicking scheduler fails *this* job with a
        // typed error; the worker thread survives to run the next one.
        let result = catch_unwind(AssertUnwindSafe(|| self.execute(&work)));
        let elapsed = started.elapsed().as_secs_f64();
        let compute_outcome = match &result {
            Ok(Ok(_)) => "ok",
            Ok(Err(_)) => "failed",
            Err(_) => "panic",
        };
        self.recorder.record(
            &self.recorder.child(&job.trace),
            "compute",
            compute_outcome,
            span_us(started),
        );
        self.metrics.jobs_inflight.fetch_sub(1, Ordering::Relaxed);
        let journaled = job.journaled.load(Ordering::Acquire);
        let phase = match result {
            Ok(Ok(output)) => {
                self.metrics
                    .schedules_executed
                    .fetch_add(1, Ordering::Relaxed);
                if output.degraded {
                    self.metrics.degraded.fetch_add(1, Ordering::Relaxed);
                    self.log.event(
                        LogLevel::Warn,
                        "degraded-schedule",
                        "compute budget expired; served the EDF fallback schedule",
                        &[("id", &job.id)],
                    );
                }
                self.metrics.observe_latency(elapsed);
                let write_started = Instant::now();
                let durable = self.store_output(&job.id, &job.key, &output);
                self.recorder.record(
                    &self.recorder.child(&job.trace),
                    "store_write",
                    if durable { "durable" } else { "memory" },
                    span_us(write_started),
                );
                if let Some(cluster) = &self.cluster {
                    cluster.replicate(&job.id, &job.key, &output, &job.trace);
                }
                if journaled {
                    // With the bytes durable in the store, the journal
                    // records only the completion fact — replay
                    // resolves the body from the store, and compaction
                    // keeps the journal bounded.
                    let record = if durable {
                        Record::DoneStored {
                            id: job.id.clone(),
                            degraded: output.degraded,
                        }
                    } else {
                        Record::Done {
                            id: job.id.clone(),
                            degraded: output.degraded,
                            body: output.body.as_str().to_owned(),
                        }
                    };
                    let append_started = Instant::now();
                    self.journal_append(&record);
                    self.recorder.record(
                        &self.recorder.child(&job.trace),
                        "journal_append",
                        if durable { "done-stored" } else { "done" },
                        span_us(append_started),
                    );
                }
                JobPhase::Done(output)
            }
            Ok(Err(message)) => {
                self.metrics.schedule_errors.fetch_add(1, Ordering::Relaxed);
                if journaled {
                    self.journal_append(&Record::Failed {
                        id: job.id.clone(),
                        error: message.clone(),
                    });
                }
                JobPhase::Failed(message)
            }
            Err(payload) => {
                let message = format!(
                    "scheduler worker panicked: {}",
                    noc_par::WorkerPanic::from_payload(payload).message
                );
                self.metrics.worker_panics.fetch_add(1, Ordering::Relaxed);
                self.metrics.schedule_errors.fetch_add(1, Ordering::Relaxed);
                if journaled {
                    self.journal_append(&Record::Failed {
                        id: job.id.clone(),
                        error: message.clone(),
                    });
                }
                JobPhase::Failed(message)
            }
        };
        job.set_phase(phase);
        self.retire(&job.id);
    }

    /// Runs the scheduler under the configured compute budget. A budget
    /// interrupt is answered by the energy-blind EDF fallback — a fast
    /// polynomial schedule marked `"degraded": true` — so an expired
    /// budget degrades quality instead of failing the request.
    ///
    /// Every run is traced into a wall-clock [`BufferSink`]: the trace
    /// feeds the `noc_svc_stage_seconds` histograms and the per-job
    /// stats block, while the schedule itself stays byte-identical to
    /// an untraced run (logical timestamps carry all ordering).
    fn execute(&self, work: &JobWork) -> Result<JobOutput, String> {
        match work {
            JobWork::Schedule {
                graph,
                platform,
                scheduler,
                scheduler_name,
            } => self.execute_schedule(graph, platform, scheduler.as_ref(), scheduler_name),
            JobWork::Delta { .. } => self.execute_delta(work),
        }
    }

    fn execute_schedule(
        &self,
        graph: &TaskGraph,
        platform: &Platform,
        scheduler: &(dyn Scheduler + Send + Sync),
        scheduler_name: &str,
    ) -> Result<JobOutput, String> {
        let mut sink = BufferSink::with_wall_clock();
        let outcome = match self.config.budget_ms {
            None => {
                scheduler.schedule_traced(graph, platform, &ComputeBudget::unlimited(), &mut sink)
            }
            Some(ms) => {
                let budget = ComputeBudget::wall_clock(Duration::from_millis(ms));
                match scheduler.schedule_traced(graph, platform, &budget, &mut sink) {
                    Err(SchedulerError::Interrupted | SchedulerError::BudgetExhausted(_)) => {
                        return match EdfScheduler::new().schedule(graph, platform) {
                            Ok(outcome) => {
                                // Truthful labelling: the schedule served
                                // is EDF's, whatever was asked for. The
                                // interrupted run's half-finished trace
                                // is dropped — no stats block.
                                let mut response = ScheduleResponse::from_outcome("edf", &outcome);
                                response.degraded = true;
                                Ok(JobOutput {
                                    body: Arc::new(response.to_json()),
                                    degraded: true,
                                    stats: None,
                                })
                            }
                            Err(e) => Err(format!("degraded EDF fallback failed: {e}")),
                        };
                    }
                    other => other,
                }
            }
        };
        match outcome {
            Ok(outcome) => {
                let response = ScheduleResponse::from_outcome(scheduler_name, &outcome);
                Ok(self.render_with_stats(&sink, response.to_json()))
            }
            Err(e) => Err(e.to_string()),
        }
    }

    /// Runs one delta job: obtain the prior schedule (from the cache
    /// when the prior request's result is there and not degraded,
    /// recomputing it otherwise — both paths yield byte-identical prior
    /// schedules, so the delta answer never depends on cache luck),
    /// then warm-start repair under the edits via
    /// [`repair_from_traced`]. A budget interrupt degrades to EDF on
    /// the *edited* problem, exactly like plain scheduling.
    fn execute_delta(&self, work: &JobWork) -> Result<JobOutput, String> {
        let JobWork::Delta {
            prior_graph,
            prior_platform,
            prior_scheduler,
            prior_scheduler_name,
            prior_key,
            platform,
            applied,
            threads,
        } = work
        else {
            unreachable!("execute_delta is only called on delta work");
        };
        // Warm-start source: the prior request's stored response —
        // memory LRU first, then the persistent disk tier, so priors
        // resolve even after a restart or an LRU eviction. A degraded
        // (EDF-fallback) entry is ignored — warm-starting from it
        // would make the answer depend on *when* the prior ran, so
        // the prior is recomputed in full instead.
        let cached = self.store.get(prior_key).filter(|output| !output.degraded);
        let prior_schedule = match cached {
            Some(output) => {
                self.metrics
                    .delta_prior_hits
                    .fetch_add(1, Ordering::Relaxed);
                ScheduleResponse::from_value(
                    &serde_json::from_str(output.body.as_str())
                        .map_err(|e| format!("cached prior body unparseable: {e}"))?,
                )
                .map_err(|e| format!("cached prior body unparseable: {e}"))?
                .schedule
            }
            None => {
                let outcome = prior_scheduler
                    .schedule(prior_graph, prior_platform)
                    .map_err(|e| format!("prior schedule failed: {e}"))?;
                // Populate the store so the prior request itself (and
                // the next delta against it) is served without work.
                let response = ScheduleResponse::from_outcome(prior_scheduler_name, &outcome);
                let prior_id = crate::hash::content_hash(prior_key);
                self.store_output(
                    &prior_id,
                    prior_key,
                    &JobOutput::new(Arc::new(response.to_json())),
                );
                outcome.schedule
            }
        };

        let mut sink = BufferSink::with_wall_clock();
        let budget = match self.config.budget_ms {
            None => ComputeBudget::unlimited(),
            Some(ms) => ComputeBudget::wall_clock(Duration::from_millis(ms)),
        };
        let result = repair_from_traced(
            prior_graph,
            &prior_schedule,
            platform,
            applied,
            *threads,
            &budget,
            &mut sink,
        );
        match result {
            Ok(delta) => {
                if delta.warm_start {
                    self.metrics.delta_warm.fetch_add(1, Ordering::Relaxed);
                } else {
                    self.metrics.delta_fallback.fetch_add(1, Ordering::Relaxed);
                }
                let response = DeltaResponse {
                    warm_start: delta.warm_start,
                    reason: delta.reason.to_owned(),
                    edits: delta.edits,
                    mask_tasks: delta.mask_tasks,
                    result: ScheduleResponse::from_outcome("eas", &delta.outcome),
                };
                Ok(self.render_with_stats(&sink, response.to_json()))
            }
            Err(SchedulerError::Interrupted | SchedulerError::BudgetExhausted(_))
                if self.config.budget_ms.is_some() =>
            {
                self.metrics.delta_fallback.fetch_add(1, Ordering::Relaxed);
                match EdfScheduler::new().schedule(&applied.graph, platform) {
                    Ok(outcome) => {
                        let mut inner = ScheduleResponse::from_outcome("edf", &outcome);
                        inner.degraded = true;
                        let response = DeltaResponse {
                            warm_start: false,
                            reason: "budget-exhausted".to_owned(),
                            edits: applied.edits.len(),
                            mask_tasks: 0,
                            result: inner,
                        };
                        Ok(JobOutput {
                            body: Arc::new(response.to_json()),
                            degraded: true,
                            stats: None,
                        })
                    }
                    Err(e) => Err(format!("degraded EDF fallback failed: {e}")),
                }
            }
            Err(e) => Err(e.to_string()),
        }
    }

    /// Renders a finished body with the producing run's stats block
    /// riding alongside (never inside) it, and feeds the per-stage
    /// histograms.
    fn render_with_stats(&self, sink: &BufferSink, body: String) -> JobOutput {
        let summary = TraceSummary::from_events(sink.events());
        for (stage, micros) in &summary.stage_micros {
            #[allow(clippy::cast_precision_loss)]
            self.metrics
                .observe_stage(stage, *micros as f64 / 1_000_000.0);
        }
        let stats = serde_json::to_string(&summary).expect("serialization is infallible");
        let mut output = JobOutput::new(Arc::new(body));
        output.stats = Some(Arc::new(stats));
        output
    }

    /// Appends to the journal when one is configured. Append failures
    /// are logged, not fatal: a full disk degrades crash durability,
    /// never availability.
    fn journal_append(&self, record: &Record) {
        if let Some(journal) = &self.journal {
            if let Err(e) = journal.append(record) {
                self.log.event(
                    LogLevel::Error,
                    "journal-append-failed",
                    &format!("journal append failed: {e}"),
                    &[],
                );
            }
        }
    }

    /// Records `id` as finished and prunes the oldest finished jobs
    /// past the retention bound.
    fn retire(&self, id: &str) {
        let mut table = self.jobs.lock().expect("jobs lock");
        table.finished.push_back(id.to_owned());
        while table.finished.len() > FINISHED_JOBS_RETAINED {
            if let Some(old) = table.finished.pop_front() {
                table.map.remove(&old);
            }
        }
    }

    /// Closes the queue: pending submissions fail with
    /// [`Submission::ShuttingDown`], workers drain the backlog and
    /// exit. In cluster mode the replicator drains its backlog and
    /// stops too.
    pub fn shutdown(&self) {
        self.queue.close();
        if let Some(cluster) = &self.cluster {
            cluster.shutdown();
        }
    }

    /// The cluster layer, when this node runs in multi-node mode.
    #[must_use]
    pub fn cluster(&self) -> Option<&Cluster> {
        self.cluster.as_ref()
    }

    /// Stores a finished output: the memory tier always, the disk
    /// tier only when this node owns or replicates the hash (every
    /// node in single-node mode). Also indexes id → key for the
    /// internal lookup endpoint. Returns disk durability.
    fn store_output(&self, id: &str, key: &str, output: &JobOutput) -> bool {
        self.note_hash(id, key);
        let write_disk = self
            .cluster
            .as_ref()
            .is_none_or(|cluster| cluster.stores_locally(id));
        self.store.insert_tiered(key, output, write_disk)
    }

    /// Records `id → key` in the bounded cluster hash index (no-op in
    /// single-node mode — nothing queries by bare hash there).
    fn note_hash(&self, id: &str, key: &str) {
        if self.cluster.is_none() {
            return;
        }
        let mut index = self.hash_keys.lock().expect("hash index lock");
        if index.map.insert(id.to_owned(), key.to_owned()).is_none() {
            index.order.push_back(id.to_owned());
            while index.order.len() > HASH_INDEX_RETAINED {
                if let Some(old) = index.order.pop_front() {
                    index.map.remove(&old);
                }
            }
        }
    }

    /// Serves one internal `GET /v1/internal/lookup/<hash>`: resolves
    /// the 32-hex content hash to the stored record, first through
    /// the id → key index (memory or disk), then straight through the
    /// disk index, whose keys *are* the hash's two 64-bit lanes. The
    /// resolved record's key is re-hashed and compared to `hash`, so
    /// a lane collision can never leak another request's bytes.
    #[must_use]
    pub fn internal_lookup(&self, hash: &str) -> Option<(String, JobOutput)> {
        let resolved = self.lookup_record(hash)?;
        if let Some(cluster) = &self.cluster {
            cluster
                .stats()
                .lookups_served
                .fetch_add(1, Ordering::Relaxed);
        }
        Some(resolved)
    }

    /// Resolves a 32-hex content hash to its stored record without
    /// touching the peer-lookup counters — shared by the internal
    /// lookup endpoint and the anti-entropy sweep.
    fn lookup_record(&self, hash: &str) -> Option<(String, JobOutput)> {
        let noted = self
            .hash_keys
            .lock()
            .expect("hash index lock")
            .map
            .get(hash)
            .cloned();
        let resolved = match noted {
            Some(key) => self.store.get(&key).map(|output| (key, output)),
            None => None,
        };
        resolved.or_else(|| {
            let (key, output) = self.store.get_by_lanes(parse_hash_lanes(hash)?)?;
            if crate::hash::content_hash(&key) != hash {
                return None;
            }
            self.note_hash(hash, &key);
            Some((key, output))
        })
    }

    /// The record ids this node *durably* holds — the body of
    /// `GET /v1/internal/digest`, i.e. what peers may rely on when
    /// deciding whether this node needs a record re-replicated. With
    /// a healthy disk tier that is the disk index (anti-entropy's
    /// convergence target); memory-only nodes report LRU-resident
    /// records instead.
    #[must_use]
    pub fn digest_ids(&self) -> Vec<String> {
        let mut ids = match self.store.disk() {
            Some(disk) if !disk.is_degraded() => lanes_to_ids(disk.indexed_lanes()),
            _ => self.memory_held_ids(),
        };
        ids.sort();
        ids.dedup();
        ids
    }

    /// Every id this node can push during anti-entropy: the disk tier
    /// plus memory-resident records — a node may hold bytes it does
    /// not own on disk (e.g. computed during a partition) and must
    /// still be able to push them to their owners.
    fn replicable_ids(&self) -> Vec<String> {
        let mut ids = match self.store.disk() {
            Some(disk) if !disk.is_degraded() => lanes_to_ids(disk.indexed_lanes()),
            _ => Vec::new(),
        };
        ids.extend(self.memory_held_ids());
        ids.sort();
        ids.dedup();
        ids
    }

    /// Noted ids whose records are resident in the memory tier.
    fn memory_held_ids(&self) -> Vec<String> {
        let index = self.hash_keys.lock().expect("hash index lock");
        index
            .map
            .iter()
            .filter(|(_, key)| self.store.contains_memory(key))
            .map(|(id, _)| id.clone())
            .collect()
    }

    /// Applies one internal `POST /v1/internal/record/<hash>` body: a
    /// peer's [`RecordEnvelope`] whose canonical key must hash to the
    /// addressed id. The record is persisted like a locally computed
    /// one (ownership-aware), making this node able to serve the
    /// exact bytes after the computing node dies.
    ///
    /// # Errors
    ///
    /// A message describing why the envelope was rejected; the server
    /// answers it as a 400.
    pub fn apply_replica(&self, hash: &str, body: &str) -> Result<(), String> {
        let envelope: RecordEnvelope =
            serde_json::from_str(body).map_err(|e| format!("invalid record envelope: {e}"))?;
        if crate::hash::content_hash(&envelope.key) != hash {
            return Err("envelope key does not hash to the addressed id".to_owned());
        }
        let key = envelope.key.clone();
        let output = envelope.into_output();
        self.store_output(hash, &key, &output);
        if let Some(cluster) = &self.cluster {
            cluster
                .stats()
                .replication_received
                .fetch_add(1, Ordering::Relaxed);
        }
        Ok(())
    }

    /// Jobs currently waiting in the queue.
    #[must_use]
    pub fn queue_depth(&self) -> usize {
        self.queue.depth()
    }

    /// `true` when a persistent store was configured but its disk tier
    /// is out of service — the condition the server advertises with
    /// the `Store-Degraded: memory-only` response header.
    #[must_use]
    pub fn store_degraded(&self) -> bool {
        self.store.degraded()
    }
}

impl RecordSource for Engine {
    fn held_ids(&self) -> Vec<String> {
        self.replicable_ids()
    }

    fn fetch(&self, id: &str) -> Option<(String, JobOutput)> {
        self.lookup_record(id)
    }
}

/// Renders store-index lanes back into 32-hex content hashes — the
/// inverse of [`parse_hash_lanes`].
fn lanes_to_ids(lanes: Vec<(u64, u64)>) -> Vec<String> {
    lanes
        .into_iter()
        .map(|(a, b)| format!("{a:016x}{b:016x}"))
        .collect()
}

/// Splits a 32-hex content hash back into the two 64-bit lanes the
/// store index is keyed on.
fn parse_hash_lanes(hash: &str) -> Option<(u64, u64)> {
    if hash.len() != 32 {
        return None;
    }
    let a = u64::from_str_radix(&hash[..16], 16).ok()?;
    let b = u64::from_str_radix(&hash[16..], 16).ok()?;
    Some((a, b))
}

/// Re-derives the cache key of a journaled request body (either
/// shape), sniffing the `"prior"` field only delta requests carry.
fn journaled_key(body: &str) -> Option<String> {
    let value: Value = serde_json::from_str(body).ok()?;
    if value.as_object().is_some_and(|o| o.get("prior").is_some()) {
        let request = DeltaRequest::from_value(&value).ok()?;
        let prior = request.prior_request().ok()?;
        Some(request.canonical_key(&prior))
    } else {
        let request = ScheduleRequest::from_value(&value).ok()?;
        Some(request.canonical_key())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph_json() -> String {
        let platform = crate::spec::parse_platform("mesh:2x2").expect("platform");
        let cfg = noc_ctg::prelude::TgffConfig::category_i(7);
        let mut cfg = cfg;
        cfg.task_count = 8;
        let graph = noc_ctg::prelude::TgffGenerator::new(cfg)
            .generate(&platform)
            .expect("generates");
        serde_json::to_string(&graph).expect("serializes")
    }

    fn request_body(graph: &str) -> String {
        format!(r#"{{"graph":{graph},"platform":"mesh:2x2","scheduler":"edf"}}"#)
    }

    fn engine(config: EngineConfig) -> Arc<Engine> {
        Engine::new(config).expect("engine starts")
    }

    /// Runs the queued backlog inline (tests spawn no worker threads).
    fn drain(engine: &Arc<Engine>) {
        let worker = Arc::clone(engine);
        let handle = std::thread::spawn(move || {
            worker.shutdown();
            worker.worker_loop();
        });
        handle.join().expect("worker exits");
    }

    #[test]
    fn submit_run_cache_round_trip() {
        let engine = engine(EngineConfig::default());
        let body = request_body(&graph_json());

        let Submission::Enqueued { id, job } = engine.submit(&body) else {
            panic!("first submission must enqueue");
        };
        drain(&engine);
        let JobPhase::Done(first) = job.wait() else {
            panic!("job must finish");
        };

        // Second submission: byte-identical body straight from cache.
        let Submission::Cached {
            id: id2,
            output: cached,
        } = engine.submit(&body)
        else {
            panic!("second submission must hit the cache");
        };
        assert_eq!(id, id2);
        assert_eq!(
            *first.body, *cached.body,
            "cache hit must be byte-identical"
        );
        assert!(!cached.degraded);
        assert_eq!(engine.metrics.cache_hits.load(Ordering::Relaxed), 1);
        assert_eq!(engine.metrics.schedules_executed.load(Ordering::Relaxed), 1);
        assert!(engine.job(&id).is_some(), "finished job stays pollable");
    }

    #[test]
    fn executed_jobs_carry_stats_and_feed_stage_histograms() {
        let engine = engine(EngineConfig::default());
        let graph = graph_json();
        let body = format!(r#"{{"graph":{graph},"platform":"mesh:2x2","scheduler":"eas"}}"#);
        let Submission::Enqueued { job, .. } = engine.submit(&body) else {
            panic!("submission must enqueue");
        };
        drain(&engine);
        let JobPhase::Done(output) = job.wait() else {
            panic!("job must finish");
        };
        let stats = output.stats.as_ref().expect("executed jobs carry stats");
        assert!(stats.contains("\"stage_micros\""), "stats is the summary");
        assert!(
            !output.body.contains("stage_micros"),
            "stats ride alongside the body, never inside it"
        );
        let text = engine.metrics.render();
        assert!(text.contains("noc_svc_stage_seconds_count{stage=\"level\"}"));
        assert!(text.contains("noc_svc_stage_seconds_count{stage=\"budgeting\"}"));
        assert!(
            text.contains("noc_svc_jobs_inflight 0"),
            "inflight gauge returns to zero after the job"
        );

        // The cache hit reproduces the producing run's stats.
        let Submission::Cached { output: hit, .. } = engine.submit(&body) else {
            panic!("second submission must hit the cache");
        };
        assert_eq!(
            hit.stats.as_deref(),
            output.stats.as_deref(),
            "cached hits serve the producing run's stats"
        );
    }

    #[test]
    fn identical_concurrent_submissions_coalesce() {
        let engine = engine(EngineConfig::default());
        let body = request_body(&graph_json());
        let Submission::Enqueued { job, .. } = engine.submit(&body) else {
            panic!("first submission must enqueue");
        };
        let Submission::Joined { job: joined, .. } = engine.submit(&body) else {
            panic!("identical submission must join, not re-enqueue");
        };
        assert!(Arc::ptr_eq(&job, &joined));
        assert_eq!(engine.metrics.coalesced.load(Ordering::Relaxed), 1);
        assert_eq!(engine.queue_depth(), 1, "one job queued, not two");
    }

    #[test]
    fn full_queue_rejects() {
        let engine = engine(EngineConfig {
            queue_capacity: 1,
            ..EngineConfig::default()
        });
        let graph = graph_json();
        let a = format!(r#"{{"graph":{graph},"platform":"mesh:2x2","scheduler":"edf"}}"#);
        let b = format!(r#"{{"graph":{graph},"platform":"mesh:2x2","scheduler":"dls"}}"#);
        assert!(matches!(engine.submit(&a), Submission::Enqueued { .. }));
        assert!(matches!(engine.submit(&b), Submission::Rejected));
        assert_eq!(engine.metrics.queue_rejected.load(Ordering::Relaxed), 1);
        // A rejected job must never have been visible in the table: an
        // identical resubmission is rejected again (never joined to a
        // ghost that no worker will ever run), and after drain it would
        // re-enqueue.
        assert!(matches!(engine.submit(&b), Submission::Rejected));
        assert_eq!(engine.jobs.lock().expect("jobs lock").map.len(), 1);
    }

    #[test]
    fn bad_bodies_and_specs_classify() {
        let engine = engine(EngineConfig::default());
        assert!(matches!(
            engine.submit("not json"),
            Submission::BadRequest(_)
        ));
        assert!(matches!(
            engine.submit(r#"{"graph":{},"platform":"ring:9x9"}"#),
            Submission::BadSpec(_)
        ));
        let graph = graph_json();
        assert!(matches!(
            engine.submit(&format!(
                r#"{{"graph":{graph},"platform":"mesh:2x2","scheduler":"magic"}}"#
            )),
            Submission::BadSpec(_)
        ));
        assert_eq!(
            engine.metrics.cache_misses.load(Ordering::Relaxed),
            0,
            "rejected submissions never touch the cache"
        );
    }

    #[test]
    fn shutdown_refuses_new_work() {
        let engine = engine(EngineConfig::default());
        engine.shutdown();
        let body = request_body(&graph_json());
        assert!(matches!(engine.submit(&body), Submission::ShuttingDown));
    }

    #[test]
    fn validate_endpoint_classifies() {
        let engine = engine(EngineConfig::default());
        assert_eq!(engine.validate("nope").unwrap_err().0, 400);
        let graph = graph_json();
        let err = engine
            .validate(&format!(
                r#"{{"graph":{graph},"platform":"mesh:2x2","schedule":{{}}}}"#
            ))
            .unwrap_err();
        assert_eq!(err.0, 422);
    }

    #[test]
    fn expired_budget_degrades_to_edf() {
        let engine = engine(EngineConfig {
            budget_ms: Some(0),
            ..EngineConfig::default()
        });
        let graph = graph_json();
        let body = format!(r#"{{"graph":{graph},"platform":"mesh:2x2","scheduler":"eas"}}"#);
        let Submission::Enqueued { job, .. } = engine.submit(&body) else {
            panic!("submission must enqueue");
        };
        drain(&engine);
        let JobPhase::Done(output) = job.wait() else {
            panic!("an expired budget must degrade, never fail");
        };
        assert!(output.degraded);
        assert!(output.body.contains(r#""degraded":true"#));
        assert!(
            output.body.contains(r#""scheduler":"edf""#),
            "the fallback is labelled truthfully"
        );
        assert_eq!(engine.metrics.degraded.load(Ordering::Relaxed), 1);
        assert_eq!(engine.metrics.schedule_errors.load(Ordering::Relaxed), 0);

        // The cached degraded answer keeps its flag.
        let Submission::Cached { output: hit, .. } = engine.submit(&body) else {
            panic!("second submission must hit the cache");
        };
        assert!(hit.degraded);
        assert_eq!(*hit.body, *output.body);
    }

    #[test]
    fn panicking_scheduler_fails_only_its_own_job() {
        let eng = engine(EngineConfig::default());
        let graph = graph_json();
        let poison =
            format!(r#"{{"graph":{graph},"platform":"mesh:2x2","scheduler":"chaos-panic"}}"#);
        let healthy = request_body(&graph);
        let Submission::Enqueued { job: bad, .. } = eng.submit(&poison) else {
            panic!("poison submission must enqueue");
        };
        let Submission::Enqueued { job: good, .. } = eng.submit(&healthy) else {
            panic!("healthy submission must enqueue");
        };
        // One worker loop runs both jobs back to back: it must survive
        // the first job's panic to finish the second.
        drain(&eng);
        let JobPhase::Failed(msg) = bad.wait() else {
            panic!("poison job must fail, not hang or kill the worker");
        };
        assert!(msg.contains("panicked"), "typed panic error, got `{msg}`");
        assert!(matches!(good.wait(), JobPhase::Done(_)));
        assert_eq!(eng.metrics.worker_panics.load(Ordering::Relaxed), 1);
        assert_eq!(eng.metrics.schedule_errors.load(Ordering::Relaxed), 1);
        assert_eq!(eng.metrics.schedules_executed.load(Ordering::Relaxed), 1);
    }

    fn delta_body(graph: &str, edits: &str) -> String {
        format!(
            r#"{{"prior":{{"graph":{graph},"platform":"mesh:2x2","scheduler":"eas"}},"edits":{edits}}}"#
        )
    }

    #[test]
    fn delta_round_trip_and_cache() {
        let engine = engine(EngineConfig::default());
        let body = delta_body(&graph_json(), r#"[{"SetDeadline":{"task":0}}]"#);
        let Submission::Enqueued { id, job } = engine.submit_delta(&body) else {
            panic!("first delta must enqueue");
        };
        drain(&engine);
        let JobPhase::Done(first) = job.wait() else {
            panic!("delta job must finish");
        };
        assert!(first.body.contains(r#""warm_start""#));
        assert!(first.body.contains(r#""reason""#));
        let Submission::Cached {
            id: id2,
            output: hit,
        } = engine.submit_delta(&body)
        else {
            panic!("second delta must hit the cache");
        };
        assert_eq!(id, id2);
        assert_eq!(*first.body, *hit.body, "delta cache hit is byte-identical");
        assert_eq!(
            engine.metrics.delta_warm.load(Ordering::Relaxed)
                + engine.metrics.delta_fallback.load(Ordering::Relaxed),
            1,
            "exactly one delta decision was made"
        );
    }

    #[test]
    fn delta_bytes_do_not_depend_on_prior_cache_state() {
        let graph = graph_json();
        let prior_body = format!(r#"{{"graph":{graph},"platform":"mesh:2x2","scheduler":"eas"}}"#);
        let delta = delta_body(&graph, r#"[{"SetDeadline":{"task":1}}]"#);

        // Cold engine: the prior is recomputed inside the delta job.
        let cold = engine(EngineConfig::default());
        let Submission::Enqueued { job, .. } = cold.submit_delta(&delta) else {
            panic!("delta must enqueue");
        };
        drain(&cold);
        let JobPhase::Done(cold_out) = job.wait() else {
            panic!("delta job must finish");
        };
        assert_eq!(cold.metrics.delta_prior_hits.load(Ordering::Relaxed), 0);

        // Warm engine: the prior job runs first (FIFO), so its schedule
        // is cached by the time the delta job executes.
        let warm = engine(EngineConfig::default());
        let Submission::Enqueued { job: prior_job, .. } = warm.submit(&prior_body) else {
            panic!("prior must enqueue");
        };
        let Submission::Enqueued { job, .. } = warm.submit_delta(&delta) else {
            panic!("delta must enqueue");
        };
        drain(&warm);
        assert!(matches!(prior_job.wait(), JobPhase::Done(_)));
        let JobPhase::Done(warm_out) = job.wait() else {
            panic!("delta job must finish");
        };
        assert_eq!(warm.metrics.delta_prior_hits.load(Ordering::Relaxed), 1);
        assert_eq!(
            *cold_out.body, *warm_out.body,
            "delta answers must not depend on cache luck"
        );
    }

    #[test]
    fn delta_bad_bodies_classify() {
        let engine = engine(EngineConfig::default());
        assert!(matches!(
            engine.submit_delta("not json"),
            Submission::BadRequest(_)
        ));
        let graph = graph_json();
        // An edit addressing a task the prior graph does not have.
        let body = delta_body(&graph, r#"[{"SetDeadline":{"task":999}}]"#);
        assert!(matches!(engine.submit_delta(&body), Submission::BadSpec(_)));
        // A platform edit that cannot be represented.
        let bad_edits = r#"[{"FailPe":{"pe":999}}]"#;
        assert!(matches!(
            engine.submit_delta(&delta_body(&graph, bad_edits)),
            Submission::BadSpec(_)
        ));
    }

    #[test]
    fn delta_journal_replay_is_byte_identical() {
        let path =
            std::env::temp_dir().join(format!("noc-engine-journal-{}-delta", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let journal_cfg = EngineConfig {
            journal: Some(path.to_string_lossy().into_owned()),
            ..EngineConfig::default()
        };
        let graph = graph_json();
        let body = format!(
            r#"{{"prior":{{"graph":{graph},"platform":"mesh:2x2","scheduler":"eas"}},"edits":[{{"SetDeadline":{{"task":0}}}}],"mode":"async"}}"#
        );

        // Reference answer from a journal-free engine.
        let reference = engine(EngineConfig::default());
        let Submission::Enqueued { job, .. } = reference.submit_delta(&body) else {
            panic!("reference delta must enqueue");
        };
        drain(&reference);
        let JobPhase::Done(expected) = job.wait() else {
            panic!("reference delta must finish");
        };

        // "Crash": accept the async delta, never run it.
        let crashed = engine(journal_cfg.clone());
        let Submission::Enqueued { id, .. } = crashed.submit_delta(&body) else {
            panic!("delta must enqueue");
        };
        drop(crashed);

        // Restart: the delta is re-enqueued from the journal and its
        // answer matches the reference byte for byte.
        let restarted = engine(journal_cfg);
        assert_eq!(
            restarted.metrics.journal_replayed.load(Ordering::Relaxed),
            1
        );
        drain(&restarted);
        let JobPhase::Done(done) = restarted.job(&id).expect("job survives restart").wait() else {
            panic!("recovered delta must finish");
        };
        assert_eq!(
            *done.body, *expected.body,
            "delta recovery must be byte-identical"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn journal_replays_unfinished_and_finished_jobs() {
        let path =
            std::env::temp_dir().join(format!("noc-engine-journal-{}-replay", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let journal_cfg = EngineConfig {
            journal: Some(path.to_string_lossy().into_owned()),
            ..EngineConfig::default()
        };
        let graph = graph_json();
        let body_a = format!(
            r#"{{"graph":{graph},"platform":"mesh:2x2","scheduler":"edf","mode":"async"}}"#
        );
        let body_b = format!(
            r#"{{"graph":{graph},"platform":"mesh:2x2","scheduler":"dls","mode":"async"}}"#
        );

        // A reference run with no journal: what the crashed server owed.
        let reference = engine(EngineConfig::default());
        let Submission::Enqueued { job, .. } = reference.submit(&body_a) else {
            panic!("reference submission must enqueue");
        };
        drain(&reference);
        let JobPhase::Done(expected_a) = job.wait() else {
            panic!("reference job must finish");
        };

        // "Crash": accept two async jobs, never run them, drop the engine.
        let crashed = engine(journal_cfg.clone());
        let Submission::Enqueued { id: id_a, .. } = crashed.submit(&body_a) else {
            panic!("submission must enqueue");
        };
        let Submission::Enqueued { id: id_b, .. } = crashed.submit(&body_b) else {
            panic!("submission must enqueue");
        };
        drop(crashed);

        // Restart: both accepted jobs are re-enqueued and re-run, and
        // the answers are byte-identical to the reference.
        let restarted = engine(journal_cfg.clone());
        assert_eq!(
            restarted.metrics.journal_replayed.load(Ordering::Relaxed),
            2
        );
        drain(&restarted);
        let JobPhase::Done(done_a) = restarted.job(&id_a).expect("job survives restart").wait()
        else {
            panic!("recovered job must finish");
        };
        assert_eq!(
            *done_a.body, *expected_a.body,
            "recovery must be byte-identical"
        );
        assert!(matches!(
            restarted.job(&id_b).expect("job survives restart").wait(),
            JobPhase::Done(_)
        ));
        drop(restarted);

        // Second restart: now the journal holds done records, so both
        // jobs are restored with their exact bytes without re-running,
        // and the cache answers resubmissions.
        let warm = engine(journal_cfg);
        assert_eq!(warm.metrics.journal_replayed.load(Ordering::Relaxed), 4);
        assert_eq!(warm.metrics.schedules_executed.load(Ordering::Relaxed), 0);
        let JobPhase::Done(warm_a) = warm.job(&id_a).expect("job restored").phase() else {
            panic!("restored job must be terminal");
        };
        assert_eq!(*warm_a.body, *expected_a.body);
        let Submission::Cached { output, .. } = warm.submit(&body_a) else {
            panic!("restored done record must populate the cache");
        };
        assert_eq!(*output.body, *expected_a.body);
        let _ = std::fs::remove_file(&path);
    }

    /// Fresh per-test store directory under the OS temp dir.
    fn store_dir(name: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("noc-engine-store-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn store_cfg(dir: &std::path::Path, journal: Option<&std::path::Path>) -> EngineConfig {
        EngineConfig {
            store_dir: Some(dir.to_string_lossy().into_owned()),
            journal: journal.map(|p| p.to_string_lossy().into_owned()),
            ..EngineConfig::default()
        }
    }

    #[test]
    fn store_backed_restart_serves_bytes_with_zero_recompute() {
        let dir = store_dir("restart");
        let cfg = store_cfg(&dir, None);
        let body = request_body(&graph_json());

        let first = engine(cfg.clone());
        let Submission::Enqueued { job, .. } = first.submit(&body) else {
            panic!("cold submission must enqueue");
        };
        drain(&first);
        let JobPhase::Done(expected) = job.wait() else {
            panic!("cold job must finish");
        };
        drop(first);

        // Restart with an empty memory tier: the disk tier answers.
        let restarted = engine(cfg);
        let Submission::Cached { output, .. } = restarted.submit(&body) else {
            panic!("restart must answer from the persistent store");
        };
        assert_eq!(
            *output.body, *expected.body,
            "store-resolved response must be byte-identical"
        );
        assert_eq!(
            restarted.metrics.schedules_executed.load(Ordering::Relaxed),
            0,
            "a store hit must not recompute"
        );
        assert!(!restarted.store_degraded());
        let text = restarted.metrics.render();
        assert!(text.contains("noc_svc_store_hits_total 1"));
        assert!(text.contains("noc_svc_store_degraded 0"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn delta_prior_resolves_from_store_after_restart() {
        let dir = store_dir("delta-prior");
        let cfg = store_cfg(&dir, None);
        let graph = graph_json();
        let prior_body = format!(r#"{{"graph":{graph},"platform":"mesh:2x2","scheduler":"eas"}}"#);

        let first = engine(cfg.clone());
        let Submission::Enqueued { job, .. } = first.submit(&prior_body) else {
            panic!("prior must enqueue");
        };
        drain(&first);
        assert!(matches!(job.wait(), JobPhase::Done(_)));
        drop(first);

        // After restart the prior lives only on disk; the delta's
        // warm start must still resolve it instead of recomputing.
        let restarted = engine(cfg);
        let delta = format!(
            r#"{{"prior":{{"graph":{graph},"platform":"mesh:2x2","scheduler":"eas"}},"edits":[{{"SetDeadline":{{"task":0}}}}]}}"#
        );
        let Submission::Enqueued { job, .. } = restarted.submit_delta(&delta) else {
            panic!("delta must enqueue");
        };
        drain(&restarted);
        assert!(matches!(job.wait(), JobPhase::Done(_)));
        assert_eq!(
            restarted.metrics.delta_prior_hits.load(Ordering::Relaxed),
            1,
            "prior must be served by the disk tier after restart"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn store_open_failure_degrades_to_memory_only() {
        let dir = store_dir("degraded-open");
        // `store_dir` pointing at a regular file: open must fail, and
        // the engine must keep serving (memory-only) instead of dying.
        std::fs::write(&dir, b"not a directory").expect("writes decoy file");
        let degraded = engine(store_cfg(&dir, None));
        assert!(degraded.store_degraded());
        let body = request_body(&graph_json());
        let Submission::Enqueued { job, .. } = degraded.submit(&body) else {
            panic!("degraded engine must still admit jobs");
        };
        drain(&degraded);
        let JobPhase::Done(output) = job.wait() else {
            panic!("degraded engine must still schedule");
        };
        // Memory tier still serves the bytes it computed.
        let Submission::Cached { output: hit, .. } = degraded.submit(&body) else {
            panic!("memory tier must still answer");
        };
        assert_eq!(*hit.body, *output.body);
        let text = degraded.metrics.render();
        assert!(text.contains("noc_svc_store_degraded 1"));
        let _ = std::fs::remove_file(&dir);
    }

    #[test]
    fn journal_compaction_bounds_size_across_restarts() {
        let dir = store_dir("compact");
        let journal =
            std::env::temp_dir().join(format!("noc-engine-journal-{}-compact", std::process::id()));
        let _ = std::fs::remove_file(&journal);
        let cfg = store_cfg(&dir, Some(&journal));
        let graph = graph_json();
        // Only async admissions are journaled (the 202 is the promise
        // the journal exists to keep).
        let body = format!(
            r#"{{"graph":{graph},"platform":"mesh:2x2","scheduler":"edf","mode":"async"}}"#
        );

        let first = engine(cfg.clone());
        let Submission::Enqueued { job, .. } = first.submit(&body) else {
            panic!("submission must enqueue");
        };
        drain(&first);
        assert!(matches!(job.wait(), JobPhase::Done(_)));
        drop(first);
        let after_fill = std::fs::metadata(&journal).expect("journal exists").len();
        assert!(
            after_fill > 0,
            "journal holds accepted + done-stored records"
        );

        // Restart: the response bytes are durable in the store, so
        // compaction drops the settled records from the journal.
        let restarted = engine(cfg.clone());
        assert!(restarted.metrics.journal_compacted.load(Ordering::Relaxed) >= 2);
        drop(restarted);
        let after_compact = std::fs::metadata(&journal).expect("journal exists").len();
        assert!(
            after_compact < after_fill,
            "compaction must shrink the journal ({after_compact} vs {after_fill})"
        );

        // Further idle restarts keep it at the compacted size: the
        // journal is bounded by live work, not by restart count.
        for _ in 0..3 {
            drop(engine(cfg.clone()));
        }
        let steady = std::fs::metadata(&journal).expect("journal exists").len();
        assert!(
            steady <= after_compact,
            "idle restarts must not grow the journal"
        );
        let _ = std::fs::remove_file(&journal);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
