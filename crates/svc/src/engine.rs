//! The scheduling engine behind the HTTP surface: request admission,
//! single-flight deduplication, the bounded job queue, the
//! content-addressed response cache and the scheduler workers.
//!
//! Admission order is fixed and lock-disciplined (lock order is always
//! jobs → queue, and the cache lock is never held with either): parse →
//! resolve specs → cache lookup → join an identical in-flight job →
//! enqueue a new one → reject with backpressure. The same canonical
//! request therefore runs the scheduler **at most once** no matter how
//! many clients submit it concurrently, and every one of them receives
//! byte-identical bodies.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use serde::Deserialize;

use noc_ctg::prelude::TaskGraph;
use noc_eas::prelude::Scheduler;
use noc_platform::prelude::Platform;

use crate::api::{ScheduleRequest, ScheduleResponse, ValidateRequest, ValidateResponse};
use crate::cache::ScheduleCache;
use crate::metrics::Metrics;
use crate::queue::{JobQueue, PushError};

/// Finished jobs kept for `GET /v1/jobs/<id>` before the oldest are
/// forgotten (their responses usually survive longer in the cache).
const FINISHED_JOBS_RETAINED: usize = 1024;

/// Lifecycle of one scheduling job.
#[derive(Debug, Clone)]
pub enum JobPhase {
    /// Admitted, waiting for a worker.
    Queued,
    /// A worker is executing the scheduler.
    Running,
    /// Finished; the rendered response body.
    Done(Arc<String>),
    /// The scheduler failed; the error message.
    Failed(String),
}

/// The resolved inputs a worker needs; taken (once) by the worker that
/// executes the job.
struct JobWork {
    graph: TaskGraph,
    platform: Platform,
    scheduler: Box<dyn Scheduler + Send + Sync>,
    scheduler_name: String,
}

/// One admitted scheduling job, shared between the submitting
/// connections and the worker executing it.
pub struct Job {
    /// Content-hash id (doubles as the `GET /v1/jobs/<id>` handle).
    id: String,
    /// Canonical request string — the cache key.
    key: String,
    work: Mutex<Option<JobWork>>,
    state: Mutex<JobPhase>,
    finished: Condvar,
}

impl Job {
    /// The job's content-hash id.
    #[must_use]
    pub fn id(&self) -> &str {
        &self.id
    }

    /// Current lifecycle phase (a snapshot).
    #[must_use]
    pub fn phase(&self) -> JobPhase {
        self.state.lock().expect("job lock").clone()
    }

    /// Blocks until the job leaves the queue/running phases, returning
    /// the terminal phase.
    #[must_use]
    pub fn wait(&self) -> JobPhase {
        let mut state = self.state.lock().expect("job lock");
        loop {
            match &*state {
                JobPhase::Done(_) | JobPhase::Failed(_) => return state.clone(),
                JobPhase::Queued | JobPhase::Running => {
                    state = self.finished.wait(state).expect("job lock");
                }
            }
        }
    }

    fn set_phase(&self, phase: JobPhase) {
        *self.state.lock().expect("job lock") = phase;
        self.finished.notify_all();
    }
}

/// Outcome of admitting one `POST /v1/schedule` body.
pub enum Submission {
    /// The body was not valid JSON for a [`ScheduleRequest`] → 400.
    BadRequest(String),
    /// The specs inside the body did not resolve (unknown platform,
    /// scheduler, fault set or malformed graph) → 422.
    BadSpec(String),
    /// Served from the response cache → 200 with `X-Cache: hit`.
    Cached {
        /// Content-hash id of the request.
        id: String,
        /// The cached response body.
        body: Arc<String>,
    },
    /// Joined an identical job already queued or running →
    /// `X-Cache: join`.
    Joined {
        /// Content-hash id of the request.
        id: String,
        /// The in-flight job to wait on.
        job: Arc<Job>,
    },
    /// Admitted as a new job → `X-Cache: miss`.
    Enqueued {
        /// Content-hash id of the request.
        id: String,
        /// The newly queued job.
        job: Arc<Job>,
    },
    /// The job queue is full → 429 with `Retry-After`.
    Rejected,
    /// The engine is shutting down → 503.
    ShuttingDown,
}

struct JobTable {
    /// Live and recently finished jobs by id.
    map: HashMap<String, Arc<Job>>,
    /// Finished ids in completion order, for bounded retention.
    finished: VecDeque<String>,
}

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Bounded job-queue capacity; submissions past it get 429.
    pub queue_capacity: usize,
    /// Response-cache capacity in entries; 0 disables caching.
    pub cache_capacity: usize,
    /// Default scheduler thread count when a request does not name one
    /// (0 = all hardware threads).
    pub threads: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            queue_capacity: 64,
            cache_capacity: 1024,
            threads: 0,
        }
    }
}

/// The scheduling engine: admission, cache, queue and workers.
pub struct Engine {
    config: EngineConfig,
    queue: JobQueue<Arc<Job>>,
    cache: Mutex<ScheduleCache>,
    jobs: Mutex<JobTable>,
    /// The service-wide metrics registry.
    pub metrics: Metrics,
}

impl Engine {
    /// Creates an engine; workers are spawned by the caller with
    /// [`worker_loop`](Engine::worker_loop).
    #[must_use]
    pub fn new(config: EngineConfig) -> Arc<Self> {
        Arc::new(Engine {
            queue: JobQueue::new(config.queue_capacity),
            cache: Mutex::new(ScheduleCache::new(config.cache_capacity)),
            jobs: Mutex::new(JobTable {
                map: HashMap::new(),
                finished: VecDeque::new(),
            }),
            metrics: Metrics::new(),
            config,
        })
    }

    /// The engine's configuration.
    #[must_use]
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Admits one `POST /v1/schedule` body.
    #[must_use]
    pub fn submit(&self, body: &str) -> Submission {
        let request: ScheduleRequest = match serde_json::from_str(body) {
            Ok(r) => r,
            Err(e) => return Submission::BadRequest(format!("invalid request body: {e}")),
        };

        // Resolve every spec *before* touching cache or queue, so a
        // request that can never schedule is rejected up front and is
        // never admitted, cached or coalesced.
        let platform =
            match crate::spec::parse_platform_faulted(&request.platform, request.faults.as_deref())
            {
                Ok(p) => p,
                Err(e) => return Submission::BadSpec(e),
            };
        let graph = match TaskGraph::from_value(&request.graph) {
            Ok(g) => g,
            Err(e) => return Submission::BadSpec(format!("invalid graph: {e}")),
        };
        let threads = request.threads.unwrap_or(self.config.threads);
        let scheduler_name = request.scheduler_name().to_owned();
        let scheduler = match crate::spec::parse_scheduler(&scheduler_name, threads) {
            Ok(s) => s,
            Err(e) => return Submission::BadSpec(e),
        };

        let key = request.canonical_key();
        let id = crate::hash::content_hash(&key);

        if let Some(body) = self.cache.lock().expect("cache lock").get(&key) {
            self.metrics.cache_hits.fetch_add(1, Ordering::Relaxed);
            return Submission::Cached { id, body };
        }
        self.metrics.cache_misses.fetch_add(1, Ordering::Relaxed);

        // Single-flight: the jobs-table lock makes the check-then-insert
        // atomic, so concurrent identical submissions all land on one job.
        // It stays held across the queue push (lock order jobs → queue):
        // a job must never be visible in the table unless it is actually
        // queued, or a concurrent identical submission could join a job
        // that admission is about to discard and wait on it forever.
        let mut table = self.jobs.lock().expect("jobs lock");
        if let Some(existing) = table.map.get(&id) {
            match existing.phase() {
                JobPhase::Queued | JobPhase::Running => {
                    let job = Arc::clone(existing);
                    drop(table);
                    self.metrics.coalesced.fetch_add(1, Ordering::Relaxed);
                    return Submission::Joined { id, job };
                }
                // A finished twin's body is the canonical response for
                // this request: serve it directly. The cache lookup
                // above can legitimately miss it — the worker publishes
                // Done before the submitter's cache check lands, or the
                // entry was already evicted — and re-running instead
                // would break the at-most-once guarantee.
                JobPhase::Done(body) => {
                    drop(table);
                    self.metrics.coalesced.fetch_add(1, Ordering::Relaxed);
                    return Submission::Cached { id, body };
                }
                // A failed twin is forgotten and the request retried.
                JobPhase::Failed(_) => {
                    table.map.remove(&id);
                    table.finished.retain(|f| f != &id);
                }
            }
        }
        let job = Arc::new(Job {
            id: id.clone(),
            key,
            work: Mutex::new(Some(JobWork {
                graph,
                platform,
                scheduler,
                scheduler_name,
            })),
            state: Mutex::new(JobPhase::Queued),
            finished: Condvar::new(),
        });

        match self.queue.try_push(Arc::clone(&job)) {
            Ok(()) => {
                table.map.insert(id.clone(), Arc::clone(&job));
                drop(table);
                self.metrics
                    .queue_depth
                    .store(self.queue.depth() as u64, Ordering::Relaxed);
                Submission::Enqueued { id, job }
            }
            Err(err) => {
                drop(table);
                match err {
                    PushError::Full => {
                        self.metrics.queue_rejected.fetch_add(1, Ordering::Relaxed);
                        Submission::Rejected
                    }
                    PushError::Closed => Submission::ShuttingDown,
                }
            }
        }
    }

    /// Looks a job up by its content-hash id.
    #[must_use]
    pub fn job(&self, id: &str) -> Option<Arc<Job>> {
        self.jobs.lock().expect("jobs lock").map.get(id).cloned()
    }

    /// Handles one `POST /v1/validate` body synchronously (validation
    /// is cheap — no queueing, no caching).
    ///
    /// # Errors
    ///
    /// `Err((status, message))` with 400 for unparseable bodies and 422
    /// for unresolvable specs; structural schedule violations are a
    /// *successful* validation with `valid: false`.
    pub fn validate(&self, body: &str) -> Result<ValidateResponse, (u16, String)> {
        let request: ValidateRequest =
            serde_json::from_str(body).map_err(|e| (400, format!("invalid request body: {e}")))?;
        let platform =
            crate::spec::parse_platform_faulted(&request.platform, request.faults.as_deref())
                .map_err(|e| (422, e))?;
        let graph = TaskGraph::from_value(&request.graph)
            .map_err(|e| (422, format!("invalid graph: {e}")))?;
        let schedule = noc_schedule::Schedule::from_value(&request.schedule)
            .map_err(|e| (422, format!("invalid schedule: {e}")))?;
        Ok(match noc_schedule::validate(&schedule, &graph, &platform) {
            Ok(report) => ValidateResponse::ok(&report),
            Err(e) => ValidateResponse::invalid(e.to_string()),
        })
    }

    /// Runs jobs until the queue is closed and drained. Spawn one
    /// thread per scheduling worker on this.
    pub fn worker_loop(&self) {
        while let Some(job) = self.queue.pop_blocking() {
            self.metrics
                .queue_depth
                .store(self.queue.depth() as u64, Ordering::Relaxed);
            self.run_job(&job);
        }
    }

    fn run_job(&self, job: &Job) {
        let Some(work) = job.work.lock().expect("job lock").take() else {
            return; // already executed (double enqueue cannot happen, but stay safe)
        };
        job.set_phase(JobPhase::Running);
        let started = Instant::now();
        let outcome = work.scheduler.schedule(&work.graph, &work.platform);
        let elapsed = started.elapsed().as_secs_f64();
        match outcome {
            Ok(outcome) => {
                let response = ScheduleResponse::from_outcome(&work.scheduler_name, &outcome);
                let body = Arc::new(response.to_json());
                self.metrics
                    .schedules_executed
                    .fetch_add(1, Ordering::Relaxed);
                self.metrics.observe_latency(elapsed);
                self.cache
                    .lock()
                    .expect("cache lock")
                    .insert(job.key.clone(), Arc::clone(&body));
                job.set_phase(JobPhase::Done(body));
            }
            Err(e) => {
                self.metrics.schedule_errors.fetch_add(1, Ordering::Relaxed);
                job.set_phase(JobPhase::Failed(e.to_string()));
            }
        }
        self.retire(&job.id);
    }

    /// Records `id` as finished and prunes the oldest finished jobs
    /// past the retention bound.
    fn retire(&self, id: &str) {
        let mut table = self.jobs.lock().expect("jobs lock");
        table.finished.push_back(id.to_owned());
        while table.finished.len() > FINISHED_JOBS_RETAINED {
            if let Some(old) = table.finished.pop_front() {
                table.map.remove(&old);
            }
        }
    }

    /// Closes the queue: pending submissions fail with
    /// [`Submission::ShuttingDown`], workers drain the backlog and exit.
    pub fn shutdown(&self) {
        self.queue.close();
    }

    /// Jobs currently waiting in the queue.
    #[must_use]
    pub fn queue_depth(&self) -> usize {
        self.queue.depth()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph_json() -> String {
        let platform = crate::spec::parse_platform("mesh:2x2").expect("platform");
        let cfg = noc_ctg::prelude::TgffConfig::category_i(7);
        let mut cfg = cfg;
        cfg.task_count = 8;
        let graph = noc_ctg::prelude::TgffGenerator::new(cfg)
            .generate(&platform)
            .expect("generates");
        serde_json::to_string(&graph).expect("serializes")
    }

    fn request_body(graph: &str) -> String {
        format!(r#"{{"graph":{graph},"platform":"mesh:2x2","scheduler":"edf"}}"#)
    }

    #[test]
    fn submit_run_cache_round_trip() {
        let engine = Engine::new(EngineConfig::default());
        let body = request_body(&graph_json());

        let Submission::Enqueued { id, job } = engine.submit(&body) else {
            panic!("first submission must enqueue");
        };
        // No worker threads in this test: run the backlog inline.
        let worker = Arc::clone(&engine);
        let handle = std::thread::spawn(move || {
            worker.shutdown();
            worker.worker_loop();
        });
        let JobPhase::Done(first) = job.wait() else {
            panic!("job must finish");
        };
        handle.join().expect("worker exits");

        // Second submission: byte-identical body straight from cache.
        let Submission::Cached {
            id: id2,
            body: cached,
        } = engine.submit(&body)
        else {
            panic!("second submission must hit the cache");
        };
        assert_eq!(id, id2);
        assert_eq!(*first, *cached, "cache hit must be byte-identical");
        assert_eq!(engine.metrics.cache_hits.load(Ordering::Relaxed), 1);
        assert_eq!(engine.metrics.schedules_executed.load(Ordering::Relaxed), 1);
        assert!(engine.job(&id).is_some(), "finished job stays pollable");
    }

    #[test]
    fn identical_concurrent_submissions_coalesce() {
        let engine = Engine::new(EngineConfig::default());
        let body = request_body(&graph_json());
        let Submission::Enqueued { job, .. } = engine.submit(&body) else {
            panic!("first submission must enqueue");
        };
        let Submission::Joined { job: joined, .. } = engine.submit(&body) else {
            panic!("identical submission must join, not re-enqueue");
        };
        assert!(Arc::ptr_eq(&job, &joined));
        assert_eq!(engine.metrics.coalesced.load(Ordering::Relaxed), 1);
        assert_eq!(engine.queue_depth(), 1, "one job queued, not two");
    }

    #[test]
    fn full_queue_rejects() {
        let engine = Engine::new(EngineConfig {
            queue_capacity: 1,
            ..EngineConfig::default()
        });
        let graph = graph_json();
        let a = format!(r#"{{"graph":{graph},"platform":"mesh:2x2","scheduler":"edf"}}"#);
        let b = format!(r#"{{"graph":{graph},"platform":"mesh:2x2","scheduler":"dls"}}"#);
        assert!(matches!(engine.submit(&a), Submission::Enqueued { .. }));
        assert!(matches!(engine.submit(&b), Submission::Rejected));
        assert_eq!(engine.metrics.queue_rejected.load(Ordering::Relaxed), 1);
        // A rejected job must never have been visible in the table: an
        // identical resubmission is rejected again (never joined to a
        // ghost that no worker will ever run), and after drain it would
        // re-enqueue.
        assert!(matches!(engine.submit(&b), Submission::Rejected));
        assert_eq!(engine.jobs.lock().expect("jobs lock").map.len(), 1);
    }

    #[test]
    fn bad_bodies_and_specs_classify() {
        let engine = Engine::new(EngineConfig::default());
        assert!(matches!(
            engine.submit("not json"),
            Submission::BadRequest(_)
        ));
        assert!(matches!(
            engine.submit(r#"{"graph":{},"platform":"ring:9x9"}"#),
            Submission::BadSpec(_)
        ));
        let graph = graph_json();
        assert!(matches!(
            engine.submit(&format!(
                r#"{{"graph":{graph},"platform":"mesh:2x2","scheduler":"magic"}}"#
            )),
            Submission::BadSpec(_)
        ));
        assert_eq!(
            engine.metrics.cache_misses.load(Ordering::Relaxed),
            0,
            "rejected submissions never touch the cache"
        );
    }

    #[test]
    fn shutdown_refuses_new_work() {
        let engine = Engine::new(EngineConfig::default());
        engine.shutdown();
        let body = request_body(&graph_json());
        assert!(matches!(engine.submit(&body), Submission::ShuttingDown));
    }

    #[test]
    fn validate_endpoint_classifies() {
        let engine = Engine::new(EngineConfig::default());
        assert_eq!(engine.validate("nope").unwrap_err().0, 400);
        let graph = graph_json();
        let err = engine
            .validate(&format!(
                r#"{{"graph":{graph},"platform":"mesh:2x2","schedule":{{}}}}"#
            ))
            .unwrap_err();
        assert_eq!(err.0, 422);
    }
}
