//! A minimal HTTP/1.1 layer over `std::net` — just enough protocol for
//! a loopback JSON service: request parsing with a bounded header/body
//! size, `Content-Length` bodies, keep-alive, and response writing.
//! No TLS, no chunked encoding, no multipart — requests that need them
//! are rejected rather than misparsed.

use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;

/// Largest accepted header block, bytes.
const MAX_HEADER_BYTES: usize = 64 * 1024;

/// One parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// `GET`, `POST`, ...
    pub method: String,
    /// Request target, e.g. `/v1/schedule` (query strings are kept
    /// verbatim; the service does not use them).
    pub path: String,
    /// Headers in arrival order, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// The request body (empty without `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of `name` (lower-case), if present.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// `true` unless the client asked to close the connection.
    #[must_use]
    pub fn keep_alive(&self) -> bool {
        !self
            .header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// One response to write.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// `Content-Type` value.
    pub content_type: &'static str,
    /// Extra headers (name, value), e.g. `X-Cache` / `Retry-After`.
    pub extra_headers: Vec<(String, String)>,
    /// The body.
    pub body: String,
}

impl Response {
    /// A JSON response.
    #[must_use]
    pub fn json(status: u16, body: String) -> Self {
        Response {
            status,
            content_type: "application/json",
            extra_headers: Vec::new(),
            body,
        }
    }

    /// A plain-text response.
    #[must_use]
    pub fn text(status: u16, body: String) -> Self {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            extra_headers: Vec::new(),
            body,
        }
    }

    /// Adds an extra header.
    #[must_use]
    pub fn with_header(mut self, name: &str, value: &str) -> Self {
        self.extra_headers.push((name.to_owned(), value.to_owned()));
        self
    }
}

/// Why reading a request failed.
#[derive(Debug)]
pub enum ReadError {
    /// The peer closed the connection before sending a full request
    /// (includes a clean close between keep-alive requests) or stalled
    /// mid-request past the socket timeout.
    Disconnected,
    /// The socket read timed out with no bytes received — the
    /// connection is idle. The caller may poll again (e.g. after
    /// checking a shutdown flag) or close it.
    TimedOut,
    /// The bytes were not a parseable HTTP/1.1 request.
    Malformed(String),
    /// The declared body exceeds the server's limit.
    BodyTooLarge(usize),
}

/// Reads one request from `stream`. `max_body` bounds the accepted
/// `Content-Length`. `carry` holds bytes received past the previous
/// request's body (an HTTP/1.1 client may legally pipeline); they are
/// consumed first, and any bytes past *this* request's body are left in
/// `carry` for the next call — keep one buffer per connection.
///
/// # Errors
///
/// [`ReadError::Disconnected`] on EOF/timeout, [`ReadError::Malformed`]
/// on protocol violations, [`ReadError::BodyTooLarge`] past `max_body`.
pub fn read_request(
    stream: &mut TcpStream,
    max_body: usize,
    carry: &mut Vec<u8>,
) -> Result<Request, ReadError> {
    let mut buf: Vec<u8> = std::mem::take(carry);
    let mut chunk = [0u8; 4096];
    loop {
        if let Some((request, consumed)) = parse_request(&buf, max_body)? {
            // Bytes past the declared body are the start of a pipelined
            // next request — keep them for the next read, never drop them.
            carry.extend_from_slice(&buf[consumed..]);
            return Ok(request);
        }
        match stream.read(&mut chunk) {
            Ok(0) => return Err(ReadError::Disconnected),
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                // Idle (nothing received) is pollable; a stall in the
                // middle of a request is a dead peer.
                return Err(if buf.is_empty() {
                    ReadError::TimedOut
                } else {
                    ReadError::Disconnected
                });
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return Err(ReadError::Disconnected),
        }
    }
}

/// Attempts to parse one complete request from the front of `buf`
/// without consuming it. Returns `Ok(None)` when more bytes are
/// needed, or `Ok(Some((request, consumed)))` where `consumed` is how
/// many leading bytes of `buf` the request (head + body) occupied —
/// the incremental core shared by the blocking [`read_request`] path
/// and the nonblocking reactor, so both parse the wire identically.
///
/// # Errors
///
/// [`ReadError::Malformed`] on protocol violations,
/// [`ReadError::BodyTooLarge`] when the declared body exceeds
/// `max_body` (checked as soon as the header block is complete, before
/// any body bytes arrive).
pub fn parse_request(buf: &[u8], max_body: usize) -> Result<Option<(Request, usize)>, ReadError> {
    let Some(header_end) = find_header_end(buf) else {
        if buf.len() > MAX_HEADER_BYTES {
            return Err(ReadError::Malformed("header block too large".into()));
        }
        return Ok(None);
    };

    let head = std::str::from_utf8(&buf[..header_end])
        .map_err(|_| ReadError::Malformed("header block is not UTF-8".into()))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let method = parts
        .next()
        .filter(|m| !m.is_empty())
        .ok_or_else(|| ReadError::Malformed("empty request line".into()))?
        .to_owned();
    let path = parts
        .next()
        .ok_or_else(|| ReadError::Malformed("request line has no target".into()))?
        .to_owned();
    let version = parts
        .next()
        .ok_or_else(|| ReadError::Malformed("request line has no version".into()))?;
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(ReadError::Malformed(format!(
            "unsupported version `{version}`"
        )));
    }

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| ReadError::Malformed(format!("malformed header `{line}`")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_owned()));
    }
    let mut request = Request {
        method,
        path,
        headers,
        body: Vec::new(),
    };

    if request.header("transfer-encoding").is_some() {
        return Err(ReadError::Malformed(
            "chunked transfer encoding is not supported".into(),
        ));
    }
    let content_length = match request.header("content-length") {
        None => 0usize,
        Some(v) => v
            .parse()
            .map_err(|_| ReadError::Malformed(format!("bad content-length `{v}`")))?,
    };
    if content_length > max_body {
        return Err(ReadError::BodyTooLarge(content_length));
    }

    let body_start = header_end + 4;
    let consumed = body_start + content_length;
    if buf.len() < consumed {
        return Ok(None);
    }
    request.body = buf[body_start..consumed].to_vec();
    Ok(Some((request, consumed)))
}

fn find_header_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Writes `response` to `stream` with an exact `Content-Length`.
///
/// # Errors
///
/// Propagates socket write failures.
pub fn write_response(
    stream: &mut TcpStream,
    response: &Response,
    keep_alive: bool,
) -> std::io::Result<()> {
    stream.write_all(&render_response(response, keep_alive))?;
    stream.flush()
}

/// Serializes `response` to the exact bytes [`write_response`] puts on
/// the wire — shared with the reactor so both entry paths emit
/// byte-identical responses.
#[must_use]
pub fn render_response(response: &Response, keep_alive: bool) -> Vec<u8> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
        response.status,
        reason(response.status),
        response.content_type,
        response.body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    for (name, value) in &response.extra_headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str("\r\n");
    let mut bytes = head.into_bytes();
    bytes.extend_from_slice(response.body.as_bytes());
    bytes
}

/// Canonical reason phrase for the status codes this service emits.
#[must_use]
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    /// Round-trips raw bytes through a real socket pair so the reader is
    /// tested against the same transport the server uses.
    fn feed(raw: &[u8]) -> Result<Request, ReadError> {
        let listener = TcpListener::bind("127.0.0.1:0").expect("binds");
        let addr = listener.local_addr().expect("addr");
        let raw = raw.to_vec();
        let writer = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).expect("connects");
            s.write_all(&raw).expect("writes");
            s
        });
        let (mut conn, _) = listener.accept().expect("accepts");
        conn.set_read_timeout(Some(std::time::Duration::from_millis(500)))
            .expect("timeout");
        let result = read_request(&mut conn, 1024 * 1024, &mut Vec::new());
        drop(writer.join().expect("writer thread"));
        result
    }

    #[test]
    fn parses_post_with_body() {
        let req = feed(b"POST /v1/schedule HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nbody")
            .expect("parses");
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/schedule");
        assert_eq!(req.body, b"body");
        assert!(req.keep_alive());
    }

    #[test]
    fn parses_get_without_body_and_connection_close() {
        let req = feed(b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n").expect("parses");
        assert_eq!(req.method, "GET");
        assert!(req.body.is_empty());
        assert!(!req.keep_alive());
    }

    #[test]
    fn rejects_garbage_and_bad_lengths() {
        assert!(matches!(
            feed(b"NONSENSE\r\n\r\n"),
            Err(ReadError::Malformed(_))
        ));
        assert!(matches!(
            feed(b"GET / HTTP/9.9\r\n\r\n"),
            Err(ReadError::Malformed(_))
        ));
        assert!(matches!(
            feed(b"POST / HTTP/1.1\r\nContent-Length: banana\r\n\r\n"),
            Err(ReadError::Malformed(_))
        ));
    }

    #[test]
    fn pipelined_requests_are_not_dropped() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("binds");
        let addr = listener.local_addr().expect("addr");
        // Two requests in one segment: the bytes past the first body
        // must be carried over, not truncated away.
        let writer = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).expect("connects");
            s.write_all(
                b"POST /v1/schedule HTTP/1.1\r\nContent-Length: 5\r\n\r\nfirst\
                  GET /healthz HTTP/1.1\r\n\r\n"
                    .as_slice(),
            )
            .expect("writes");
            s
        });
        let (mut conn, _) = listener.accept().expect("accepts");
        conn.set_read_timeout(Some(std::time::Duration::from_millis(500)))
            .expect("timeout");
        let mut carry = Vec::new();
        let first = read_request(&mut conn, 1024, &mut carry).expect("first parses");
        assert_eq!(first.body, b"first");
        assert!(!carry.is_empty(), "pipelined bytes must be carried");
        let second = read_request(&mut conn, 1024, &mut carry).expect("second parses");
        assert_eq!(second.method, "GET");
        assert_eq!(second.path, "/healthz");
        assert!(carry.is_empty());
        drop(writer.join().expect("writer thread"));
    }

    #[test]
    fn incremental_parse_needs_bytes_then_completes() {
        let wire =
            b"POST /v1/schedule HTTP/1.1\r\nContent-Length: 5\r\n\r\nfirstGET /x HTTP/1.1\r\n\r\n";
        // Every strict prefix that ends before the body completes must
        // ask for more bytes, never error.
        let full = "POST /v1/schedule HTTP/1.1\r\nContent-Length: 5\r\n\r\nfirst".len();
        for cut in 0..full {
            assert!(
                matches!(parse_request(&wire[..cut], 1024), Ok(None)),
                "prefix of {cut} bytes must be incomplete"
            );
        }
        let (req, consumed) = parse_request(wire, 1024)
            .expect("parses")
            .expect("complete");
        assert_eq!(req.body, b"first");
        assert_eq!(consumed, full);
        // The pipelined remainder parses as its own request.
        let (second, rest) = parse_request(&wire[consumed..], 1024)
            .expect("parses")
            .expect("complete");
        assert_eq!(second.method, "GET");
        assert_eq!(consumed + rest, wire.len());
    }

    #[test]
    fn incremental_parse_rejects_oversized_body_before_it_arrives() {
        let head = b"POST / HTTP/1.1\r\nContent-Length: 99\r\n\r\n";
        assert!(matches!(
            parse_request(head, 10),
            Err(ReadError::BodyTooLarge(99))
        ));
    }

    #[test]
    fn rejects_oversized_bodies() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("binds");
        let addr = listener.local_addr().expect("addr");
        let writer = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).expect("connects");
            s.write_all(b"POST / HTTP/1.1\r\nContent-Length: 99\r\n\r\n")
                .expect("writes");
            s
        });
        let (mut conn, _) = listener.accept().expect("accepts");
        let result = read_request(&mut conn, 10, &mut Vec::new());
        assert!(matches!(result, Err(ReadError::BodyTooLarge(99))));
        drop(writer.join().expect("writer thread"));
    }

    #[test]
    fn response_writes_exact_content_length() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("binds");
        let addr = listener.local_addr().expect("addr");
        let reader = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).expect("connects");
            let mut text = String::new();
            s.read_to_string(&mut text).expect("reads");
            text
        });
        let (mut conn, _) = listener.accept().expect("accepts");
        let resp =
            Response::json(429, "{\"error\":\"busy\"}".to_owned()).with_header("Retry-After", "1");
        write_response(&mut conn, &resp, false).expect("writes");
        drop(conn);
        let text = reader.join().expect("reader thread");
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("Content-Length: 16\r\n"));
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("{\"error\":\"busy\"}"));
    }
}
