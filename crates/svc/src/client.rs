//! A minimal blocking HTTP/1.1 client for the loopback service — used
//! by the integration tests and the `svc_load` load generator, so the
//! workspace exercises its own wire format end to end without external
//! tooling.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// Cap on a fresh TCP connect, so an unresponsive address fails in
/// bounded time instead of the platform's (minutes-long) default.
const CONNECT_TIMEOUT: Duration = Duration::from_secs(5);

/// One client response.
#[derive(Debug, Clone)]
pub struct ClientResponse {
    /// Status code.
    pub status: u16,
    /// Headers in arrival order, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// The body.
    pub body: String,
}

impl ClientResponse {
    /// First value of `name` (lower-case), if present.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// A keep-alive connection to the service.
pub struct Client {
    addr: SocketAddr,
    conn: Option<TcpStream>,
    timeout: Duration,
    sockets_opened: u64,
}

impl Client {
    /// Creates a client for `addr` (connects lazily) with the default
    /// 60 s read/write timeout.
    #[must_use]
    pub fn new(addr: SocketAddr) -> Self {
        Client::with_timeout(addr, Duration::from_secs(60))
    }

    /// Creates a client with an explicit per-operation read/write
    /// timeout, so a hung or killed server surfaces as a timely I/O
    /// error instead of a stuck client.
    #[must_use]
    pub fn with_timeout(addr: SocketAddr, timeout: Duration) -> Self {
        Client {
            addr,
            conn: None,
            timeout,
            sockets_opened: 0,
        }
    }

    /// TCP connections this client has opened over its lifetime. A
    /// well-behaved keep-alive workload stays at 1; load drivers use
    /// this to prove retries (e.g. after 429) reuse the socket
    /// instead of stampeding the server with fresh connects.
    #[must_use]
    pub fn sockets_opened(&self) -> u64 {
        self.sockets_opened
    }

    /// Changes the read/write timeout; applies to the current
    /// connection (if any) and every future one.
    ///
    /// # Errors
    ///
    /// Propagates `set_read_timeout`/`set_write_timeout` failures.
    pub fn set_timeout(&mut self, timeout: Duration) -> std::io::Result<()> {
        self.timeout = timeout;
        if let Some(conn) = &self.conn {
            conn.set_read_timeout(Some(timeout))?;
            conn.set_write_timeout(Some(timeout))?;
        }
        Ok(())
    }

    /// Creates a client, retrying the first connection for up to
    /// `patience` — for racing a just-spawned server.
    ///
    /// # Errors
    ///
    /// The last connection error once `patience` is exhausted.
    pub fn connect_retry(addr: SocketAddr, patience: Duration) -> std::io::Result<Self> {
        let deadline = Instant::now() + patience;
        loop {
            // Each attempt is capped at the time left (and the global
            // connect cap): a black-holed address — SYN never answered
            // — must exhaust `patience`, not hang in the platform's
            // minutes-long default the way a plain `connect` would.
            let budget = attempt_budget(deadline, Instant::now());
            match TcpStream::connect_timeout(&addr, budget) {
                Ok(conn) => {
                    let mut client = Client::new(addr);
                    client.install(conn)?;
                    return Ok(client);
                }
                Err(e) if Instant::now() < deadline => {
                    let _ = e;
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(e) => return Err(e),
            }
        }
    }

    fn install(&mut self, conn: TcpStream) -> std::io::Result<()> {
        conn.set_read_timeout(Some(self.timeout))?;
        conn.set_write_timeout(Some(self.timeout))?;
        conn.set_nodelay(true)?;
        self.conn = Some(conn);
        self.sockets_opened += 1;
        Ok(())
    }

    fn stream(&mut self) -> std::io::Result<&mut TcpStream> {
        if self.conn.is_none() {
            let conn = TcpStream::connect_timeout(&self.addr, CONNECT_TIMEOUT.min(self.timeout))?;
            self.install(conn)?;
        }
        Ok(self.conn.as_mut().expect("connection installed"))
    }

    /// Sends a `GET`.
    ///
    /// # Errors
    ///
    /// Propagates socket failures.
    pub fn get(&mut self, path: &str) -> std::io::Result<ClientResponse> {
        self.request("GET", path, None, &[])
    }

    /// Sends a `GET` carrying extra headers (trace propagation).
    ///
    /// # Errors
    ///
    /// Propagates socket failures.
    pub fn get_with_headers(
        &mut self,
        path: &str,
        headers: &[(&str, &str)],
    ) -> std::io::Result<ClientResponse> {
        self.request("GET", path, None, headers)
    }

    /// Sends a `POST` with a JSON body.
    ///
    /// # Errors
    ///
    /// Propagates socket failures.
    pub fn post(&mut self, path: &str, body: &str) -> std::io::Result<ClientResponse> {
        self.request("POST", path, Some(body), &[])
    }

    /// Sends a `POST` with a JSON body and extra headers (trace
    /// propagation).
    ///
    /// # Errors
    ///
    /// Propagates socket failures.
    pub fn post_with_headers(
        &mut self,
        path: &str,
        body: &str,
        headers: &[(&str, &str)],
    ) -> std::io::Result<ClientResponse> {
        self.request("POST", path, Some(body), headers)
    }

    fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
        headers: &[(&str, &str)],
    ) -> std::io::Result<ClientResponse> {
        // Only a *reused* keep-alive connection earns a reconnect
        // retry: the server may have dropped it while idle, which is
        // not an error worth surfacing. A failure on a connection we
        // just opened is real — retrying it with yet another socket
        // turns one overloaded server into a connect stampede (each
        // 429/timeout burst doubling the socket count).
        let reused = self.conn.is_some();
        let result = self.request_once(method, path, body, headers);
        if result.is_ok() || !reused {
            return result;
        }
        self.conn = None;
        self.request_once(method, path, body, headers)
    }

    fn request_once(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
        headers: &[(&str, &str)],
    ) -> std::io::Result<ClientResponse> {
        let body = body.unwrap_or("");
        let mut head = format!(
            "{method} {path} HTTP/1.1\r\nHost: noc-svc\r\nContent-Type: application/json\r\n\
             Content-Length: {}\r\n",
            body.len()
        );
        for (name, value) in headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        let stream = self.stream()?;
        stream.write_all(head.as_bytes())?;
        stream.write_all(body.as_bytes())?;
        stream.flush()?;
        match read_response(stream) {
            Ok(r) => Ok(r),
            Err(e) => {
                self.conn = None;
                Err(e)
            }
        }
    }
}

/// How long one connect attempt may block: the time left until
/// `deadline`, clamped by the global connect cap, floored at 1 ms so
/// `connect_timeout` never sees a zero duration (which it rejects).
fn attempt_budget(deadline: Instant, now: Instant) -> Duration {
    deadline
        .saturating_duration_since(now)
        .min(CONNECT_TIMEOUT)
        .max(Duration::from_millis(1))
}

fn read_response(stream: &mut TcpStream) -> std::io::Result<ClientResponse> {
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    let header_end = loop {
        if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos;
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection mid-response",
            ));
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8_lossy(&buf[..header_end]).into_owned();
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap_or("");
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("bad status line `{status_line}`"),
            )
        })?;
    let mut headers = Vec::new();
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_owned()));
        }
    }
    let content_length: usize = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .and_then(|(_, v)| v.parse().ok())
        .unwrap_or(0);
    let mut body = buf[header_end + 4..].to_vec();
    while body.len() < content_length {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection mid-body",
            ));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);
    Ok(ClientResponse {
        status,
        headers,
        body: String::from_utf8_lossy(&body).into_owned(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn read_timeout_fails_fast_against_a_mute_server() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("binds");
        let addr = listener.local_addr().expect("addr");
        // Accept connections but never answer them.
        let mute = std::thread::spawn(move || {
            let mut held = Vec::new();
            for conn in listener.incoming().take(1) {
                held.push(conn);
            }
            held
        });
        let mut client = Client::with_timeout(addr, Duration::from_millis(50));
        let started = Instant::now();
        let err = client
            .get("/healthz")
            .expect_err("mute server must time out");
        assert!(
            matches!(
                err.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            ),
            "got {err:?}"
        );
        // A fresh connection gets no reconnect retry: one attempt,
        // bounded by the 50 ms timeout, plus slack for a loaded CI
        // machine.
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "timeout must bound the wait"
        );
        assert_eq!(
            client.sockets_opened(),
            1,
            "a failed fresh connection must not trigger another connect"
        );
        drop(client);
        let _ = mute.join();
    }

    #[test]
    fn connect_attempt_budget_is_bounded_by_patience_and_the_global_cap() {
        let now = Instant::now();
        // Plenty of patience left: the attempt still may not exceed
        // the global connect cap, so a black-holed address — SYN
        // never answered — fails per-attempt instead of sitting in
        // the platform's minutes-long default.
        let far = now + Duration::from_secs(600);
        assert_eq!(attempt_budget(far, now), CONNECT_TIMEOUT);
        // Less patience than the cap: the remaining patience wins, so
        // the loop returns by `deadline` even when every SYN hangs.
        let near = now + Duration::from_millis(120);
        assert_eq!(attempt_budget(near, now), Duration::from_millis(120));
        // Deadline already passed: still a nonzero budget, because
        // `connect_timeout` rejects zero durations outright.
        assert_eq!(
            attempt_budget(now, now + Duration::from_secs(1)),
            Duration::from_millis(1)
        );
    }

    #[test]
    fn reused_connection_failure_retries_on_a_fresh_socket_once() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("binds");
        let addr = listener.local_addr().expect("addr");
        // Answer one request, close the connection while it idles,
        // then answer one more request on a new connection — the
        // classic dropped-keep-alive shape.
        let server = std::thread::spawn(move || {
            for _ in 0..2 {
                let (mut conn, _) = listener.accept().expect("accepts");
                let mut buf = [0u8; 4096];
                let _ = conn.read(&mut buf).expect("reads request");
                conn.write_all(b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nok")
                    .expect("writes");
                // Dropping `conn` closes the keep-alive connection.
            }
        });
        let mut client = Client::with_timeout(addr, Duration::from_secs(5));
        let first = client.get("/healthz").expect("first request");
        assert_eq!(first.status, 200);
        // The server closed our socket; the retry must transparently
        // reconnect exactly once.
        let second = client.get("/healthz").expect("second request");
        assert_eq!(second.status, 200);
        assert_eq!(client.sockets_opened(), 2, "one reconnect, no stampede");
        let _ = server.join();
    }
}
