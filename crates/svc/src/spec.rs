//! Textual platform and scheduler specifications shared by the CLI and
//! the HTTP service, e.g. `mesh:4x4`, `torus:3x3:yx`, `honeycomb:4x4`,
//! `eas`, `eas-base`, `edf`, `dls`, and fault sets like
//! `tile:4,link:1-2`. Keeping one parser here guarantees a request body
//! and a command line describing the same problem resolve to the same
//! platform and scheduler.

use noc_eas::prelude::*;
use noc_platform::prelude::*;

/// Parses a platform spec of the form
/// `<topology>:<cols>x<rows>[:<routing>]` with topology one of `mesh`,
/// `torus`, `honeycomb` and routing one of `xy`, `yx`, `bfs`
/// (shortest-path). Routing defaults to `xy` for grids and `bfs` for
/// honeycombs.
///
/// # Errors
///
/// Returns a human-readable message on malformed specs or invalid
/// combinations.
pub fn parse_platform(spec: &str) -> Result<Platform, String> {
    parse_platform_faulted(spec, None)
}

/// Parses a fault-set spec: comma-separated `tile:<id>`,
/// `link:<a>-<b>` (both directions) and `link:<a>><b>` (one direction)
/// entries, e.g. `tile:4,link:1-2` (see
/// [`noc_platform::fault::FaultSet::parse`]).
///
/// # Errors
///
/// Returns a human-readable message on malformed entries.
pub fn parse_faults(spec: &str) -> Result<FaultSet, String> {
    FaultSet::parse(spec).map_err(|e| e.to_string())
}

/// [`parse_platform`] with an optional fault-set spec masked into the
/// platform: dead PEs leave every candidate list and routes detour
/// around dead links.
///
/// # Errors
///
/// As [`parse_platform`] and [`parse_faults`]; additionally rejects
/// fault sets that reference missing resources or disconnect the
/// surviving tiles.
pub fn parse_platform_faulted(spec: &str, faults: Option<&str>) -> Result<Platform, String> {
    let parts: Vec<&str> = spec.split(':').collect();
    if parts.len() < 2 || parts.len() > 3 {
        return Err(format!(
            "platform spec `{spec}` must look like mesh:4x4 or torus:3x3:yx"
        ));
    }
    let dims: Vec<&str> = parts[1].split('x').collect();
    if dims.len() != 2 {
        return Err(format!("dimensions `{}` must look like 4x4", parts[1]));
    }
    let cols: u16 = dims[0]
        .parse()
        .map_err(|_| format!("bad column count `{}`", dims[0]))?;
    let rows: u16 = dims[1]
        .parse()
        .map_err(|_| format!("bad row count `{}`", dims[1]))?;
    let topology = match parts[0] {
        "mesh" => TopologySpec::mesh(cols, rows),
        "torus" => TopologySpec::torus(cols, rows),
        "honeycomb" => TopologySpec::honeycomb(cols, rows),
        other => return Err(format!("unknown topology `{other}`")),
    };
    let default_routing = if parts[0] == "honeycomb" {
        RoutingSpec::ShortestPath
    } else {
        RoutingSpec::Xy
    };
    let routing = match parts.get(2) {
        None => default_routing,
        Some(&"xy") => RoutingSpec::Xy,
        Some(&"yx") => RoutingSpec::Yx,
        Some(&"bfs") => RoutingSpec::ShortestPath,
        Some(other) => return Err(format!("unknown routing `{other}` (use xy, yx or bfs)")),
    };
    let mut builder = Platform::builder()
        .topology(topology)
        .routing(routing)
        .pe_mix(PeCatalog::date04().cycle_mix());
    if let Some(f) = faults {
        builder = builder.faults(parse_faults(f)?);
    }
    builder.build().map_err(|e| e.to_string())
}

/// A chaos-testing scheduler that always panics mid-schedule. It exists
/// to drive the service's panic isolation end to end: a request naming
/// it must fail with a typed 500 while the scheduler worker — and every
/// other request — carries on. Deliberately absent from the
/// unknown-scheduler error message; it is a test hook, not a scheduler.
struct ChaosPanicScheduler;

impl Scheduler for ChaosPanicScheduler {
    fn name(&self) -> &str {
        "chaos-panic"
    }

    fn schedule(
        &self,
        _graph: &noc_ctg::prelude::TaskGraph,
        _platform: &Platform,
    ) -> Result<ScheduleOutcome, SchedulerError> {
        panic!("chaos-panic scheduler always panics");
    }
}

/// Parses a scheduler name into a boxed [`Scheduler`]. `threads` sets
/// the worker count for the schedulers that parallelize (`eas`,
/// `eas-base`, `anneal`); `0` means all hardware threads. Results are
/// identical for every thread count.
///
/// The special name `chaos-panic` resolves to a scheduler that panics
/// on execution — a fault-injection hook for exercising the service's
/// panic isolation (`svc_load --chaos` uses it).
///
/// # Errors
///
/// Returns a message listing the valid names on unknown input.
pub fn parse_scheduler(
    name: &str,
    threads: usize,
) -> Result<Box<dyn Scheduler + Send + Sync>, String> {
    match name {
        "chaos-panic" => Ok(Box::new(ChaosPanicScheduler)),
        "eas" => Ok(Box::new(EasScheduler::new(
            EasConfig::default().with_threads(threads),
        ))),
        "eas-base" => Ok(Box::new(EasScheduler::new(
            EasConfig::base().with_threads(threads),
        ))),
        "edf" => Ok(Box::new(EdfScheduler::new())),
        "dls" => Ok(Box::new(DlsScheduler::new())),
        "anneal" => Ok(Box::new(AnnealScheduler::new(AnnealConfig {
            threads,
            ..AnnealConfig::default()
        }))),
        "map-then-schedule" => Ok(Box::new(MapThenScheduleScheduler::new())),
        other => Err(format!(
            "unknown scheduler `{other}` (use eas, eas-base, edf, dls, anneal or map-then-schedule)"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_mesh_default_xy() {
        let p = parse_platform("mesh:4x4").expect("parses");
        assert_eq!(p.tile_count(), 16);
        assert_eq!(p.routing_name(), "xy");
    }

    #[test]
    fn parses_torus_with_routing() {
        let p = parse_platform("torus:3x3:yx").expect("parses");
        assert_eq!(p.tile_count(), 9);
        assert_eq!(p.routing_name(), "yx");
    }

    #[test]
    fn honeycomb_defaults_to_bfs() {
        let p = parse_platform("honeycomb:4x4").expect("parses");
        assert_eq!(p.routing_name(), "shortest-path");
    }

    #[test]
    fn rejects_bad_specs() {
        assert!(parse_platform("mesh").is_err());
        assert!(parse_platform("mesh:4").is_err());
        assert!(parse_platform("mesh:ax4").is_err());
        assert!(parse_platform("ring:4x4").is_err());
        assert!(parse_platform("mesh:4x4:zigzag").is_err());
        assert!(
            parse_platform("honeycomb:4x4:xy").is_err(),
            "xy cannot route honeycombs"
        );
    }

    #[test]
    fn parses_faulted_platforms() {
        let p = parse_platform_faulted("mesh:3x3", Some("tile:4,link:0-1")).expect("parses");
        assert!(!p.tile_alive(TileId::new(4)));
        assert!(p.tile_alive(TileId::new(0)));
        assert_eq!(p.faults().failed_links().len(), 2);
        // No fault spec: identical to the plain parse.
        let plain = parse_platform_faulted("mesh:2x2", None).expect("parses");
        assert!(plain.faults().is_empty());
    }

    #[test]
    fn rejects_bad_fault_specs() {
        assert!(parse_platform_faulted("mesh:2x2", Some("tile:nine")).is_err());
        assert!(parse_platform_faulted("mesh:2x2", Some("tile:9")).is_err());
        assert!(
            parse_platform_faulted("mesh:3x1", Some("tile:1")).is_err(),
            "disconnecting faults are rejected"
        );
        assert!(parse_faults("gibberish").is_err());
        assert_eq!(parse_faults("link:0-1").unwrap().len(), 2);
    }

    #[test]
    fn parses_all_schedulers() {
        for name in [
            "eas",
            "eas-base",
            "edf",
            "dls",
            "anneal",
            "map-then-schedule",
        ] {
            for threads in [1usize, 4] {
                assert_eq!(parse_scheduler(name, threads).expect("parses").name(), name);
            }
        }
        assert!(parse_scheduler("magic", 1).is_err());
        assert_eq!(
            parse_scheduler("chaos-panic", 1).expect("parses").name(),
            "chaos-panic",
            "the chaos hook resolves"
        );
        let Err(msg) = parse_scheduler("magic", 1) else {
            panic!("unknown scheduler must not parse");
        };
        assert!(
            !msg.contains("chaos"),
            "the chaos hook stays out of the advertised names"
        );
    }
}
