//! Property-based tests of platform routing: every supported
//! (topology, routing) combination yields complete, link-consistent,
//! loop-free routes.

use proptest::prelude::*;

use noc_platform::prelude::*;

fn build(topology: TopologySpec, routing: RoutingSpec) -> Platform {
    Platform::builder()
        .topology(topology)
        .routing(routing)
        .build()
        .expect("supported combination builds")
}

fn assert_routes_consistent(p: &Platform) {
    for s in p.tiles() {
        for d in p.tiles() {
            let route = p.route(s, d);
            if s == d {
                assert!(route.is_empty());
                continue;
            }
            assert!(!route.is_empty(), "{s}->{d} unrouted");
            assert_eq!(p.link(route[0]).src, s);
            assert_eq!(p.link(route[route.len() - 1]).dst, d);
            for w in route.windows(2) {
                assert_eq!(p.link(w[0]).dst, p.link(w[1]).src);
            }
            // Loop-free: no tile visited twice.
            let mut visited = vec![p.link(route[0]).src];
            for &l in route {
                let next = p.link(l).dst;
                assert!(!visited.contains(&next), "{s}->{d} revisits {next}");
                visited.push(next);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn mesh_routes_are_consistent(cols in 1u16..6, rows in 1u16..6,
                                  yx in proptest::bool::ANY) {
        let routing = if yx { RoutingSpec::Yx } else { RoutingSpec::Xy };
        let p = build(TopologySpec::mesh(cols, rows), routing);
        assert_routes_consistent(&p);
        // XY route lengths equal Manhattan distance (minimal routing).
        for s in p.tiles() {
            for d in p.tiles() {
                prop_assert_eq!(
                    p.route(s, d).len() as u32,
                    p.coord(s).manhattan(p.coord(d))
                );
            }
        }
    }

    #[test]
    fn torus_routes_are_consistent_and_never_longer_than_mesh(
        cols in 1u16..6, rows in 1u16..6,
    ) {
        let torus = build(TopologySpec::torus(cols, rows), RoutingSpec::Xy);
        assert_routes_consistent(&torus);
        let mesh = build(TopologySpec::mesh(cols, rows), RoutingSpec::Xy);
        for s in torus.tiles() {
            for d in torus.tiles() {
                prop_assert!(torus.route(s, d).len() <= mesh.route(s, d).len());
            }
        }
    }

    #[test]
    fn honeycomb_shortest_path_is_consistent(cols in 2u16..6, rows in 1u16..6) {
        let p = build(TopologySpec::honeycomb(cols, rows), RoutingSpec::ShortestPath);
        assert_routes_consistent(&p);
    }

    #[test]
    fn bit_energy_is_monotone_in_route_length(cols in 2u16..6, rows in 2u16..6) {
        let p = build(TopologySpec::mesh(cols, rows), RoutingSpec::Xy);
        let origin = TileId::new(0);
        let mut by_len: Vec<(usize, f64)> = p
            .tiles()
            .map(|d| (p.hop_links(origin, d), p.bit_energy(origin, d).as_nj()))
            .collect();
        by_len.sort_by_key(|entry| entry.0);
        for w in by_len.windows(2) {
            if w[0].0 < w[1].0 {
                prop_assert!(w[0].1 < w[1].1);
            } else {
                prop_assert!((w[0].1 - w[1].1).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn transfer_duration_matches_bandwidth(bits in 1u64..100_000, bw in 1u32..512) {
        let p = Platform::builder()
            .topology(TopologySpec::mesh(2, 1))
            .link_bandwidth(f64::from(bw))
            .build()
            .expect("builds");
        let d = p.transfer_duration(TileId::new(0), TileId::new(1), Volume::from_bits(bits));
        let expect = (bits as f64 / f64::from(bw)).ceil() as u64;
        prop_assert_eq!(d, Time::new(expect.max(1)));
    }
}

#[test]
fn single_tile_platform_is_degenerate_but_valid() {
    let p = build(TopologySpec::mesh(1, 1), RoutingSpec::Xy);
    assert_eq!(p.tile_count(), 1);
    assert_eq!(p.link_count(), 0);
    assert!(p.route(TileId::new(0), TileId::new(0)).is_empty());
    assert_eq!(
        p.transfer_duration(TileId::new(0), TileId::new(0), Volume::from_bits(1 << 20)),
        Time::ZERO
    );
}
