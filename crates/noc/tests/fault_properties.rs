//! Property-based tests of the fault-aware routing layer: fault-aware
//! routes never traverse a failed link or tile, route computation on a
//! connected residual mesh always succeeds, and disconnected pairs
//! surface as the typed [`PlatformError::Disconnected`] — never a panic.

use proptest::prelude::*;

use noc_platform::fault::FaultSet;
use noc_platform::prelude::*;
use noc_platform::topology::TopologySpec as Topo;

/// Ground truth the platform builder must agree with: BFS connectivity
/// of the residual (post-fault) graph restricted to alive tiles.
fn residual_connected(topo: &Topo, faults: &FaultSet) -> bool {
    let n = topo.tile_count();
    let links = topo.links();
    let alive: Vec<TileId> = (0..n as u32)
        .map(TileId::new)
        .filter(|&t| !faults.tile_failed(t))
        .collect();
    let Some(&start) = alive.first() else {
        return false;
    };
    let mut adj: Vec<Vec<TileId>> = vec![Vec::new(); n];
    for l in &links {
        if !faults.blocks_link(*l) {
            adj[l.src.index()].push(l.dst);
        }
    }
    let mut seen = vec![false; n];
    seen[start.index()] = true;
    let mut stack = vec![start];
    while let Some(t) = stack.pop() {
        for &next in &adj[t.index()] {
            if !seen[next.index()] {
                seen[next.index()] = true;
                stack.push(next);
            }
        }
    }
    alive.iter().all(|t| seen[t.index()])
}

fn fault_set(topo: &Topo, tile_picks: &[u32], chan_picks: &[u32]) -> FaultSet {
    let n = topo.tile_count() as u32;
    let links = topo.links();
    let mut faults = FaultSet::new();
    for &t in tile_picks {
        faults.fail_tile(TileId::new(t % n));
    }
    for &c in chan_picks {
        let l = links[c as usize % links.len()];
        faults.fail_channel(l.src, l.dst);
    }
    faults
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn fault_aware_routes_avoid_dead_resources_and_never_panic(
        cols in 2u16..5, rows in 2u16..5,
        tile_picks in prop::collection::vec(0u32..1024, 0..3),
        chan_picks in prop::collection::vec(0u32..4096, 0..4),
    ) {
        let topo = Topo::mesh(cols, rows);
        let faults = fault_set(&topo, &tile_picks, &chan_picks);
        let connected = residual_connected(&topo, &faults);
        let result = Platform::builder()
            .topology(topo.clone())
            .faults(faults.clone())
            .build();
        match result {
            Ok(p) => {
                prop_assert!(connected, "build succeeded on a disconnected residual");
                for s in p.tiles() {
                    for d in p.tiles() {
                        // Never a dead resource on any route.
                        for &l in p.route(s, d) {
                            prop_assert!(
                                p.link_alive(l),
                                "route {s}->{d} crosses dead link {l}"
                            );
                        }
                        // Every alive pair is routed.
                        if s != d && p.tile_alive(s) && p.tile_alive(d) {
                            prop_assert!(!p.route(s, d).is_empty(), "{s}->{d} unrouted");
                        }
                    }
                }
            }
            Err(PlatformError::Disconnected { .. }) => {
                prop_assert!(!connected, "typed Disconnected on a connected residual");
            }
            Err(PlatformError::InvalidFaultSpec(_)) => {
                // Only legal when the faults killed every tile.
                prop_assert_eq!(faults.failed_tiles().len(), topo.tile_count());
            }
            Err(e) => prop_assert!(false, "unexpected error: {e}"),
        }
    }

    #[test]
    fn fault_aware_builds_are_deterministic(
        cols in 2u16..5, rows in 2u16..5,
        tile_picks in prop::collection::vec(0u32..1024, 0..2),
        chan_picks in prop::collection::vec(0u32..4096, 0..3),
    ) {
        let topo = Topo::mesh(cols, rows);
        let faults = fault_set(&topo, &tile_picks, &chan_picks);
        let build = || Platform::builder()
            .topology(topo.clone())
            .faults(faults.clone())
            .build();
        match (build(), build()) {
            (Ok(a), Ok(b)) => {
                for s in a.tiles() {
                    for d in a.tiles() {
                        prop_assert_eq!(a.route(s, d), b.route(s, d));
                    }
                }
            }
            (Err(a), Err(b)) => prop_assert_eq!(a, b),
            _ => prop_assert!(false, "one build succeeded, the other failed"),
        }
    }
}
