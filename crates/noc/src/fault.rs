//! Permanent resource faults: dead tiles and dead links.
//!
//! The paper's schedules assume a pristine mesh; this module models the
//! platform *after* manufacturing defects or field failures have removed
//! resources. A [`FaultSet`] lists failed tiles (the whole tile dies:
//! its PE and its router, hence every link touching it) and failed
//! directed links (the channel dies, the routers survive). Platforms
//! built with a fault set compute fault-aware routes that detour around
//! dead resources (see [`crate::routing::compute_routes_with_faults`]),
//! and schedulers mask the dead PEs out of their candidate lists.
//!
//! Fault sets are value types: deterministic, order-independent,
//! serializable and parseable from a compact CLI spec string.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

use crate::tile::TileId;
use crate::topology::Link;
use crate::PlatformError;

/// A set of permanently failed tiles and directed links.
///
/// Internally kept sorted and deduplicated, so two fault sets with the
/// same resources compare equal regardless of insertion order.
///
/// # Spec strings
///
/// [`FaultSet::parse`] (also available through [`FromStr`]) accepts a
/// comma-separated list of items:
///
/// * `tile:<id>` — the tile (PE + router) is dead,
/// * `link:<a>-<b>` — the bidirectional channel between tiles `a` and
///   `b` is dead (both directed links fail),
/// * `link:<a>><b>` — only the directed link `a -> b` is dead.
///
/// ```
/// use noc_platform::fault::FaultSet;
/// use noc_platform::tile::TileId;
///
/// let f: FaultSet = "tile:5,link:0-1".parse().unwrap();
/// assert!(f.tile_failed(TileId::new(5)));
/// assert_eq!(f.failed_links().len(), 2); // both directions of 0-1
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultSet {
    /// Failed tiles, sorted ascending.
    tiles: Vec<TileId>,
    /// Failed directed links, sorted ascending.
    links: Vec<Link>,
}

impl FaultSet {
    /// Creates an empty fault set (a pristine platform).
    #[must_use]
    pub fn new() -> Self {
        FaultSet::default()
    }

    /// `true` if no resource failed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.tiles.is_empty() && self.links.is_empty()
    }

    /// Marks a tile (PE + router) as permanently dead.
    pub fn fail_tile(&mut self, tile: TileId) {
        if let Err(pos) = self.tiles.binary_search(&tile) {
            self.tiles.insert(pos, tile);
        }
    }

    /// Marks one directed link as permanently dead.
    pub fn fail_link(&mut self, link: Link) {
        if let Err(pos) = self.links.binary_search(&link) {
            self.links.insert(pos, link);
        }
    }

    /// Marks the bidirectional channel between two tiles as dead (both
    /// directed links fail).
    pub fn fail_channel(&mut self, a: TileId, b: TileId) {
        self.fail_link(Link::new(a, b));
        self.fail_link(Link::new(b, a));
    }

    /// `true` if the tile itself is dead.
    #[must_use]
    pub fn tile_failed(&self, tile: TileId) -> bool {
        self.tiles.binary_search(&tile).is_ok()
    }

    /// `true` if the directed link itself is dead (endpoints may be
    /// alive; see [`FaultSet::blocks_link`] for the routing question).
    #[must_use]
    pub fn link_failed(&self, link: Link) -> bool {
        self.links.binary_search(&link).is_ok()
    }

    /// `true` if traffic cannot use the link: the link is dead or either
    /// endpoint tile (and therefore its router) is dead.
    #[must_use]
    pub fn blocks_link(&self, link: Link) -> bool {
        self.link_failed(link) || self.tile_failed(link.src) || self.tile_failed(link.dst)
    }

    /// The failed tiles, ascending.
    #[must_use]
    pub fn failed_tiles(&self) -> &[TileId] {
        &self.tiles
    }

    /// The failed directed links, ascending.
    #[must_use]
    pub fn failed_links(&self) -> &[Link] {
        &self.links
    }

    /// Total number of fault entries (tiles + directed links).
    #[must_use]
    pub fn len(&self) -> usize {
        self.tiles.len() + self.links.len()
    }

    /// Parses a spec string; see the [type docs](FaultSet) for the
    /// grammar. An empty string yields an empty set.
    ///
    /// # Errors
    ///
    /// [`PlatformError::InvalidFaultSpec`] on malformed items.
    pub fn parse(spec: &str) -> Result<Self, PlatformError> {
        let mut set = FaultSet::new();
        for item in spec.split(',').map(str::trim).filter(|s| !s.is_empty()) {
            if let Some(id) = item.strip_prefix("tile:") {
                let id: u32 = id.trim().parse().map_err(|_| {
                    PlatformError::InvalidFaultSpec(format!("bad tile id in `{item}`"))
                })?;
                set.fail_tile(TileId::new(id));
            } else if let Some(pair) = item.strip_prefix("link:") {
                let (a, b, directed) = if let Some((a, b)) = pair.split_once('>') {
                    (a, b, true)
                } else if let Some((a, b)) = pair.split_once('-') {
                    (a, b, false)
                } else {
                    return Err(PlatformError::InvalidFaultSpec(format!(
                        "link item `{item}` needs `a-b` (both directions) or `a>b` (one)"
                    )));
                };
                let parse_tile = |s: &str| -> Result<TileId, PlatformError> {
                    s.trim().parse::<u32>().map(TileId::new).map_err(|_| {
                        PlatformError::InvalidFaultSpec(format!("bad tile id in `{item}`"))
                    })
                };
                let (a, b) = (parse_tile(a)?, parse_tile(b)?);
                if directed {
                    set.fail_link(Link::new(a, b));
                } else {
                    set.fail_channel(a, b);
                }
            } else {
                return Err(PlatformError::InvalidFaultSpec(format!(
                    "unknown fault item `{item}` (expected `tile:<id>` or `link:<a>-<b>`)"
                )));
            }
        }
        Ok(set)
    }
}

impl FromStr for FaultSet {
    type Err = PlatformError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        FaultSet::parse(s)
    }
}

impl fmt::Display for FaultSet {
    /// Canonical spec form: round-trips through [`FaultSet::parse`].
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        let mut sep = |f: &mut fmt::Formatter<'_>| -> fmt::Result {
            if first {
                first = false;
                Ok(())
            } else {
                write!(f, ",")
            }
        };
        for t in &self.tiles {
            sep(f)?;
            write!(f, "tile:{}", t.index())?;
        }
        // Collapse link pairs that fail in both directions into `a-b`.
        let mut printed = vec![false; self.links.len()];
        for (i, l) in self.links.iter().enumerate() {
            if printed[i] {
                continue;
            }
            let rev = self.links.binary_search(&l.reversed());
            match rev {
                Ok(j) if l.src < l.dst => {
                    printed[i] = true;
                    printed[j] = true;
                    sep(f)?;
                    write!(f, "link:{}-{}", l.src.index(), l.dst.index())?;
                }
                Ok(_) => {} // printed by the smaller-src direction
                Err(_) => {
                    printed[i] = true;
                    sep(f)?;
                    write!(f, "link:{}>{}", l.src.index(), l.dst.index())?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_set_blocks_nothing() {
        let f = FaultSet::new();
        assert!(f.is_empty());
        assert_eq!(f.len(), 0);
        assert!(!f.blocks_link(Link::new(TileId::new(0), TileId::new(1))));
    }

    #[test]
    fn insertion_order_does_not_matter() {
        let mut a = FaultSet::new();
        a.fail_tile(TileId::new(3));
        a.fail_tile(TileId::new(1));
        let mut b = FaultSet::new();
        b.fail_tile(TileId::new(1));
        b.fail_tile(TileId::new(3));
        b.fail_tile(TileId::new(3)); // duplicate is a no-op
        assert_eq!(a, b);
        assert_eq!(a.failed_tiles(), &[TileId::new(1), TileId::new(3)]);
    }

    #[test]
    fn dead_tile_blocks_adjacent_links() {
        let mut f = FaultSet::new();
        f.fail_tile(TileId::new(2));
        assert!(f.blocks_link(Link::new(TileId::new(2), TileId::new(3))));
        assert!(f.blocks_link(Link::new(TileId::new(1), TileId::new(2))));
        assert!(!f.blocks_link(Link::new(TileId::new(0), TileId::new(1))));
        assert!(!f.link_failed(Link::new(TileId::new(2), TileId::new(3))));
    }

    #[test]
    fn channel_fails_both_directions() {
        let mut f = FaultSet::new();
        f.fail_channel(TileId::new(0), TileId::new(1));
        assert!(f.link_failed(Link::new(TileId::new(0), TileId::new(1))));
        assert!(f.link_failed(Link::new(TileId::new(1), TileId::new(0))));
    }

    #[test]
    fn parse_accepts_all_item_kinds() {
        let f = FaultSet::parse("tile:5, link:0-1, link:2>3").unwrap();
        assert!(f.tile_failed(TileId::new(5)));
        assert!(f.link_failed(Link::new(TileId::new(0), TileId::new(1))));
        assert!(f.link_failed(Link::new(TileId::new(1), TileId::new(0))));
        assert!(f.link_failed(Link::new(TileId::new(2), TileId::new(3))));
        assert!(!f.link_failed(Link::new(TileId::new(3), TileId::new(2))));
        assert_eq!(FaultSet::parse("").unwrap(), FaultSet::new());
    }

    #[test]
    fn parse_rejects_malformed_items() {
        for bad in ["pe:1", "tile:x", "link:1", "link:a-b", "7"] {
            let err = FaultSet::parse(bad).unwrap_err();
            assert!(
                matches!(err, PlatformError::InvalidFaultSpec(_)),
                "spec `{bad}` gave {err:?}"
            );
        }
    }

    #[test]
    fn display_round_trips_through_parse() {
        let f = FaultSet::parse("tile:5,tile:2,link:0-1,link:7>4").unwrap();
        let shown = f.to_string();
        let back = FaultSet::parse(&shown).unwrap();
        assert_eq!(back, f, "display form `{shown}` must round-trip");
    }

    #[test]
    fn serde_round_trip() {
        let f = FaultSet::parse("tile:1,link:2-3").unwrap();
        let json = serde_json::to_string(&f).unwrap();
        let back: FaultSet = serde_json::from_str(&json).unwrap();
        assert_eq!(back, f);
    }
}
