//! The assembled NoC platform and its Architecture Characterization Graph.
//!
//! [`Platform`] is the crate's main type: a validated combination of
//! topology, heterogeneous PE mix, routing algorithm, link bandwidth and
//! energy model. At construction it precomputes the paper's ACG (Def. 2):
//! for every ordered pair of tiles the deterministic route `r_ij`, its
//! per-bit energy `e(r_ij)` (Eq. 2) and its bandwidth `b(r_ij)`.

use serde::{Deserialize, Serialize};

use crate::catalog::{CycleMix, PeCatalog, PeClass};
use crate::energy::EnergyModel;
use crate::fault::FaultSet;
use crate::routing::{compute_routes_with_faults, LinkId, RoutingSpec};
use crate::tile::{Coord, PeId, TileId};
use crate::topology::{Link, TopologySpec};
use crate::units::{Energy, Time, Volume};
use crate::PlatformError;

/// Default link bandwidth: one 32-bit flit per tick.
pub const DEFAULT_LINK_BANDWIDTH: f64 = 32.0;

/// A validated heterogeneous NoC platform with a precomputed ACG.
///
/// Construct with [`Platform::builder`]. See the [crate-level
/// documentation](crate) for an end-to-end example.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Platform {
    topology: TopologySpec,
    routing_name: String,
    coords: Vec<Coord>,
    pes: Vec<PeClass>,
    links: Vec<Link>,
    /// `routes[src][dst]` — link ids of the deterministic route.
    routes: Vec<Vec<Vec<LinkId>>>,
    energy: EnergyModel,
    /// Uniform link bandwidth in bits per tick.
    link_bandwidth: f64,
    /// Permanently failed resources (empty on a pristine platform).
    #[serde(default)]
    faults: FaultSet,
}

impl Platform {
    /// Starts building a platform.
    #[must_use]
    pub fn builder() -> PlatformBuilder {
        PlatformBuilder::new()
    }

    /// Number of tiles (== number of PEs).
    #[must_use]
    pub fn tile_count(&self) -> usize {
        self.coords.len()
    }

    /// Number of directed links.
    #[must_use]
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// All tile ids, in order.
    pub fn tiles(&self) -> impl Iterator<Item = TileId> + '_ {
        (0..self.coords.len() as u32).map(TileId::new)
    }

    /// All PE ids, in order.
    pub fn pes(&self) -> impl Iterator<Item = PeId> + '_ {
        (0..self.coords.len() as u32).map(PeId::new)
    }

    /// The PE class hosted on the given tile.
    ///
    /// # Panics
    ///
    /// Panics if `pe` is out of range.
    #[must_use]
    pub fn pe_class(&self, pe: PeId) -> &PeClass {
        &self.pes[pe.index()]
    }

    /// All PE classes, tile order.
    #[must_use]
    pub fn pe_classes(&self) -> &[PeClass] {
        &self.pes
    }

    /// Grid coordinate of a tile.
    ///
    /// # Panics
    ///
    /// Panics if `tile` is out of range.
    #[must_use]
    pub fn coord(&self, tile: TileId) -> Coord {
        self.coords[tile.index()]
    }

    /// All directed links; [`LinkId`] indexes into this slice.
    #[must_use]
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// The endpoints of a link.
    ///
    /// # Panics
    ///
    /// Panics if `link` is out of range.
    #[must_use]
    pub fn link(&self, link: LinkId) -> Link {
        self.links[link.index()]
    }

    /// The deterministic route `src -> dst` as a link sequence. Empty for
    /// `src == dst` (local communication does not enter the network).
    ///
    /// # Panics
    ///
    /// Panics if either tile is out of range.
    #[must_use]
    pub fn route(&self, src: TileId, dst: TileId) -> &[LinkId] {
        &self.routes[src.index()][dst.index()]
    }

    /// Number of link traversals on the route (`n_hops - 1` of Eq. 2).
    #[must_use]
    pub fn hop_links(&self, src: TileId, dst: TileId) -> usize {
        self.route(src, dst).len()
    }

    /// The ACG per-bit energy `e(r_ij)` of Def. 2 (Eq. 2). A local
    /// transfer costs one switch traversal.
    #[must_use]
    pub fn bit_energy(&self, src: TileId, dst: TileId) -> Energy {
        self.energy.bit_energy_for_hops(self.hop_links(src, dst))
    }

    /// Energy of moving `volume` bits from `src` to `dst` —
    /// `v(c_ij) * e(r_ij)` of Eq. 3. Zero-volume (control) dependencies
    /// are free.
    #[must_use]
    pub fn transfer_energy(&self, src: TileId, dst: TileId, volume: Volume) -> Energy {
        if volume.is_zero() {
            return Energy::ZERO;
        }
        self.energy
            .transfer_energy(self.hop_links(src, dst), volume)
    }

    /// The ACG bandwidth `b(r_ij)` in bits per tick. Local transfers are
    /// modeled as infinitely fast (they go through the tile's internal
    /// port, not the network).
    #[must_use]
    pub fn bandwidth(&self, src: TileId, dst: TileId) -> f64 {
        if src == dst {
            f64::INFINITY
        } else {
            self.link_bandwidth
        }
    }

    /// The uniform link bandwidth, in bits per tick.
    #[must_use]
    pub fn link_bandwidth(&self) -> f64 {
        self.link_bandwidth
    }

    /// Time to move `volume` bits from `src` to `dst` once the route is
    /// granted: `ceil(volume / bandwidth)`. Local or zero-volume
    /// transfers take zero time.
    #[must_use]
    pub fn transfer_duration(&self, src: TileId, dst: TileId, volume: Volume) -> Time {
        if src == dst || volume.is_zero() {
            return Time::ZERO;
        }
        let ticks = (volume.as_f64() / self.link_bandwidth).ceil() as u64;
        Time::new(ticks.max(1))
    }

    /// The energy model in force.
    #[must_use]
    pub fn energy_model(&self) -> &EnergyModel {
        &self.energy
    }

    /// The topology specification the platform was built from.
    #[must_use]
    pub fn topology(&self) -> &TopologySpec {
        &self.topology
    }

    /// Name of the routing algorithm in force.
    #[must_use]
    pub fn routing_name(&self) -> &str {
        &self.routing_name
    }

    /// The permanent faults this platform was built with (empty for a
    /// pristine platform).
    #[must_use]
    pub fn faults(&self) -> &FaultSet {
        &self.faults
    }

    /// `true` if the tile (PE + router) survived the fault set.
    ///
    /// # Panics
    ///
    /// Panics if `tile` is out of range.
    #[must_use]
    pub fn tile_alive(&self, tile: TileId) -> bool {
        assert!(tile.index() < self.coords.len(), "tile {tile} out of range");
        !self.faults.tile_failed(tile)
    }

    /// `true` if the PE survived the fault set (schedulers must not
    /// place tasks on dead PEs).
    ///
    /// # Panics
    ///
    /// Panics if `pe` is out of range.
    #[must_use]
    pub fn pe_alive(&self, pe: PeId) -> bool {
        self.tile_alive(pe.tile())
    }

    /// All surviving PE ids, in order — the candidate list schedulers
    /// draw from. Equals [`Platform::pes`] on a pristine platform.
    pub fn alive_pes(&self) -> impl Iterator<Item = PeId> + '_ {
        self.pes().filter(|&pe| self.pe_alive(pe))
    }

    /// `true` if the directed link is usable: neither the link itself
    /// nor an endpoint tile failed.
    ///
    /// # Panics
    ///
    /// Panics if `link` is out of range.
    #[must_use]
    pub fn link_alive(&self, link: LinkId) -> bool {
        !self.faults.blocks_link(self.link(link))
    }

    /// Validates that a tile id is within range.
    ///
    /// # Errors
    ///
    /// [`PlatformError::UnknownTile`] if out of range.
    pub fn check_tile(&self, tile: TileId) -> Result<(), PlatformError> {
        if tile.index() < self.coords.len() {
            Ok(())
        } else {
            Err(PlatformError::UnknownTile {
                tile,
                tile_count: self.coords.len(),
            })
        }
    }
}

/// Builder for [`Platform`].
///
/// ```
/// use noc_platform::prelude::*;
///
/// # fn main() -> Result<(), PlatformError> {
/// let platform = Platform::builder()
///     .topology(TopologySpec::mesh(2, 2))
///     .routing(RoutingSpec::Xy)
///     .pes(PeCatalog::date04().mix_for(4))
///     .link_bandwidth(64.0)
///     .build()?;
/// assert_eq!(platform.link_bandwidth(), 64.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct PlatformBuilder {
    topology: TopologySpec,
    routing: RoutingSpec,
    pes: PeSource,
    energy: EnergyModel,
    link_bandwidth: f64,
    faults: FaultSet,
}

#[derive(Debug, Clone)]
enum PeSource {
    Catalog(PeCatalog),
    Explicit(Vec<PeClass>),
}

impl PlatformBuilder {
    /// Creates a builder with the paper's defaults: 4x4 mesh, XY routing,
    /// the DATE'04 heterogeneous PE mix, default energy model and
    /// bandwidth.
    #[must_use]
    pub fn new() -> Self {
        PlatformBuilder {
            topology: TopologySpec::mesh(4, 4),
            routing: RoutingSpec::Xy,
            pes: PeSource::Catalog(PeCatalog::date04()),
            energy: EnergyModel::date04(),
            link_bandwidth: DEFAULT_LINK_BANDWIDTH,
            faults: FaultSet::new(),
        }
    }

    /// Sets the topology.
    #[must_use]
    pub fn topology(mut self, spec: TopologySpec) -> Self {
        self.topology = spec;
        self
    }

    /// Sets the routing algorithm.
    #[must_use]
    pub fn routing(mut self, spec: RoutingSpec) -> Self {
        self.routing = spec;
        self
    }

    /// Assigns PE classes round-robin from a catalog view.
    #[must_use]
    pub fn pe_mix(mut self, mix: CycleMix<'_>) -> Self {
        self.pes = PeSource::Explicit(mix.materialize(self.topology.tile_count()));
        self
    }

    /// Assigns one explicit PE class per tile (length must equal the tile
    /// count at [`build`](Self::build) time).
    #[must_use]
    pub fn pes(mut self, pes: Vec<PeClass>) -> Self {
        self.pes = PeSource::Explicit(pes);
        self
    }

    /// Sets the energy model.
    #[must_use]
    pub fn energy_model(mut self, model: EnergyModel) -> Self {
        self.energy = model;
        self
    }

    /// Sets the uniform link bandwidth in bits per tick.
    #[must_use]
    pub fn link_bandwidth(mut self, bits_per_tick: f64) -> Self {
        self.link_bandwidth = bits_per_tick;
        self
    }

    /// Sets the permanent fault set. Routes are computed fault-aware
    /// (see [`compute_routes_with_faults`]) and dead PEs are exposed
    /// through [`Platform::alive_pes`] for schedulers to mask.
    #[must_use]
    pub fn faults(mut self, faults: FaultSet) -> Self {
        self.faults = faults;
        self
    }

    /// Validates the configuration and assembles the platform, computing
    /// the full ACG.
    ///
    /// # Errors
    ///
    /// * [`PlatformError::EmptyTopology`] for zero tiles,
    /// * [`PlatformError::PeCountMismatch`] if explicit PEs do not match
    ///   the tile count,
    /// * [`PlatformError::InvalidBandwidth`] for non-positive bandwidth,
    /// * [`PlatformError::InvalidFaultSpec`] if the fault set references
    ///   a resource the topology does not have, or kills every tile,
    /// * routing errors from [`compute_routes_with_faults`]
    ///   ([`PlatformError::IncompatibleRouting`],
    ///   [`PlatformError::Disconnected`], [`PlatformError::InvalidRoute`]).
    pub fn build(self) -> Result<Platform, PlatformError> {
        let tile_count = self.topology.tile_count();
        if tile_count == 0 {
            return Err(PlatformError::EmptyTopology);
        }
        if !(self.link_bandwidth.is_finite() && self.link_bandwidth > 0.0) {
            return Err(PlatformError::InvalidBandwidth(self.link_bandwidth));
        }
        let pes = match self.pes {
            PeSource::Catalog(cat) => cat.mix_for(tile_count),
            PeSource::Explicit(v) => {
                if v.len() != tile_count {
                    return Err(PlatformError::PeCountMismatch {
                        tiles: tile_count,
                        pes: v.len(),
                    });
                }
                v
            }
        };
        let coords = self.topology.coords();
        let links = self.topology.links();
        for &t in self.faults.failed_tiles() {
            if t.index() >= tile_count {
                return Err(PlatformError::UnknownTile {
                    tile: t,
                    tile_count,
                });
            }
        }
        for &l in self.faults.failed_links() {
            if links.binary_search(&l).is_err() {
                return Err(PlatformError::InvalidFaultSpec(format!(
                    "failed link {l} does not exist in the topology"
                )));
            }
        }
        if self.faults.failed_tiles().len() >= tile_count {
            return Err(PlatformError::InvalidFaultSpec(
                "every tile failed: no PE left to schedule on".into(),
            ));
        }
        let routes = compute_routes_with_faults(
            &self.topology,
            &self.routing,
            &coords,
            &links,
            &self.faults,
        )?;
        Ok(Platform {
            routing_name: self.routing.name().to_owned(),
            topology: self.topology,
            coords,
            pes,
            links,
            routes,
            energy: self.energy,
            link_bandwidth: self.link_bandwidth,
            faults: self.faults,
        })
    }
}

impl Default for PlatformBuilder {
    fn default() -> Self {
        PlatformBuilder::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh(n: u16) -> Platform {
        Platform::builder()
            .topology(TopologySpec::mesh(n, n))
            .routing(RoutingSpec::Xy)
            .build()
            .expect("mesh builds")
    }

    #[test]
    fn default_builder_builds_4x4() {
        let p = Platform::builder().build().expect("default platform");
        assert_eq!(p.tile_count(), 16);
        assert_eq!(p.routing_name(), "xy");
        assert_eq!(p.link_count(), 2 * (4 * 3 + 4 * 3));
    }

    #[test]
    fn bit_energy_grows_with_manhattan_distance() {
        let p = mesh(4);
        let origin = TileId::new(0);
        let e1 = p.bit_energy(origin, TileId::new(1)); // 1 hop link
        let e6 = p.bit_energy(origin, TileId::new(15)); // 6 hop links
        assert!(e6 > e1);
        // Eq. 2 exact check.
        let m = p.energy_model();
        let expect = m.e_sbit * 7.0 + m.e_lbit * 6.0;
        assert!((e6.as_nj() - expect.as_nj()).abs() < 1e-12);
    }

    #[test]
    fn local_transfer_is_instant_and_link_free() {
        let p = mesh(2);
        let t = TileId::new(3);
        assert_eq!(
            p.transfer_duration(t, t, Volume::from_bits(1_000_000)),
            Time::ZERO
        );
        assert!(p.route(t, t).is_empty());
        assert_eq!(p.bandwidth(t, t), f64::INFINITY);
    }

    #[test]
    fn transfer_duration_is_ceil_of_volume_over_bandwidth() {
        let p = Platform::builder()
            .topology(TopologySpec::mesh(2, 1))
            .link_bandwidth(10.0)
            .build()
            .unwrap();
        let (a, b) = (TileId::new(0), TileId::new(1));
        assert_eq!(
            p.transfer_duration(a, b, Volume::from_bits(100)),
            Time::new(10)
        );
        assert_eq!(
            p.transfer_duration(a, b, Volume::from_bits(101)),
            Time::new(11)
        );
        assert_eq!(
            p.transfer_duration(a, b, Volume::from_bits(1)),
            Time::new(1)
        );
        assert_eq!(p.transfer_duration(a, b, Volume::ZERO), Time::ZERO);
    }

    #[test]
    fn zero_volume_transfer_has_zero_energy() {
        let p = mesh(3);
        assert_eq!(
            p.transfer_energy(TileId::new(0), TileId::new(8), Volume::ZERO),
            Energy::ZERO
        );
    }

    #[test]
    fn explicit_pe_mismatch_is_rejected() {
        let err = Platform::builder()
            .topology(TopologySpec::mesh(2, 2))
            .pes(vec![PeClass::mid_cpu()])
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            PlatformError::PeCountMismatch { tiles: 4, pes: 1 }
        ));
    }

    #[test]
    fn invalid_bandwidth_is_rejected() {
        let err = Platform::builder().link_bandwidth(0.0).build().unwrap_err();
        assert!(matches!(err, PlatformError::InvalidBandwidth(_)));
        let err = Platform::builder()
            .link_bandwidth(f64::NAN)
            .build()
            .unwrap_err();
        assert!(matches!(err, PlatformError::InvalidBandwidth(_)));
    }

    #[test]
    fn check_tile_bounds() {
        let p = mesh(2);
        assert!(p.check_tile(TileId::new(3)).is_ok());
        assert!(p.check_tile(TileId::new(4)).is_err());
    }

    #[test]
    fn honeycomb_platform_builds_with_shortest_path() {
        let p = Platform::builder()
            .topology(TopologySpec::honeycomb(4, 4))
            .routing(RoutingSpec::ShortestPath)
            .build()
            .expect("honeycomb builds");
        assert_eq!(p.tile_count(), 16);
        // All pairs routed.
        for s in p.tiles() {
            for d in p.tiles() {
                if s != d {
                    assert!(!p.route(s, d).is_empty());
                }
            }
        }
    }

    #[test]
    fn faulted_platform_masks_pes_and_reroutes() {
        let faults = FaultSet::parse("tile:5,link:1-2").unwrap();
        let p = Platform::builder()
            .topology(TopologySpec::mesh(4, 4))
            .faults(faults)
            .build()
            .expect("faulted 4x4 stays connected");
        assert!(!p.tile_alive(TileId::new(5)));
        assert!(p.tile_alive(TileId::new(0)));
        assert_eq!(p.alive_pes().count(), 15);
        assert!(!p.pe_alive(PeId::new(5)));
        // No route may use a blocked link.
        for s in p.tiles() {
            for d in p.tiles() {
                for &l in p.route(s, d) {
                    assert!(p.link_alive(l), "route {s}->{d} crosses dead {l}");
                }
            }
        }
        // Dead-tile pairs carry no traffic.
        assert!(p.route(TileId::new(5), TileId::new(0)).is_empty());
        assert!(p.route(TileId::new(0), TileId::new(5)).is_empty());
    }

    #[test]
    fn fault_referencing_missing_resources_is_rejected() {
        let err = Platform::builder()
            .topology(TopologySpec::mesh(2, 2))
            .faults(FaultSet::parse("tile:9").unwrap())
            .build()
            .unwrap_err();
        assert!(matches!(err, PlatformError::UnknownTile { .. }));
        let err = Platform::builder()
            .topology(TopologySpec::mesh(2, 2))
            .faults(FaultSet::parse("link:0-3").unwrap()) // diagonal: no such link
            .build()
            .unwrap_err();
        assert!(matches!(err, PlatformError::InvalidFaultSpec(_)));
    }

    #[test]
    fn killing_every_tile_is_rejected() {
        let err = Platform::builder()
            .topology(TopologySpec::mesh(2, 1))
            .faults(FaultSet::parse("tile:0,tile:1").unwrap())
            .build()
            .unwrap_err();
        assert!(matches!(err, PlatformError::InvalidFaultSpec(_)));
    }

    #[test]
    fn disconnecting_faults_are_a_typed_error() {
        let err = Platform::builder()
            .topology(TopologySpec::mesh(3, 1))
            .faults(FaultSet::parse("tile:1").unwrap())
            .build()
            .unwrap_err();
        assert!(matches!(err, PlatformError::Disconnected { .. }));
    }

    #[test]
    fn faulted_platform_serde_round_trip() {
        let p = Platform::builder()
            .topology(TopologySpec::mesh(3, 3))
            .faults(FaultSet::parse("tile:4").unwrap())
            .build()
            .unwrap();
        let json = serde_json::to_string(&p).expect("serialize");
        let back: Platform = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back.faults(), p.faults());
        assert!(!back.tile_alive(TileId::new(4)));
    }

    #[test]
    fn platform_serde_round_trip() {
        let p = mesh(2);
        let json = serde_json::to_string(&p).expect("serialize");
        let back: Platform = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back.tile_count(), p.tile_count());
        assert_eq!(
            back.route(TileId::new(0), TileId::new(3)),
            p.route(TileId::new(0), TileId::new(3))
        );
    }

    #[test]
    fn routes_follow_links_consistently() {
        let p = mesh(4);
        for s in p.tiles() {
            for d in p.tiles() {
                let route = p.route(s, d);
                if route.is_empty() {
                    assert_eq!(s, d);
                    continue;
                }
                assert_eq!(p.link(route[0]).src, s);
                assert_eq!(p.link(route[route.len() - 1]).dst, d);
                for w in route.windows(2) {
                    assert_eq!(p.link(w[0]).dst, p.link(w[1]).src);
                }
            }
        }
    }
}
