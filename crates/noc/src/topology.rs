//! Tile topologies: 2D mesh (the paper's platform), 2D torus, and the
//! honeycomb grid mentioned in the paper's future work (Sec. 7).
//!
//! A topology fixes the set of tiles (each with a grid [`Coord`]) and the
//! set of directed inter-tile links. Routing is layered on top in
//! [`crate::routing`].

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::tile::{Coord, TileId};

/// A directed physical link between two adjacent tiles.
///
/// Links are directed because wormhole schedule tables reserve each
/// direction independently (the paper's Fig. 1 schedules e.g. the link
/// `(3,1) -> (2,3)` wait, `(3,1) -> (3,2)`, per direction).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Link {
    /// Upstream tile.
    pub src: TileId,
    /// Downstream tile.
    pub dst: TileId,
}

impl Link {
    /// Creates a directed link.
    #[must_use]
    pub const fn new(src: TileId, dst: TileId) -> Self {
        Link { src, dst }
    }

    /// The same physical channel in the opposite direction.
    #[must_use]
    pub const fn reversed(self) -> Link {
        Link {
            src: self.dst,
            dst: self.src,
        }
    }
}

impl fmt::Display for Link {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}->{}", self.src, self.dst)
    }
}

/// Declarative description of a tile topology.
///
/// ```
/// use noc_platform::topology::TopologySpec;
/// let mesh = TopologySpec::mesh(4, 4);
/// assert_eq!(mesh.tile_count(), 16);
/// assert_eq!(mesh.to_string(), "mesh-4x4");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum TopologySpec {
    /// A `cols x rows` 2D mesh — the paper's platform.
    Mesh2d {
        /// Number of columns.
        cols: u16,
        /// Number of rows.
        rows: u16,
    },
    /// A `cols x rows` 2D torus (mesh with wrap-around links).
    Torus2d {
        /// Number of columns.
        cols: u16,
        /// Number of rows.
        rows: u16,
    },
    /// A `cols x rows` honeycomb (brick-wall) grid: horizontal links in
    /// every row, vertical links only where `x + y` is even, giving router
    /// degree at most 3 as in Hemani et al.'s honeycomb NoC.
    Honeycomb {
        /// Number of columns (must be at least 2 for connectivity).
        cols: u16,
        /// Number of rows.
        rows: u16,
    },
    /// An explicit tile/link list for custom platforms.
    Custom {
        /// One coordinate per tile (tile `i` gets `coords[i]`).
        coords: Vec<Coord>,
        /// Directed links. Both directions must be listed if the channel
        /// is bidirectional.
        links: Vec<Link>,
        /// Display name.
        name: String,
    },
}

impl TopologySpec {
    /// A `cols x rows` 2D mesh.
    #[must_use]
    pub const fn mesh(cols: u16, rows: u16) -> Self {
        TopologySpec::Mesh2d { cols, rows }
    }

    /// A `cols x rows` 2D torus.
    #[must_use]
    pub const fn torus(cols: u16, rows: u16) -> Self {
        TopologySpec::Torus2d { cols, rows }
    }

    /// A `cols x rows` honeycomb grid.
    #[must_use]
    pub const fn honeycomb(cols: u16, rows: u16) -> Self {
        TopologySpec::Honeycomb { cols, rows }
    }

    /// Number of tiles described by the spec.
    #[must_use]
    pub fn tile_count(&self) -> usize {
        match self {
            TopologySpec::Mesh2d { cols, rows }
            | TopologySpec::Torus2d { cols, rows }
            | TopologySpec::Honeycomb { cols, rows } => usize::from(*cols) * usize::from(*rows),
            TopologySpec::Custom { coords, .. } => coords.len(),
        }
    }

    /// Grid dimensions for regular topologies, `None` for custom ones.
    #[must_use]
    pub fn dims(&self) -> Option<(u16, u16)> {
        match self {
            TopologySpec::Mesh2d { cols, rows }
            | TopologySpec::Torus2d { cols, rows }
            | TopologySpec::Honeycomb { cols, rows } => Some((*cols, *rows)),
            TopologySpec::Custom { .. } => None,
        }
    }

    /// Materializes per-tile coordinates, row-major (`tile = y*cols + x`).
    #[must_use]
    pub fn coords(&self) -> Vec<Coord> {
        match self {
            TopologySpec::Mesh2d { cols, rows }
            | TopologySpec::Torus2d { cols, rows }
            | TopologySpec::Honeycomb { cols, rows } => {
                let mut v = Vec::with_capacity(usize::from(*cols) * usize::from(*rows));
                for y in 0..*rows {
                    for x in 0..*cols {
                        v.push(Coord::new(x, y));
                    }
                }
                v
            }
            TopologySpec::Custom { coords, .. } => coords.clone(),
        }
    }

    /// Materializes the directed link list.
    #[must_use]
    pub fn links(&self) -> Vec<Link> {
        fn id(cols: u16, x: u16, y: u16) -> TileId {
            TileId::new(u32::from(y) * u32::from(cols) + u32::from(x))
        }
        let mut links = Vec::new();
        match self {
            TopologySpec::Mesh2d { cols, rows } => {
                for y in 0..*rows {
                    for x in 0..*cols {
                        let here = id(*cols, x, y);
                        if x + 1 < *cols {
                            let east = id(*cols, x + 1, y);
                            links.push(Link::new(here, east));
                            links.push(Link::new(east, here));
                        }
                        if y + 1 < *rows {
                            let north = id(*cols, x, y + 1);
                            links.push(Link::new(here, north));
                            links.push(Link::new(north, here));
                        }
                    }
                }
            }
            TopologySpec::Torus2d { cols, rows } => {
                for y in 0..*rows {
                    for x in 0..*cols {
                        let here = id(*cols, x, y);
                        // Wrap-around east and north neighbours; skip the
                        // duplicate wrap link when the dimension is <= 1
                        // (and the double link when it is exactly 2 would
                        // alias the mesh link, so only add wrap if dim > 2
                        // or the pair is distinct and not already added).
                        if *cols > 1 {
                            let east = id(*cols, (x + 1) % *cols, y);
                            if x + 1 < *cols || *cols > 2 {
                                links.push(Link::new(here, east));
                                links.push(Link::new(east, here));
                            }
                        }
                        if *rows > 1 {
                            let north = id(*cols, x, (y + 1) % *rows);
                            if y + 1 < *rows || *rows > 2 {
                                links.push(Link::new(here, north));
                                links.push(Link::new(north, here));
                            }
                        }
                    }
                }
            }
            TopologySpec::Honeycomb { cols, rows } => {
                for y in 0..*rows {
                    for x in 0..*cols {
                        let here = id(*cols, x, y);
                        if x + 1 < *cols {
                            let east = id(*cols, x + 1, y);
                            links.push(Link::new(here, east));
                            links.push(Link::new(east, here));
                        }
                        // Vertical link only on the "even" brick seams.
                        if y + 1 < *rows && (x + y) % 2 == 0 {
                            let north = id(*cols, x, y + 1);
                            links.push(Link::new(here, north));
                            links.push(Link::new(north, here));
                        }
                    }
                }
            }
            TopologySpec::Custom { links: l, .. } => links.extend(l.iter().copied()),
        }
        links.sort();
        links.dedup();
        links
    }
}

impl fmt::Display for TopologySpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologySpec::Mesh2d { cols, rows } => write!(f, "mesh-{cols}x{rows}"),
            TopologySpec::Torus2d { cols, rows } => write!(f, "torus-{cols}x{rows}"),
            TopologySpec::Honeycomb { cols, rows } => write!(f, "honeycomb-{cols}x{rows}"),
            TopologySpec::Custom { name, .. } => write!(f, "{name}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn degree_histogram(spec: &TopologySpec) -> Vec<usize> {
        let mut out_deg = vec![0usize; spec.tile_count()];
        for l in spec.links() {
            out_deg[l.src.index()] += 1;
        }
        out_deg
    }

    #[test]
    fn mesh_link_count() {
        // cols*(rows-1) + rows*(cols-1) undirected channels, x2 directed.
        let spec = TopologySpec::mesh(4, 4);
        assert_eq!(spec.links().len(), 2 * (4 * 3 + 4 * 3));
        assert_eq!(spec.coords().len(), 16);
    }

    #[test]
    fn mesh_corner_degree_is_two() {
        let deg = degree_histogram(&TopologySpec::mesh(3, 3));
        assert_eq!(deg[0], 2); // corner
        assert_eq!(deg[4], 4); // center
    }

    #[test]
    fn torus_every_tile_has_degree_four() {
        let deg = degree_histogram(&TopologySpec::torus(4, 4));
        assert!(deg.iter().all(|&d| d == 4));
    }

    #[test]
    fn torus_3x3_has_wrap_links() {
        let spec = TopologySpec::torus(3, 3);
        let links = spec.links();
        // Wrap link from (2,0)=tile2 to (0,0)=tile0 must exist.
        assert!(links.contains(&Link::new(TileId::new(2), TileId::new(0))));
    }

    #[test]
    fn torus_degenerate_dims_do_not_duplicate_links() {
        let spec = TopologySpec::torus(2, 2);
        let links = spec.links();
        let mut sorted = links.clone();
        sorted.dedup();
        assert_eq!(links.len(), sorted.len());
        // 2x2 torus with dedup == 2x2 mesh links.
        assert_eq!(links.len(), TopologySpec::mesh(2, 2).links().len());
    }

    #[test]
    fn honeycomb_degree_at_most_three() {
        let deg = degree_histogram(&TopologySpec::honeycomb(4, 4));
        assert!(
            deg.iter().all(|&d| d <= 3),
            "honeycomb degree must be <= 3, got {deg:?}"
        );
    }

    #[test]
    fn links_are_sorted_and_unique() {
        let links = TopologySpec::mesh(5, 3).links();
        let mut copy = links.clone();
        copy.sort();
        copy.dedup();
        assert_eq!(links, copy);
    }

    #[test]
    fn reversed_link_round_trips() {
        let l = Link::new(TileId::new(1), TileId::new(2));
        assert_eq!(l.reversed().reversed(), l);
        assert_eq!(l.to_string(), "1->2");
    }

    #[test]
    fn custom_topology_passes_links_through() {
        let spec = TopologySpec::Custom {
            coords: vec![Coord::new(0, 0), Coord::new(1, 0)],
            links: vec![
                Link::new(TileId::new(0), TileId::new(1)),
                Link::new(TileId::new(1), TileId::new(0)),
            ],
            name: "pair".into(),
        };
        assert_eq!(spec.tile_count(), 2);
        assert_eq!(spec.links().len(), 2);
        assert_eq!(spec.to_string(), "pair");
    }
}
