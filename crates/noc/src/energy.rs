//! The bit-energy model of the paper's Sec. 3.2.
//!
//! Following Ye et al. and Hu & Marculescu, the energy of moving one bit
//! through the network is
//!
//! ```text
//! E_bit = E_Sbit + E_Lbit                         (Eq. 1)
//! E_bit(t_i, t_j) = n_hops * E_Sbit + (n_hops - 1) * E_Lbit   (Eq. 2)
//! ```
//!
//! where `E_Sbit` is the energy of one bit through a router's switch
//! fabric, `E_Lbit` the energy of one bit over an inter-tile link, and
//! `n_hops` the number of *routers* the bit traverses. On a 2D mesh with
//! minimal routing `n_hops - 1` equals the Manhattan distance. The model
//! deliberately drops the congestion-coupled buffering energy `E_Bbit`
//! (buffers are registers), which is what makes it usable inside an
//! optimization loop.

use serde::{Deserialize, Serialize};

use crate::units::{Energy, Volume};

/// Bit-energy parameters of the communication network.
///
/// ```
/// use noc_platform::energy::EnergyModel;
/// use noc_platform::units::Volume;
///
/// let m = EnergyModel::date04();
/// // 3 links on the route => 4 routers.
/// let e = m.bit_energy_for_hops(3);
/// assert!(e > m.bit_energy_for_hops(1));
/// let total = m.transfer_energy(3, Volume::from_bits(1000));
/// assert!((total.as_nj() - e.as_nj() * 1000.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Energy for one bit through one router switch fabric, in nJ
    /// (`E_Sbit`).
    pub e_sbit: Energy,
    /// Energy for one bit over one inter-tile link, in nJ (`E_Lbit`).
    pub e_lbit: Energy,
    /// Average buffering energy per bit per router, in nJ (`E_Bbit`).
    ///
    /// The paper's Eq. 1 deliberately drops this term because its true
    /// value is congestion-coupled; the field defaults to zero and
    /// exists for sensitivity studies via
    /// [`with_buffering`](EnergyModel::with_buffering) — a constant
    /// average charge per router traversal, the same simplification
    /// Ye et al. use when they do include it.
    #[serde(default)]
    pub e_bbit: Energy,
}

impl EnergyModel {
    /// Creates a model from switch and link per-bit energies (no
    /// buffering term, as in the paper's Eq. 1).
    #[must_use]
    pub const fn new(e_sbit: Energy, e_lbit: Energy) -> Self {
        EnergyModel {
            e_sbit,
            e_lbit,
            e_bbit: Energy::ZERO,
        }
    }

    /// Adds an average buffering charge per bit per router traversal.
    #[must_use]
    pub const fn with_buffering(mut self, e_bbit: Energy) -> Self {
        self.e_bbit = e_bbit;
        self
    }

    /// Plausible 0.18um-era figures in the range used by the cited
    /// characterizations (Ye et al. DAC'02 report switch fabrics around a
    /// fraction of a nJ per bit at full width; we use per-bit figures of
    /// 4.9 pJ switch / 1.95 pJ link, which puts communication at the
    /// 5–15% share of application energy the paper's Sec. 6.2 numbers
    /// imply).
    #[must_use]
    pub fn date04() -> Self {
        EnergyModel::new(Energy::from_nj(0.0049), Energy::from_nj(0.00195))
    }

    /// Energy of one bit over a route with `links` link traversals
    /// (Eq. 2 with `n_hops = links + 1` routers).
    ///
    /// A local transfer (`links == 0`) still traverses the local switch
    /// once, costing `E_Sbit`.
    #[must_use]
    pub fn bit_energy_for_hops(&self, links: usize) -> Energy {
        let routers = links as f64 + 1.0;
        (self.e_sbit + self.e_bbit) * routers + self.e_lbit * links as f64
    }

    /// Total energy of transferring `volume` over a route with `links`
    /// link traversals.
    #[must_use]
    pub fn transfer_energy(&self, links: usize, volume: Volume) -> Energy {
        self.bit_energy_for_hops(links) * volume.as_f64()
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel::date04()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq2_matches_manual_expansion() {
        let m = EnergyModel::new(Energy::from_nj(2.0), Energy::from_nj(1.0));
        // 3 links => 4 routers: 4*2 + 3*1 = 11.
        assert!((m.bit_energy_for_hops(3).as_nj() - 11.0).abs() < 1e-12);
    }

    #[test]
    fn local_transfer_costs_one_switch_traversal() {
        let m = EnergyModel::new(Energy::from_nj(2.0), Energy::from_nj(1.0));
        assert!((m.bit_energy_for_hops(0).as_nj() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn energy_is_monotonic_in_distance() {
        let m = EnergyModel::date04();
        let mut last = Energy::ZERO;
        for links in 0..8 {
            let e = m.bit_energy_for_hops(links);
            assert!(e > last);
            last = e;
        }
    }

    #[test]
    fn transfer_energy_scales_linearly_with_volume() {
        let m = EnergyModel::date04();
        let e1 = m.transfer_energy(2, Volume::from_bits(100));
        let e2 = m.transfer_energy(2, Volume::from_bits(200));
        assert!((e2.as_nj() - 2.0 * e1.as_nj()).abs() < 1e-12);
    }

    #[test]
    fn zero_volume_transfer_is_free() {
        let m = EnergyModel::date04();
        assert_eq!(m.transfer_energy(5, Volume::ZERO), Energy::ZERO);
    }

    #[test]
    fn buffering_term_charges_per_router() {
        let base = EnergyModel::new(Energy::from_nj(2.0), Energy::from_nj(1.0));
        let buffered = base.with_buffering(Energy::from_nj(0.5));
        // 3 links => 4 routers: base 11, buffered 11 + 4*0.5 = 13.
        assert!((buffered.bit_energy_for_hops(3).as_nj() - 13.0).abs() < 1e-12);
        // Default models carry no buffering charge (Eq. 1).
        assert_eq!(EnergyModel::date04().e_bbit, Energy::ZERO);
    }

    #[test]
    fn buffered_model_serde_defaults() {
        // Old artifacts without e_bbit still deserialize.
        let json = r#"{"e_sbit": 2.0, "e_lbit": 1.0}"#;
        let m: EnergyModel = serde_json::from_str(json).expect("deserializes");
        assert_eq!(m.e_bbit, Energy::ZERO);
    }
}
