//! Tiles, coordinates and processing-element identities.
//!
//! Each tile of the NoC contains exactly one processing element (PE) and
//! one router, so tiles and PEs are in one-to-one correspondence. The
//! paper indexes tiles by `(row, col)`; we expose that via [`Coord`] while
//! using dense integer [`TileId`]s internally.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifies a tile (and therefore also its PE and its router) within a
/// platform. Ids are dense indices in `0..tile_count`.
///
/// ```
/// use noc_platform::tile::TileId;
/// let t = TileId::new(3);
/// assert_eq!(t.index(), 3);
/// assert_eq!(t.to_string(), "3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct TileId(u32);

impl TileId {
    /// Creates a tile id from a dense index.
    #[must_use]
    pub const fn new(index: u32) -> Self {
        TileId(index)
    }

    /// Returns the dense index as a `usize`, for slice indexing.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw `u32` index.
    #[must_use]
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for TileId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.0, f) // honours width/alignment flags
    }
}

impl From<u32> for TileId {
    fn from(index: u32) -> Self {
        TileId(index)
    }
}

/// A processing element identity. PEs and tiles correspond one-to-one, so
/// this is an alias-like newtype kept distinct for API clarity: scheduling
/// code talks about *PEs* (Def. 1's `R_i`/`E_i` arrays are indexed by PE),
/// routing code talks about *tiles*.
///
/// ```
/// use noc_platform::tile::{PeId, TileId};
/// let pe = PeId::from(TileId::new(2));
/// assert_eq!(pe.tile(), TileId::new(2));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct PeId(u32);

impl PeId {
    /// Creates a PE id from a dense index.
    #[must_use]
    pub const fn new(index: u32) -> Self {
        PeId(index)
    }

    /// Returns the dense index as a `usize`, for slice indexing.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// The tile hosting this PE.
    #[must_use]
    pub const fn tile(self) -> TileId {
        TileId(self.0)
    }
}

impl From<TileId> for PeId {
    fn from(t: TileId) -> Self {
        PeId(t.raw())
    }
}

impl From<PeId> for TileId {
    fn from(p: PeId) -> Self {
        p.tile()
    }
}

impl fmt::Display for PeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad(&format!("PE{}", self.0))
    }
}

/// A 2D grid coordinate `(x, y)` where `x` is the column and `y` the row,
/// matching the paper's Fig. 1 layout (tile `(row, col)` is written
/// `(y, x)` there).
///
/// ```
/// use noc_platform::tile::Coord;
/// let a = Coord::new(0, 0);
/// let b = Coord::new(3, 2);
/// assert_eq!(a.manhattan(b), 5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Coord {
    /// Column index.
    pub x: u16,
    /// Row index.
    pub y: u16,
}

impl Coord {
    /// Creates a coordinate from column `x` and row `y`.
    #[must_use]
    pub const fn new(x: u16, y: u16) -> Self {
        Coord { x, y }
    }

    /// Manhattan (L1) distance to `other`.
    #[must_use]
    pub fn manhattan(self, other: Coord) -> u32 {
        let dx = (i32::from(self.x) - i32::from(other.x)).unsigned_abs();
        let dy = (i32::from(self.y) - i32::from(other.y)).unsigned_abs();
        dx + dy
    }
}

impl fmt::Display for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{})", self.y, self.x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tile_pe_round_trip() {
        let t = TileId::new(7);
        let p = PeId::from(t);
        assert_eq!(TileId::from(p), t);
        assert_eq!(p.index(), 7);
        assert_eq!(p.to_string(), "PE7");
    }

    #[test]
    fn manhattan_is_symmetric_and_zero_on_diagonal() {
        let a = Coord::new(1, 4);
        let b = Coord::new(5, 0);
        assert_eq!(a.manhattan(b), b.manhattan(a));
        assert_eq!(a.manhattan(a), 0);
        assert_eq!(a.manhattan(b), 8);
    }

    #[test]
    fn coord_display_matches_paper_row_col_order() {
        // Paper writes tile (row, col); Coord stores x=col, y=row.
        assert_eq!(Coord::new(3, 2).to_string(), "(2,3)");
    }
}
