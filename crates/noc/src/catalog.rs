//! A parametric catalog of heterogeneous processing-element classes.
//!
//! The paper's platform mixes, e.g., "a DSP, a high performance
//! energy-hungry CPU, a low-power ARM processor" (Sec. 3.1). The authors'
//! exact power/performance characterization is not published, so this
//! module provides a parametric catalog with plausible 2004-era relative
//! figures. The scheduler consumes only the *relative* spread of
//! execution time and energy across PEs — the quantity that drives the
//! weights `W = VAR_e · VAR_r` of the EAS algorithm — so the catalog's
//! scalars set the scene without affecting the algorithmic behaviour
//! shapes (see `DESIGN.md` §4).

use serde::{Deserialize, Serialize};
use std::fmt;

/// A class of processing element with relative performance and energy
/// figures.
///
/// `speed_factor` scales execution *time* (lower is faster) and
/// `energy_factor` scales execution *energy* (lower is leaner), both
/// relative to a nominal reference PE of `1.0`/`1.0`. `affinity` biases
/// which task kinds the PE is good at (e.g. a DSP runs filter kernels
/// disproportionately fast).
///
/// ```
/// use noc_platform::catalog::PeClass;
/// let dsp = PeClass::dsp();
/// assert!(dsp.speed_factor < 1.0 || dsp.energy_factor < 1.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PeClass {
    /// Human-readable class name, e.g. `"dsp"`.
    pub name: String,
    /// Execution-time multiplier relative to the nominal PE (lower = faster).
    pub speed_factor: f64,
    /// Energy multiplier relative to the nominal PE (lower = leaner).
    pub energy_factor: f64,
    /// Affinity of the PE for "signal-processing-like" tasks in `0..=1`.
    /// Workload generators use it to skew per-task time/energy vectors:
    /// a task whose own DSP-affinity matches the PE's gets an extra
    /// speedup/energy discount.
    pub affinity: f64,
}

impl PeClass {
    /// Creates a PE class.
    ///
    /// # Panics
    ///
    /// Panics if any factor is non-positive or `affinity` is outside
    /// `0..=1`.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        speed_factor: f64,
        energy_factor: f64,
        affinity: f64,
    ) -> Self {
        assert!(speed_factor > 0.0, "speed factor must be positive");
        assert!(energy_factor > 0.0, "energy factor must be positive");
        assert!((0.0..=1.0).contains(&affinity), "affinity must be in 0..=1");
        PeClass {
            name: name.into(),
            speed_factor,
            energy_factor,
            affinity,
        }
    }

    /// A high-performance, energy-hungry general-purpose CPU
    /// (think early-2000s PowerPC-class core).
    #[must_use]
    pub fn fast_cpu() -> Self {
        PeClass::new("fast-cpu", 0.55, 1.6, 0.2)
    }

    /// A nominal mid-range embedded CPU: the `1.0`/`1.0` reference.
    #[must_use]
    pub fn mid_cpu() -> Self {
        PeClass::new("mid-cpu", 1.0, 1.0, 0.2)
    }

    /// A low-power ARM-class processor: slow but very lean.
    #[must_use]
    pub fn low_power() -> Self {
        PeClass::new("low-power", 1.8, 0.62, 0.1)
    }

    /// A DSP: much faster *and* leaner on signal-processing kernels,
    /// mediocre on control code.
    #[must_use]
    pub fn dsp() -> Self {
        PeClass::new("dsp", 0.8, 0.78, 0.95)
    }

    /// A fixed-function-like accelerator: extremely efficient on matching
    /// kernels, poor otherwise.
    #[must_use]
    pub fn accelerator() -> Self {
        PeClass::new("accel", 0.6, 0.45, 1.0)
    }
}

impl fmt::Display for PeClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (speed x{:.2}, energy x{:.2})",
            self.name, self.speed_factor, self.energy_factor
        )
    }
}

/// An ordered collection of [`PeClass`]es from which platform PE mixes
/// are drawn.
///
/// ```
/// use noc_platform::catalog::PeCatalog;
/// let cat = PeCatalog::date04();
/// let mix = cat.mix_for(16);
/// assert_eq!(mix.len(), 16);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PeCatalog {
    classes: Vec<PeClass>,
}

impl PeCatalog {
    /// Creates a catalog from the given classes.
    ///
    /// # Panics
    ///
    /// Panics if `classes` is empty.
    #[must_use]
    pub fn new(classes: Vec<PeClass>) -> Self {
        assert!(!classes.is_empty(), "catalog needs at least one PE class");
        PeCatalog { classes }
    }

    /// The heterogeneous mix evoked by the paper: fast CPU, mid CPU,
    /// low-power ARM-class core and DSP.
    #[must_use]
    pub fn date04() -> Self {
        PeCatalog::new(vec![
            PeClass::fast_cpu(),
            PeClass::mid_cpu(),
            PeClass::low_power(),
            PeClass::dsp(),
        ])
    }

    /// A homogeneous catalog of nominal CPUs (useful as an experimental
    /// control: with zero heterogeneity the EAS weights collapse).
    #[must_use]
    pub fn homogeneous() -> Self {
        PeCatalog::new(vec![PeClass::mid_cpu()])
    }

    /// The classes in catalog order.
    #[must_use]
    pub fn classes(&self) -> &[PeClass] {
        &self.classes
    }

    /// Number of classes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// `true` if the catalog has no classes (never, by construction).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }

    /// A mix that cycles through the catalog round-robin — suitable as a
    /// default assignment of classes to tiles.
    #[must_use]
    pub fn cycle_mix(&self) -> CycleMix<'_> {
        CycleMix { catalog: self }
    }

    /// Materializes a round-robin mix of exactly `tiles` PE classes.
    #[must_use]
    pub fn mix_for(&self, tiles: usize) -> Vec<PeClass> {
        (0..tiles)
            .map(|i| self.classes[i % self.classes.len()].clone())
            .collect()
    }
}

impl Default for PeCatalog {
    fn default() -> Self {
        PeCatalog::date04()
    }
}

/// A lazy round-robin view over a catalog, consumed by
/// [`crate::PlatformBuilder::pe_mix`].
#[derive(Debug, Clone, Copy)]
pub struct CycleMix<'a> {
    catalog: &'a PeCatalog,
}

impl CycleMix<'_> {
    /// Materializes the mix for a platform of `tiles` tiles.
    #[must_use]
    pub fn materialize(&self, tiles: usize) -> Vec<PeClass> {
        self.catalog.mix_for(tiles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn date04_catalog_is_heterogeneous() {
        let cat = PeCatalog::date04();
        assert!(cat.len() >= 3);
        let speeds: Vec<f64> = cat.classes().iter().map(|c| c.speed_factor).collect();
        let min = speeds.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = speeds.iter().cloned().fold(0.0, f64::max);
        assert!(max / min > 2.0, "catalog should span a wide speed range");
    }

    #[test]
    fn mix_for_cycles_round_robin() {
        let cat = PeCatalog::date04();
        let mix = cat.mix_for(9);
        assert_eq!(mix.len(), 9);
        assert_eq!(mix[0], mix[4]); // 4 classes => period 4
        assert_eq!(mix[1], mix[5]);
    }

    #[test]
    fn homogeneous_catalog_has_single_class() {
        let mix = PeCatalog::homogeneous().mix_for(4);
        assert!(mix.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    #[should_panic(expected = "speed factor")]
    fn rejects_non_positive_speed() {
        let _ = PeClass::new("bad", 0.0, 1.0, 0.5);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn rejects_empty_catalog() {
        let _ = PeCatalog::new(vec![]);
    }
}
