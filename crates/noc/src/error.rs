use std::error::Error;
use std::fmt;

use crate::tile::TileId;

/// Errors produced while assembling or querying a [`crate::Platform`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PlatformError {
    /// The topology has no tiles.
    EmptyTopology,
    /// A tile identifier is out of range for the platform.
    UnknownTile {
        /// The offending tile id.
        tile: TileId,
        /// Number of tiles in the platform.
        tile_count: usize,
    },
    /// The number of PE specifications does not match the tile count.
    PeCountMismatch {
        /// Tiles in the topology.
        tiles: usize,
        /// PE specifications supplied.
        pes: usize,
    },
    /// The requested routing algorithm cannot be used on the topology
    /// (e.g. XY routing on a honeycomb).
    IncompatibleRouting {
        /// Routing algorithm name.
        routing: &'static str,
        /// Topology name.
        topology: String,
    },
    /// A custom routing table is missing the route for a pair, or a listed
    /// route does not form a connected link path from source to
    /// destination.
    InvalidRoute {
        /// Source tile.
        src: TileId,
        /// Destination tile.
        dst: TileId,
        /// Human-readable cause.
        reason: String,
    },
    /// The topology is disconnected: no route exists between two tiles.
    Disconnected {
        /// Source tile.
        src: TileId,
        /// Destination tile.
        dst: TileId,
    },
    /// A non-positive link bandwidth was configured.
    InvalidBandwidth(f64),
    /// A fault specification is malformed or references a resource the
    /// platform does not have (see [`crate::fault::FaultSet`]).
    InvalidFaultSpec(String),
}

impl fmt::Display for PlatformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlatformError::EmptyTopology => write!(f, "topology has no tiles"),
            PlatformError::UnknownTile { tile, tile_count } => {
                write!(
                    f,
                    "tile {tile} out of range (platform has {tile_count} tiles)"
                )
            }
            PlatformError::PeCountMismatch { tiles, pes } => {
                write!(f, "{pes} PE specifications supplied for {tiles} tiles")
            }
            PlatformError::IncompatibleRouting { routing, topology } => {
                write!(
                    f,
                    "routing `{routing}` is not applicable to topology `{topology}`"
                )
            }
            PlatformError::InvalidRoute { src, dst, reason } => {
                write!(f, "invalid route {src} -> {dst}: {reason}")
            }
            PlatformError::Disconnected { src, dst } => {
                write!(f, "no route from tile {src} to tile {dst}")
            }
            PlatformError::InvalidBandwidth(b) => {
                write!(f, "link bandwidth must be positive, got {b}")
            }
            PlatformError::InvalidFaultSpec(reason) => {
                write!(f, "invalid fault specification: {reason}")
            }
        }
    }
}

impl Error for PlatformError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = PlatformError::UnknownTile {
            tile: TileId::new(9),
            tile_count: 4,
        };
        let msg = e.to_string();
        assert!(msg.contains("tile 9"));
        assert!(msg.contains('4'));
        let e = PlatformError::InvalidBandwidth(0.0);
        assert!(e.to_string().contains("positive"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<T: std::error::Error + Send + Sync + 'static>() {}
        assert_bounds::<PlatformError>();
    }
}
