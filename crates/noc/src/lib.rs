//! # noc-platform
//!
//! Tile-based Network-on-Chip (NoC) platform model used by the `noc-eas`
//! energy-aware scheduler, reproducing the platform of Hu & Marculescu,
//! *"Energy-Aware Communication and Task Scheduling for Network-on-Chip
//! Architectures under Real-Time Constraints"* (DATE 2004).
//!
//! The platform is a set of tiles, each containing a (possibly
//! heterogeneous) processing element and a router, interconnected by
//! directed links. The crate provides:
//!
//! * [`units`] — newtyped time/energy/volume quantities,
//! * [`tile`] — tiles, coordinates and processing-element specifications,
//! * [`catalog`] — a parametric catalog of heterogeneous PE classes,
//! * [`topology`] — 2D mesh, 2D torus and honeycomb tile topologies,
//! * [`routing`] — deterministic routing (XY, YX, shortest-path, custom),
//! * [`fault`] — permanent tile/link fault sets with fault-aware rerouting,
//! * [`energy`] — the bit-energy model `E_bit = E_Sbit + E_Lbit` (Eq. 1–2),
//! * [`platform`] — the assembled [`Platform`], the crate's main entry
//!   point, which precomputes the Architecture Characterization Graph
//!   (ACG, Def. 2 of the paper): per source/destination pair the route,
//!   the energy-per-bit `e(r_ij)` and the bandwidth `b(r_ij)`.
//!
//! # Example
//!
//! ```
//! use noc_platform::prelude::*;
//!
//! # fn main() -> Result<(), noc_platform::PlatformError> {
//! // A 4x4 heterogeneous mesh with XY routing, as in the paper's Sec. 6.1.
//! let platform = Platform::builder()
//!     .topology(TopologySpec::mesh(4, 4))
//!     .routing(RoutingSpec::Xy)
//!     .pe_mix(PeCatalog::date04().cycle_mix())
//!     .build()?;
//!
//! assert_eq!(platform.tile_count(), 16);
//! let a = TileId::new(0);
//! let b = TileId::new(15);
//! // Manhattan distance 6 => 7 routers, 6 links on the XY route.
//! assert_eq!(platform.route(a, b).len(), 6);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
pub mod energy;
mod error;
pub mod fault;
pub mod platform;
pub mod routing;
pub mod tile;
pub mod topology;
pub mod units;

pub use error::PlatformError;
pub use platform::{Platform, PlatformBuilder};

/// Convenient glob import of the most commonly used platform types.
pub mod prelude {
    pub use crate::catalog::{PeCatalog, PeClass};
    pub use crate::energy::EnergyModel;
    pub use crate::fault::FaultSet;
    pub use crate::platform::{Platform, PlatformBuilder};
    pub use crate::routing::{LinkId, RoutingSpec};
    pub use crate::tile::{Coord, PeId, TileId};
    pub use crate::topology::TopologySpec;
    pub use crate::units::{Energy, Time, Volume};
    pub use crate::PlatformError;
}
