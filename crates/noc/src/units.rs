//! Newtyped physical quantities used throughout the workspace.
//!
//! The paper reports times in abstract "time units" and energies in nJ.
//! We follow the same convention: [`Time`] is an integer tick count
//! (interpreted as nanoseconds in the experiments) and [`Energy`] is a
//! floating-point nanojoule amount.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in (or span of) discrete schedule time, in ticks.
///
/// Ticks are dimensionless in the library; the experiment harness
/// interprets them as nanoseconds. `Time` is kept integral so schedule
/// tables are exact and comparisons are total.
///
/// ```
/// use noc_platform::units::Time;
/// let t = Time::new(100) + Time::new(20);
/// assert_eq!(t, Time::new(120));
/// assert!(t > Time::ZERO);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Time(u64);

impl Time {
    /// The origin of schedule time.
    pub const ZERO: Time = Time(0);
    /// A time later than any schedulable event; used for "no deadline".
    pub const INFINITY: Time = Time(u64::MAX);

    /// Creates a time from a raw tick count.
    #[must_use]
    pub const fn new(ticks: u64) -> Self {
        Time(ticks)
    }

    /// Returns the raw tick count.
    #[must_use]
    pub const fn ticks(self) -> u64 {
        self.0
    }

    /// Returns `true` if this is the [`Time::INFINITY`] sentinel.
    #[must_use]
    pub const fn is_infinite(self) -> bool {
        self.0 == u64::MAX
    }

    /// Saturating addition; `INFINITY` absorbs.
    #[must_use]
    pub const fn saturating_add(self, rhs: Time) -> Time {
        Time(self.0.saturating_add(rhs.0))
    }

    /// Saturating subtraction, clamping at zero.
    #[must_use]
    pub const fn saturating_sub(self, rhs: Time) -> Time {
        Time(self.0.saturating_sub(rhs.0))
    }

    /// Checked subtraction: `None` if `rhs > self`.
    #[must_use]
    pub const fn checked_sub(self, rhs: Time) -> Option<Time> {
        match self.0.checked_sub(rhs.0) {
            Some(v) => Some(Time(v)),
            None => None,
        }
    }

    /// The larger of `self` and `other`.
    #[must_use]
    pub fn max(self, other: Time) -> Time {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// The smaller of `self` and `other`.
    #[must_use]
    pub fn min(self, other: Time) -> Time {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Lossy conversion to `f64` ticks (for statistics).
    #[must_use]
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }
}

impl Add for Time {
    type Output = Time;
    fn add(self, rhs: Time) -> Time {
        Time(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for Time {
    fn add_assign(&mut self, rhs: Time) {
        *self = *self + rhs;
    }
}

impl Sub for Time {
    type Output = Time;
    /// # Panics
    /// Panics in debug builds if `rhs > self`.
    fn sub(self, rhs: Time) -> Time {
        debug_assert!(self.0 >= rhs.0, "time underflow: {self} - {rhs}");
        Time(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for Time {
    fn sub_assign(&mut self, rhs: Time) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for Time {
    type Output = Time;
    fn mul(self, rhs: u64) -> Time {
        Time(self.0.saturating_mul(rhs))
    }
}

impl Sum for Time {
    fn sum<I: Iterator<Item = Time>>(iter: I) -> Time {
        iter.fold(Time::ZERO, Add::add)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_infinite() {
            f.pad("inf")
        } else {
            fmt::Display::fmt(&self.0, f) // honours width/alignment flags
        }
    }
}

impl From<u64> for Time {
    fn from(ticks: u64) -> Self {
        Time(ticks)
    }
}

/// An amount of energy, in nanojoules.
///
/// ```
/// use noc_platform::units::Energy;
/// let e = Energy::from_nj(1.5) + Energy::from_nj(0.5);
/// assert_eq!(e.as_nj(), 2.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Energy(f64);

impl Energy {
    /// Zero energy.
    pub const ZERO: Energy = Energy(0.0);

    /// Creates an energy amount from nanojoules.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `nj` is negative or not finite.
    #[must_use]
    pub fn from_nj(nj: f64) -> Self {
        debug_assert!(nj.is_finite() && nj >= 0.0, "invalid energy: {nj}");
        Energy(nj)
    }

    /// Returns the amount in nanojoules.
    #[must_use]
    pub const fn as_nj(self) -> f64 {
        self.0
    }

    /// The larger of `self` and `other`.
    #[must_use]
    pub fn max(self, other: Energy) -> Energy {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }
}

impl Add for Energy {
    type Output = Energy;
    fn add(self, rhs: Energy) -> Energy {
        Energy(self.0 + rhs.0)
    }
}

impl AddAssign for Energy {
    fn add_assign(&mut self, rhs: Energy) {
        self.0 += rhs.0;
    }
}

impl Sub for Energy {
    type Output = Energy;
    fn sub(self, rhs: Energy) -> Energy {
        Energy(self.0 - rhs.0)
    }
}

impl Mul<f64> for Energy {
    type Output = Energy;
    fn mul(self, rhs: f64) -> Energy {
        Energy(self.0 * rhs)
    }
}

impl Div<f64> for Energy {
    type Output = Energy;
    fn div(self, rhs: f64) -> Energy {
        Energy(self.0 / rhs)
    }
}

impl Sum for Energy {
    fn sum<I: Iterator<Item = Energy>>(iter: I) -> Energy {
        iter.fold(Energy::ZERO, Add::add)
    }
}

impl fmt::Display for Energy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} nJ", self.0)
    }
}

/// A communication volume, in bits (the `v(c_ij)` of Def. 1).
///
/// ```
/// use noc_platform::units::Volume;
/// let v = Volume::from_bits(1024);
/// assert_eq!(v.bits(), 1024);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Volume(u64);

impl Volume {
    /// Zero bits.
    pub const ZERO: Volume = Volume(0);

    /// Creates a volume from a bit count.
    #[must_use]
    pub const fn from_bits(bits: u64) -> Self {
        Volume(bits)
    }

    /// Returns the bit count.
    #[must_use]
    pub const fn bits(self) -> u64 {
        self.0
    }

    /// `true` if the volume carries no data (a pure control dependency).
    #[must_use]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Lossy conversion to `f64` bits.
    #[must_use]
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }
}

impl Add for Volume {
    type Output = Volume;
    fn add(self, rhs: Volume) -> Volume {
        Volume(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for Volume {
    fn add_assign(&mut self, rhs: Volume) {
        *self = *self + rhs;
    }
}

impl Sum for Volume {
    fn sum<I: Iterator<Item = Volume>>(iter: I) -> Volume {
        iter.fold(Volume::ZERO, Add::add)
    }
}

impl fmt::Display for Volume {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} bits", self.0)
    }
}

impl From<u64> for Volume {
    fn from(bits: u64) -> Self {
        Volume(bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_saturates_at_infinity() {
        let t = Time::INFINITY + Time::new(5);
        assert!(t.is_infinite());
        assert_eq!(Time::INFINITY.saturating_add(Time::new(1)), Time::INFINITY);
    }

    #[test]
    fn time_subtraction_and_ordering() {
        let a = Time::new(100);
        let b = Time::new(40);
        assert_eq!(a - b, Time::new(60));
        assert_eq!(b.saturating_sub(a), Time::ZERO);
        assert_eq!(b.checked_sub(a), None);
        assert_eq!(a.checked_sub(b), Some(Time::new(60)));
        assert!(a > b);
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
    }

    #[test]
    fn time_sum_and_display() {
        let total: Time = [1u64, 2, 3].into_iter().map(Time::new).sum();
        assert_eq!(total, Time::new(6));
        assert_eq!(Time::new(7).to_string(), "7");
        assert_eq!(Time::INFINITY.to_string(), "inf");
    }

    #[test]
    fn energy_arithmetic() {
        let e = Energy::from_nj(2.0) * 3.0 + Energy::from_nj(1.0);
        assert!((e.as_nj() - 7.0).abs() < 1e-12);
        let total: Energy = [1.0, 2.5].into_iter().map(Energy::from_nj).sum();
        assert!((total.as_nj() - 3.5).abs() < 1e-12);
        assert_eq!(Energy::from_nj(1.0).max(Energy::from_nj(2.0)).as_nj(), 2.0);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "invalid energy")]
    fn energy_rejects_negative() {
        let _ = Energy::from_nj(-1.0);
    }

    #[test]
    fn volume_basics() {
        let v = Volume::from_bits(10) + Volume::from_bits(20);
        assert_eq!(v.bits(), 30);
        assert!(!v.is_zero());
        assert!(Volume::ZERO.is_zero());
        assert_eq!(v.to_string(), "30 bits");
    }

    #[test]
    fn infinity_ordering_and_multiplication() {
        assert!(Time::INFINITY > Time::new(u64::MAX - 1));
        assert!((Time::INFINITY * 2).is_infinite());
        assert_eq!(
            Time::INFINITY.saturating_sub(Time::new(5)),
            Time::new(u64::MAX - 5)
        );
        assert!(!Time::new(0).is_infinite());
    }

    #[test]
    fn display_honours_width() {
        assert_eq!(format!("{:>6}", Time::new(42)), "    42");
        assert_eq!(format!("{:<5}", Time::INFINITY), "inf  ");
    }

    #[test]
    fn serde_round_trips_are_transparent() {
        let t: Time = serde_json::from_str("42").expect("time");
        assert_eq!(t, Time::new(42));
        assert_eq!(serde_json::to_string(&Volume::from_bits(9)).unwrap(), "9");
    }
}
