//! Deterministic routing algorithms.
//!
//! The paper uses dimension-ordered XY routing on the 2D mesh "for the
//! sake of simplicity" and notes the algorithm works with any
//! *deterministic* routing scheme (Sec. 3.1, Sec. 7). Accordingly this
//! module provides XY and YX dimension-ordered routing for meshes and
//! tori, a deterministic breadth-first shortest-path router for arbitrary
//! topologies (honeycomb, custom), and fully explicit routing tables.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

use crate::fault::FaultSet;
use crate::tile::{Coord, TileId};
use crate::topology::{Link, TopologySpec};
use crate::PlatformError;

/// Identifies a directed link within a platform. Ids are dense indices in
/// `0..link_count`, assigned in the sorted order of
/// [`TopologySpec::links`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct LinkId(u32);

impl LinkId {
    /// Creates a link id from a dense index.
    #[must_use]
    pub const fn new(index: u32) -> Self {
        LinkId(index)
    }

    /// Returns the dense index as a `usize`, for slice indexing.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad(&format!("L{}", self.0)) // honours width/alignment flags
    }
}

/// Declarative routing algorithm selection.
///
/// ```
/// use noc_platform::routing::RoutingSpec;
/// assert_eq!(RoutingSpec::Xy.name(), "xy");
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
#[non_exhaustive]
pub enum RoutingSpec {
    /// Dimension-ordered: route along X (columns) first, then Y. The
    /// paper's choice. Applicable to meshes and tori.
    #[default]
    Xy,
    /// Dimension-ordered: Y first, then X. Applicable to meshes and tori.
    Yx,
    /// Deterministic breadth-first shortest path (smallest-next-tile tie
    /// break). Applicable to any connected topology.
    ShortestPath,
    /// A fully explicit routing table: for every ordered pair of distinct
    /// tiles, the tile-by-tile path (including both endpoints).
    Table(RoutingTable),
}

impl RoutingSpec {
    /// Short algorithm name for reports.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            RoutingSpec::Xy => "xy",
            RoutingSpec::Yx => "yx",
            RoutingSpec::ShortestPath => "shortest-path",
            RoutingSpec::Table(_) => "table",
        }
    }
}

/// An explicit routing table mapping ordered tile pairs to tile paths.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct RoutingTable {
    paths: HashMap<(TileId, TileId), Vec<TileId>>,
}

impl RoutingTable {
    /// Creates an empty table.
    #[must_use]
    pub fn new() -> Self {
        RoutingTable::default()
    }

    /// Registers the path (both endpoints included) for `src -> dst`.
    pub fn insert(&mut self, src: TileId, dst: TileId, path: Vec<TileId>) {
        self.paths.insert((src, dst), path);
    }

    /// Looks up the path for `src -> dst`.
    #[must_use]
    pub fn get(&self, src: TileId, dst: TileId) -> Option<&[TileId]> {
        self.paths.get(&(src, dst)).map(Vec::as_slice)
    }

    /// Number of registered pairs.
    #[must_use]
    pub fn len(&self) -> usize {
        self.paths.len()
    }

    /// `true` if no pair is registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.paths.is_empty()
    }
}

/// Computes, for every ordered pair `(src, dst)` of distinct tiles, the
/// route as a sequence of [`LinkId`]s.
///
/// Returns a dense `routes[src][dst]` matrix with empty routes on the
/// diagonal (local communication does not enter the network).
///
/// # Errors
///
/// * [`PlatformError::IncompatibleRouting`] if a dimension-ordered
///   algorithm is requested on a non-grid topology,
/// * [`PlatformError::Disconnected`] if no path exists for some pair,
/// * [`PlatformError::InvalidRoute`] if an explicit table entry is
///   missing or does not follow existing links.
#[allow(clippy::needless_range_loop)] // routes[s][d] is clearest with dual indices
pub fn compute_routes(
    topology: &TopologySpec,
    routing: &RoutingSpec,
    coords: &[Coord],
    links: &[Link],
) -> Result<Vec<Vec<Vec<LinkId>>>, PlatformError> {
    let n = coords.len();
    let link_index: HashMap<Link, LinkId> = links
        .iter()
        .enumerate()
        .map(|(i, l)| (*l, LinkId::new(i as u32)))
        .collect();

    let tile_path_to_links =
        |src: TileId, dst: TileId, path: &[TileId]| path_to_links(src, dst, path, &link_index);

    let mut routes: Vec<Vec<Vec<LinkId>>> = vec![vec![Vec::new(); n]; n];

    match routing {
        RoutingSpec::Xy | RoutingSpec::Yx => {
            let (cols, rows, wrap) = match topology {
                TopologySpec::Mesh2d { cols, rows } => (*cols, *rows, false),
                TopologySpec::Torus2d { cols, rows } => (*cols, *rows, true),
                other => {
                    return Err(PlatformError::IncompatibleRouting {
                        routing: routing.name(),
                        topology: other.to_string(),
                    })
                }
            };
            let x_first = matches!(routing, RoutingSpec::Xy);
            for s in 0..n {
                for d in 0..n {
                    if s == d {
                        continue;
                    }
                    let src = TileId::new(s as u32);
                    let dst = TileId::new(d as u32);
                    let path =
                        dimension_ordered_path(coords[s], coords[d], cols, rows, wrap, x_first);
                    routes[s][d] = tile_path_to_links(src, dst, &path)?;
                }
            }
        }
        RoutingSpec::ShortestPath => {
            let mut adjacency: Vec<Vec<TileId>> = vec![Vec::new(); n];
            for l in links {
                adjacency[l.src.index()].push(l.dst);
            }
            for adj in &mut adjacency {
                adj.sort();
            }
            for s in 0..n {
                let parents = bfs_parents(TileId::new(s as u32), &adjacency);
                for d in 0..n {
                    if s == d {
                        continue;
                    }
                    let src = TileId::new(s as u32);
                    let dst = TileId::new(d as u32);
                    let path = reconstruct_path(src, dst, &parents)
                        .ok_or(PlatformError::Disconnected { src, dst })?;
                    routes[s][d] = tile_path_to_links(src, dst, &path)?;
                }
            }
        }
        RoutingSpec::Table(table) => {
            for s in 0..n {
                for d in 0..n {
                    if s == d {
                        continue;
                    }
                    let src = TileId::new(s as u32);
                    let dst = TileId::new(d as u32);
                    let path = table
                        .get(src, dst)
                        .ok_or_else(|| PlatformError::InvalidRoute {
                            src,
                            dst,
                            reason: "missing routing table entry".into(),
                        })?;
                    routes[s][d] = tile_path_to_links(src, dst, path)?;
                }
            }
        }
    }
    Ok(routes)
}

/// Converts a tile-by-tile path into link ids, validating endpoints and
/// link existence.
fn path_to_links(
    src: TileId,
    dst: TileId,
    path: &[TileId],
    link_index: &HashMap<Link, LinkId>,
) -> Result<Vec<LinkId>, PlatformError> {
    if path.first() != Some(&src) || path.last() != Some(&dst) {
        return Err(PlatformError::InvalidRoute {
            src,
            dst,
            reason: "path endpoints do not match the pair".into(),
        });
    }
    path.windows(2)
        .map(|w| {
            link_index
                .get(&Link::new(w[0], w[1]))
                .copied()
                .ok_or_else(|| PlatformError::InvalidRoute {
                    src,
                    dst,
                    reason: format!("no link {} -> {}", w[0], w[1]),
                })
        })
        .collect()
}

/// Like [`compute_routes`], but detours around the resources listed in
/// `faults`.
///
/// Pairs whose primary route (dimension-ordered path or table entry)
/// survives the faults keep it unchanged. Severed pairs fall back to a
/// per-pair detour computed on the residual (fault-free) graph: on
/// meshes a **west-first turn-model** path is preferred (deadlock-free
/// under wormhole routing), with a plain deterministic shortest path as
/// the last resort when the turn model cannot reach the destination.
/// Pairs involving a failed tile keep an empty route: a dead tile hosts
/// no tasks, so no traffic may originate or terminate there (schedulers
/// mask such PEs; [`crate::Platform::tile_alive`] exposes the mask).
///
/// # Errors
///
/// Everything [`compute_routes`] returns, plus
/// [`PlatformError::Disconnected`] when two *alive* tiles have no
/// residual path between them.
#[allow(clippy::needless_range_loop)] // routes[s][d] is clearest with dual indices
pub fn compute_routes_with_faults(
    topology: &TopologySpec,
    routing: &RoutingSpec,
    coords: &[Coord],
    links: &[Link],
    faults: &FaultSet,
) -> Result<Vec<Vec<Vec<LinkId>>>, PlatformError> {
    if faults.is_empty() {
        return compute_routes(topology, routing, coords, links);
    }
    let n = coords.len();
    let link_index: HashMap<Link, LinkId> = links
        .iter()
        .enumerate()
        .map(|(i, l)| (*l, LinkId::new(i as u32)))
        .collect();

    // Residual adjacency: only links usable despite the faults.
    let mut adjacency: Vec<Vec<TileId>> = vec![Vec::new(); n];
    for l in links {
        if !faults.blocks_link(*l) {
            adjacency[l.src.index()].push(l.dst);
        }
    }
    for adj in &mut adjacency {
        adj.sort();
    }

    let grid = match topology {
        TopologySpec::Mesh2d { cols, rows } => Some((*cols, *rows, false)),
        TopologySpec::Torus2d { cols, rows } => Some((*cols, *rows, true)),
        _ => None,
    };
    if matches!(routing, RoutingSpec::Xy | RoutingSpec::Yx) && grid.is_none() {
        return Err(PlatformError::IncompatibleRouting {
            routing: routing.name(),
            topology: topology.to_string(),
        });
    }
    let path_alive = |path: &[TileId]| {
        path.windows(2)
            .all(|w| !faults.blocks_link(Link::new(w[0], w[1])))
    };

    let mut routes: Vec<Vec<Vec<LinkId>>> = vec![vec![Vec::new(); n]; n];
    for s in 0..n {
        let src = TileId::new(s as u32);
        if faults.tile_failed(src) {
            continue;
        }
        let parents = bfs_parents(src, &adjacency);
        for d in 0..n {
            if s == d {
                continue;
            }
            let dst = TileId::new(d as u32);
            if faults.tile_failed(dst) {
                continue;
            }
            let primary: Option<Vec<TileId>> = match routing {
                RoutingSpec::Xy | RoutingSpec::Yx => {
                    let (cols, rows, wrap) = grid.expect("grids checked above");
                    let x_first = matches!(routing, RoutingSpec::Xy);
                    Some(dimension_ordered_path(
                        coords[s], coords[d], cols, rows, wrap, x_first,
                    ))
                }
                RoutingSpec::ShortestPath => None,
                RoutingSpec::Table(table) => Some(
                    table
                        .get(src, dst)
                        .ok_or_else(|| PlatformError::InvalidRoute {
                            src,
                            dst,
                            reason: "missing routing table entry".into(),
                        })?
                        .to_vec(),
                ),
            };
            let path = match primary {
                Some(p) if path_alive(&p) => p,
                _ => {
                    let turn_model = match grid {
                        Some((_, _, false)) => west_first_path(src, dst, coords, &adjacency),
                        _ => None,
                    };
                    match turn_model {
                        Some(p) => p,
                        None => reconstruct_path(src, dst, &parents)
                            .ok_or(PlatformError::Disconnected { src, dst })?,
                    }
                }
            };
            routes[s][d] = path_to_links(src, dst, &path, &link_index)?;
        }
    }
    Ok(routes)
}

/// West-first turn-model path on a mesh: every westward hop must precede
/// the first non-westward hop, which keeps the fallback routes
/// deadlock-free under wormhole switching (Glass & Ni). Breadth-first
/// over `(tile, phase)` states with sorted neighbour order, so the
/// result is deterministic and hop-minimal among west-first paths.
/// Returns `None` when no west-first path survives the faults.
fn west_first_path(
    src: TileId,
    dst: TileId,
    coords: &[Coord],
    adjacency: &[Vec<TileId>],
) -> Option<Vec<TileId>> {
    let n = adjacency.len();
    // State: tile * 2 + phase. Phase 0: westward hops still allowed.
    let state = |t: TileId, phase: usize| t.index() * 2 + phase;
    let mut parent: Vec<Option<usize>> = vec![None; 2 * n];
    let mut visited = vec![false; 2 * n];
    let start = state(src, 0);
    visited[start] = true;
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(start);
    let mut goal = None;
    'bfs: while let Some(cur) = queue.pop_front() {
        let (tile, phase) = (TileId::new((cur / 2) as u32), cur % 2);
        for &next in &adjacency[tile.index()] {
            let west = coords[next.index()].x < coords[tile.index()].x;
            let next_phase = if west {
                if phase == 1 {
                    continue; // no west turns after leaving phase 0
                }
                0
            } else {
                1
            };
            let ns = state(next, next_phase);
            if visited[ns] {
                continue;
            }
            visited[ns] = true;
            parent[ns] = Some(cur);
            if next == dst {
                goal = Some(ns);
                break 'bfs; // BFS: first arrival is hop-minimal
            }
            queue.push_back(ns);
        }
    }
    let mut cur = goal?;
    let mut rev = vec![TileId::new((cur / 2) as u32)];
    while let Some(p) = parent[cur] {
        cur = p;
        rev.push(TileId::new((cur / 2) as u32));
    }
    rev.reverse();
    Some(rev)
}

/// Dimension-ordered path on a (possibly wrapping) grid, as tile ids.
fn dimension_ordered_path(
    from: Coord,
    to: Coord,
    cols: u16,
    rows: u16,
    wrap: bool,
    x_first: bool,
) -> Vec<TileId> {
    let id = |x: u16, y: u16| TileId::new(u32::from(y) * u32::from(cols) + u32::from(x));
    let mut path = vec![id(from.x, from.y)];
    let (mut x, mut y) = (from.x, from.y);

    let step_axis = |cur: u16, target: u16, len: u16| -> u16 {
        if cur == target {
            return cur;
        }
        if !wrap {
            return if target > cur { cur + 1 } else { cur - 1 };
        }
        // On a torus take the shorter wrap direction; ties go "up".
        let fwd = (target + len - cur) % len; // steps going +1 mod len
        let bwd = (cur + len - target) % len;
        if fwd <= bwd {
            (cur + 1) % len
        } else {
            (cur + len - 1) % len
        }
    };

    if x_first {
        while x != to.x {
            x = step_axis(x, to.x, cols);
            path.push(id(x, y));
        }
        while y != to.y {
            y = step_axis(y, to.y, rows);
            path.push(id(x, y));
        }
    } else {
        while y != to.y {
            y = step_axis(y, to.y, rows);
            path.push(id(x, y));
        }
        while x != to.x {
            x = step_axis(x, to.x, cols);
            path.push(id(x, y));
        }
    }
    path
}

/// Breadth-first parents with smallest-neighbour tie break (deterministic).
fn bfs_parents(src: TileId, adjacency: &[Vec<TileId>]) -> Vec<Option<TileId>> {
    let n = adjacency.len();
    let mut parents: Vec<Option<TileId>> = vec![None; n];
    let mut visited = vec![false; n];
    visited[src.index()] = true;
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(src);
    while let Some(t) = queue.pop_front() {
        for &next in &adjacency[t.index()] {
            if !visited[next.index()] {
                visited[next.index()] = true;
                parents[next.index()] = Some(t);
                queue.push_back(next);
            }
        }
    }
    parents
}

fn reconstruct_path(src: TileId, dst: TileId, parents: &[Option<TileId>]) -> Option<Vec<TileId>> {
    let mut rev = vec![dst];
    let mut cur = dst;
    while cur != src {
        cur = parents[cur.index()]?;
        rev.push(cur);
    }
    rev.reverse();
    Some(rev)
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // dual-index matrix checks read best as loops
mod tests {
    use super::*;

    fn mesh_routes(cols: u16, rows: u16, spec: RoutingSpec) -> Vec<Vec<Vec<LinkId>>> {
        let topo = TopologySpec::mesh(cols, rows);
        let coords = topo.coords();
        let links = topo.links();
        compute_routes(&topo, &spec, &coords, &links).expect("routes")
    }

    #[test]
    fn xy_route_length_is_manhattan_distance() {
        let topo = TopologySpec::mesh(4, 4);
        let coords = topo.coords();
        let routes = mesh_routes(4, 4, RoutingSpec::Xy);
        for s in 0..16 {
            for d in 0..16 {
                assert_eq!(
                    routes[s][d].len() as u32,
                    coords[s].manhattan(coords[d]),
                    "pair {s}->{d}"
                );
            }
        }
    }

    #[test]
    fn xy_goes_horizontal_first() {
        // On a 4x4 mesh from tile 0 (0,0) to tile 5 (1,1): XY passes tile 1,
        // YX passes tile 4.
        let topo = TopologySpec::mesh(4, 4);
        let coords = topo.coords();
        let links = topo.links();
        let xy = compute_routes(&topo, &RoutingSpec::Xy, &coords, &links).unwrap();
        let yx = compute_routes(&topo, &RoutingSpec::Yx, &coords, &links).unwrap();
        let first_link = |routes: &Vec<Vec<Vec<LinkId>>>| links[routes[0][5][0].index()];
        assert_eq!(first_link(&xy).dst, TileId::new(1));
        assert_eq!(first_link(&yx).dst, TileId::new(4));
    }

    #[test]
    fn routes_are_empty_on_diagonal() {
        let routes = mesh_routes(3, 3, RoutingSpec::Xy);
        for s in 0..9 {
            assert!(routes[s][s].is_empty());
        }
    }

    #[test]
    fn torus_uses_wraparound_when_shorter() {
        let topo = TopologySpec::torus(4, 1);
        let coords = topo.coords();
        let links = topo.links();
        let routes = compute_routes(&topo, &RoutingSpec::Xy, &coords, &links).unwrap();
        // 0 -> 3 should be one hop via the wrap link, not three hops.
        assert_eq!(routes[0][3].len(), 1);
    }

    #[test]
    fn shortest_path_matches_xy_length_on_mesh() {
        let topo = TopologySpec::mesh(4, 3);
        let coords = topo.coords();
        let links = topo.links();
        let sp = compute_routes(&topo, &RoutingSpec::ShortestPath, &coords, &links).unwrap();
        let xy = compute_routes(&topo, &RoutingSpec::Xy, &coords, &links).unwrap();
        for s in 0..12 {
            for d in 0..12 {
                assert_eq!(sp[s][d].len(), xy[s][d].len(), "pair {s}->{d}");
            }
        }
    }

    #[test]
    fn shortest_path_routes_honeycomb() {
        let topo = TopologySpec::honeycomb(4, 4);
        let coords = topo.coords();
        let links = topo.links();
        let routes = compute_routes(&topo, &RoutingSpec::ShortestPath, &coords, &links)
            .expect("honeycomb should be connected");
        // Honeycomb detours: route length >= Manhattan distance.
        for s in 0..16 {
            for d in 0..16 {
                assert!(routes[s][d].len() as u32 >= coords[s].manhattan(coords[d]));
            }
        }
    }

    #[test]
    fn xy_on_honeycomb_is_rejected() {
        let topo = TopologySpec::honeycomb(4, 4);
        let coords = topo.coords();
        let links = topo.links();
        let err = compute_routes(&topo, &RoutingSpec::Xy, &coords, &links).unwrap_err();
        assert!(matches!(err, PlatformError::IncompatibleRouting { .. }));
    }

    #[test]
    fn table_routing_validates_entries() {
        let topo = TopologySpec::mesh(2, 1);
        let coords = topo.coords();
        let links = topo.links();
        let mut table = RoutingTable::new();
        table.insert(
            TileId::new(0),
            TileId::new(1),
            vec![TileId::new(0), TileId::new(1)],
        );
        // Missing 1 -> 0 entry.
        let err =
            compute_routes(&topo, &RoutingSpec::Table(table.clone()), &coords, &links).unwrap_err();
        assert!(matches!(err, PlatformError::InvalidRoute { .. }));
        table.insert(
            TileId::new(1),
            TileId::new(0),
            vec![TileId::new(1), TileId::new(0)],
        );
        let routes = compute_routes(&topo, &RoutingSpec::Table(table), &coords, &links).unwrap();
        assert_eq!(routes[0][1].len(), 1);
        assert_eq!(routes[1][0].len(), 1);
    }

    #[test]
    fn table_routing_rejects_disconnected_path() {
        let topo = TopologySpec::mesh(3, 1);
        let coords = topo.coords();
        let links = topo.links();
        let mut table = RoutingTable::new();
        // Claims a direct 0 -> 2 link which does not exist.
        table.insert(
            TileId::new(0),
            TileId::new(2),
            vec![TileId::new(0), TileId::new(2)],
        );
        let err = compute_routes(&topo, &RoutingSpec::Table(table), &coords, &links).unwrap_err();
        assert!(matches!(err, PlatformError::InvalidRoute { .. }));
    }

    #[test]
    fn empty_fault_set_reproduces_plain_routes() {
        let topo = TopologySpec::mesh(4, 4);
        let coords = topo.coords();
        let links = topo.links();
        let plain = compute_routes(&topo, &RoutingSpec::Xy, &coords, &links).unwrap();
        let faulted =
            compute_routes_with_faults(&topo, &RoutingSpec::Xy, &coords, &links, &FaultSet::new())
                .unwrap();
        assert_eq!(plain, faulted);
    }

    #[test]
    fn unaffected_pairs_keep_their_xy_route() {
        let topo = TopologySpec::mesh(4, 4);
        let coords = topo.coords();
        let links = topo.links();
        let plain = compute_routes(&topo, &RoutingSpec::Xy, &coords, &links).unwrap();
        // Kill the 0-1 channel: only routes crossing it may change.
        let faults = FaultSet::parse("link:0-1").unwrap();
        let faulted =
            compute_routes_with_faults(&topo, &RoutingSpec::Xy, &coords, &links, &faults).unwrap();
        let crosses = |route: &[LinkId]| {
            route.iter().any(|l| {
                let link = links[l.index()];
                faults.blocks_link(link)
            })
        };
        for s in 0..16 {
            for d in 0..16 {
                if !crosses(&plain[s][d]) {
                    assert_eq!(plain[s][d], faulted[s][d], "pair {s}->{d} must not change");
                }
                assert!(!crosses(&faulted[s][d]), "pair {s}->{d} uses a dead link");
            }
        }
    }

    #[test]
    fn severed_pair_detours_around_dead_link() {
        let topo = TopologySpec::mesh(4, 4);
        let coords = topo.coords();
        let links = topo.links();
        let faults = FaultSet::parse("link:0-1").unwrap();
        let routes =
            compute_routes_with_faults(&topo, &RoutingSpec::Xy, &coords, &links, &faults).unwrap();
        // 0 -> 1 must still be reachable, now via a detour (> 1 hop).
        assert!(routes[0][1].len() > 1);
        let first = links[routes[0][1][0].index()];
        assert_eq!(first.src, TileId::new(0));
    }

    #[test]
    fn dead_tile_pairs_have_empty_routes() {
        let topo = TopologySpec::mesh(3, 3);
        let coords = topo.coords();
        let links = topo.links();
        let faults = FaultSet::parse("tile:4").unwrap(); // mesh centre
        let routes =
            compute_routes_with_faults(&topo, &RoutingSpec::Xy, &coords, &links, &faults).unwrap();
        for d in 0..9 {
            assert!(routes[4][d].is_empty());
            assert!(routes[d][4].is_empty());
        }
        // Alive pairs previously routed through the centre detour around it.
        assert!(!routes[3][5].is_empty());
        for l in &routes[3][5] {
            let link = links[l.index()];
            assert_ne!(link.src, TileId::new(4));
            assert_ne!(link.dst, TileId::new(4));
        }
    }

    #[test]
    fn disconnected_alive_pair_is_a_typed_error() {
        // 3x1 line: killing the middle tile disconnects 0 from 2.
        let topo = TopologySpec::mesh(3, 1);
        let coords = topo.coords();
        let links = topo.links();
        let faults = FaultSet::parse("tile:1").unwrap();
        let err = compute_routes_with_faults(&topo, &RoutingSpec::Xy, &coords, &links, &faults)
            .unwrap_err();
        assert!(matches!(err, PlatformError::Disconnected { .. }));
    }

    #[test]
    fn fault_detours_are_deterministic() {
        let topo = TopologySpec::mesh(4, 4);
        let coords = topo.coords();
        let links = topo.links();
        let faults = FaultSet::parse("tile:5,link:2-6").unwrap();
        let a =
            compute_routes_with_faults(&topo, &RoutingSpec::Xy, &coords, &links, &faults).unwrap();
        let b =
            compute_routes_with_faults(&topo, &RoutingSpec::Xy, &coords, &links, &faults).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn west_first_detour_keeps_west_hops_first() {
        // Kill 1-2 on the top row of a 4x4 mesh: the XY route 1 -> 3 is
        // severed and must detour; whatever path is chosen, all westward
        // hops (x decreasing) must precede the first non-westward hop.
        let topo = TopologySpec::mesh(4, 4);
        let coords = topo.coords();
        let links = topo.links();
        let faults = FaultSet::parse("link:1-2").unwrap();
        let routes =
            compute_routes_with_faults(&topo, &RoutingSpec::Xy, &coords, &links, &faults).unwrap();
        let route = &routes[1][3];
        assert!(route.len() > 2, "detour expected, got {route:?}");
        let mut seen_non_west = false;
        for l in route {
            let link = links[l.index()];
            let west = coords[link.dst.index()].x < coords[link.src.index()].x;
            if west {
                assert!(!seen_non_west, "westward hop after a non-west hop");
            } else {
                seen_non_west = true;
            }
        }
    }

    #[test]
    fn bfs_is_deterministic() {
        let topo = TopologySpec::mesh(4, 4);
        let coords = topo.coords();
        let links = topo.links();
        let a = compute_routes(&topo, &RoutingSpec::ShortestPath, &coords, &links).unwrap();
        let b = compute_routes(&topo, &RoutingSpec::ShortestPath, &coords, &links).unwrap();
        assert_eq!(a, b);
    }
}
