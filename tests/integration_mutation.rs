//! Failure injection: corrupt valid schedules in every structured way
//! and assert the validator rejects each corruption — the validator is
//! the safety net every scheduler relies on, so its discrimination power
//! is itself under test.

use noc_ctg::prelude::*;
use noc_eas::prelude::*;
use noc_platform::prelude::*;
use noc_schedule::{validate, CommPlacement, Schedule, ScheduleError, TaskPlacement};

fn fixture() -> (Platform, TaskGraph, Schedule) {
    let platform = Platform::builder()
        .topology(TopologySpec::mesh(4, 4))
        .pe_mix(PeCatalog::date04().cycle_mix())
        .build()
        .expect("mesh builds");
    let graph = TgffGenerator::new(TgffConfig::small(13))
        .generate(&platform)
        .expect("generates");
    let outcome = EasScheduler::full()
        .schedule(&graph, &platform)
        .expect("schedules");
    (platform, graph, outcome.schedule)
}

/// Picks the first remote data transaction of the schedule.
fn first_remote_edge(graph: &TaskGraph, schedule: &Schedule) -> Option<noc_ctg::edge::EdgeId> {
    graph.edge_ids().find(|&e| !schedule.comm(e).is_local())
}

fn rebuild_with_task(schedule: &Schedule, idx: usize, placement: TaskPlacement) -> Schedule {
    let mut tasks = schedule.task_placements().to_vec();
    tasks[idx] = placement;
    Schedule::new(tasks, schedule.comm_placements().to_vec())
}

fn rebuild_with_comm(schedule: &Schedule, idx: usize, comm: CommPlacement) -> Schedule {
    let mut comms = schedule.comm_placements().to_vec();
    comms[idx] = comm;
    Schedule::new(schedule.task_placements().to_vec(), comms)
}

/// The annealer's output must survive the same validator as everything
/// else (its random moves are only accepted via exact re-timing).
#[test]
fn annealed_schedules_survive_validation() {
    let (platform, graph, _) = fixture();
    let annealer = noc_eas::prelude::AnnealScheduler::new(noc_eas::prelude::AnnealConfig {
        iterations: 300,
        ..Default::default()
    });
    let outcome = annealer.schedule(&graph, &platform).expect("anneals");
    validate(&outcome.schedule, &graph, &platform).expect("valid after annealing");
}

#[test]
fn baseline_fixture_is_valid() {
    let (platform, graph, schedule) = fixture();
    validate(&schedule, &graph, &platform).expect("fixture must be valid");
}

#[test]
fn shifting_a_consumer_before_its_input_is_caught() {
    let (platform, graph, schedule) = fixture();
    let e = first_remote_edge(&graph, &schedule).expect("remote edge exists");
    let dst = graph.edge(e).dst;
    let p = *schedule.task(dst);
    // Pull the consumer to start at the transaction's start (before its
    // finish): a dependency violation (or an overlap, whichever triggers
    // first — both are rejections).
    let hacked = rebuild_with_task(
        &schedule,
        dst.index(),
        TaskPlacement::new(
            p.pe,
            schedule.comm(e).start,
            schedule.comm(e).start + (p.finish - p.start),
        ),
    );
    assert!(validate(&hacked, &graph, &platform).is_err());
}

#[test]
fn corrupting_task_duration_is_caught() {
    let (platform, graph, schedule) = fixture();
    let p = *schedule.task(noc_ctg::task::TaskId::new(0));
    let hacked = rebuild_with_task(
        &schedule,
        0,
        TaskPlacement::new(p.pe, p.start, p.finish + noc_platform::units::Time::new(1)),
    );
    assert!(matches!(
        validate(&hacked, &graph, &platform),
        Err(ScheduleError::InconsistentTaskTiming(_))
    ));
}

#[test]
fn moving_a_task_without_rerouting_is_caught() {
    let (platform, graph, schedule) = fixture();
    let e = first_remote_edge(&graph, &schedule).expect("remote edge exists");
    let src = graph.edge(e).src;
    let p = *schedule.task(src);
    // Teleport the producer to another PE without updating the
    // transaction's route.
    let new_pe = PeId::new((p.pe.index() as u32 + 1) % platform.tile_count() as u32);
    let exec = graph.task(src).exec_time(new_pe);
    let hacked = rebuild_with_task(
        &schedule,
        src.index(),
        TaskPlacement::new(new_pe, p.start, p.start + exec),
    );
    assert!(validate(&hacked, &graph, &platform).is_err());
}

#[test]
fn shrinking_a_transaction_is_caught() {
    let (platform, graph, schedule) = fixture();
    let e = first_remote_edge(&graph, &schedule).expect("remote edge exists");
    let c = schedule.comm(e).clone();
    let hacked = rebuild_with_comm(
        &schedule,
        e.index(),
        CommPlacement::new(
            c.route.clone(),
            c.start,
            c.finish - noc_platform::units::Time::new(1),
        ),
    );
    assert!(matches!(
        validate(&hacked, &graph, &platform),
        Err(ScheduleError::InconsistentTransactionTiming(_))
    ));
}

#[test]
fn emptying_a_remote_route_is_caught() {
    let (platform, graph, schedule) = fixture();
    let e = first_remote_edge(&graph, &schedule).expect("remote edge exists");
    let c = schedule.comm(e).clone();
    let hacked = rebuild_with_comm(
        &schedule,
        e.index(),
        CommPlacement::new(Vec::new(), c.start, c.finish),
    );
    assert!(matches!(
        validate(&hacked, &graph, &platform),
        Err(ScheduleError::RouteMismatch(_))
    ));
}

#[test]
fn double_booking_a_pe_is_caught() {
    let (platform, graph, schedule) = fixture();
    // Move task 1 onto task 0's PE at the same start time (durations
    // recomputed so per-task timing stays internally consistent).
    let p0 = *schedule.task(noc_ctg::task::TaskId::new(0));
    let t1 = noc_ctg::task::TaskId::new(1);
    let exec = graph.task(t1).exec_time(p0.pe);
    let hacked = rebuild_with_task(
        &schedule,
        1,
        TaskPlacement::new(p0.pe, p0.start, p0.start + exec),
    );
    assert!(validate(&hacked, &graph, &platform).is_err());
}

#[test]
fn truncating_the_schedule_is_caught() {
    let (platform, graph, schedule) = fixture();
    let tasks = schedule.task_placements()[..graph.task_count() - 1].to_vec();
    let hacked = Schedule::new(tasks, schedule.comm_placements().to_vec());
    assert!(matches!(
        validate(&hacked, &graph, &platform),
        Err(ScheduleError::ShapeMismatch { .. })
    ));
}

#[test]
fn overlapping_two_transactions_is_caught() {
    let (platform, graph, schedule) = fixture();
    // Find two remote transactions sharing at least one link and force
    // the second onto the first's window.
    let remotes: Vec<_> = graph
        .edge_ids()
        .filter(|&e| !schedule.comm(e).is_local())
        .collect();
    let mut pair = None;
    'outer: for (i, &a) in remotes.iter().enumerate() {
        for &b in &remotes[i + 1..] {
            let ra = &schedule.comm(a).route;
            let rb = &schedule.comm(b).route;
            if ra.iter().any(|l| rb.contains(l)) {
                pair = Some((a, b));
                break 'outer;
            }
        }
    }
    let Some((a, b)) = pair else {
        return; // the mapping avoided shared links entirely: nothing to corrupt
    };
    let ca = schedule.comm(a).clone();
    let cb = schedule.comm(b).clone();
    let dur = cb.finish - cb.start;
    let hacked = rebuild_with_comm(
        &schedule,
        b.index(),
        CommPlacement::new(cb.route, ca.start, ca.start + dur),
    );
    // The producer/consumer timing of b may now also be violated; any
    // rejection is acceptable, but silence is not.
    assert!(validate(&hacked, &graph, &platform).is_err());
}
