//! Trace determinism tests: the JSONL event stream is byte-identical
//! for every worker-thread count, the exporters carry every pipeline
//! stage, and the summary's counters agree with the raw events.

use noc_ctg::prelude::*;
use noc_eas::prelude::*;
use noc_eas::trace::{to_chrome_trace, to_jsonl, EventKind};
use noc_platform::prelude::*;

fn platform() -> Platform {
    Platform::builder()
        .topology(TopologySpec::mesh(4, 4))
        .pe_mix(PeCatalog::date04().cycle_mix())
        .build()
        .expect("mesh builds")
}

fn workload(seed: u64, tasks: usize) -> TaskGraph {
    let mut cfg = TgffConfig::small(seed);
    cfg.task_count = tasks;
    TgffGenerator::new(cfg)
        .generate(&platform())
        .expect("generates")
}

/// Runs a traced schedule with `threads` workers and returns the JSONL
/// export of its logical-timestamp event stream.
fn jsonl_for(graph: &TaskGraph, platform: &Platform, threads: usize) -> String {
    let scheduler = EasScheduler::new(EasConfig::default().with_threads(threads));
    let mut sink = BufferSink::new();
    scheduler
        .schedule_traced(graph, platform, &ComputeBudget::unlimited(), &mut sink)
        .expect("schedules");
    to_jsonl(sink.events())
}

#[test]
fn jsonl_streams_are_identical_for_every_thread_count() {
    let platform = platform();
    for seed in [7, 42, 1999] {
        let graph = workload(seed, 24);
        let serial = jsonl_for(&graph, &platform, 1);
        for threads in [2, 4] {
            let parallel = jsonl_for(&graph, &platform, threads);
            assert_eq!(
                serial, parallel,
                "seed {seed}: trace with {threads} threads diverges from serial"
            );
        }
        assert!(
            serial.lines().count() > graph.task_count(),
            "seed {seed}: the trace narrates at least one event per task"
        );
    }
}

#[test]
fn exports_carry_every_pipeline_stage() {
    let platform = platform();
    let graph = workload(3, 20);
    let scheduler = EasScheduler::full();
    let mut sink = BufferSink::new();
    scheduler
        .schedule_traced(&graph, &platform, &ComputeBudget::unlimited(), &mut sink)
        .expect("schedules");

    let chrome = to_chrome_trace(sink.events());
    for span in [
        "budgeting",
        "level",
        "level:0",
        "comm",
        "repair",
        "validate",
    ] {
        assert!(
            chrome.contains(&format!("\"{span}\"")),
            "chrome export must contain the {span} span"
        );
    }
    let jsonl = to_jsonl(sink.events());
    for kind in ["task_budget", "trial", "select", "span_begin", "span_end"] {
        assert!(
            jsonl.contains(&format!("\"type\":\"{kind}\"")),
            "jsonl export must contain {kind} events"
        );
    }
}

#[test]
fn summary_counters_agree_with_the_raw_events() {
    let platform = platform();
    let graph = workload(11, 24);
    let mut sink = BufferSink::new();
    EasScheduler::full()
        .schedule_traced(&graph, &platform, &ComputeBudget::unlimited(), &mut sink)
        .expect("schedules");

    let summary = TraceSummary::from_events(sink.events());
    let count = |pred: &dyn Fn(&EventKind) -> bool| {
        sink.events().iter().filter(|e| pred(&e.kind)).count() as u64
    };
    assert_eq!(
        summary.trials,
        count(&|k| matches!(k, EventKind::Trial { .. }))
    );
    assert_eq!(
        count(&|k| matches!(k, EventKind::Select { .. })),
        graph.task_count() as u64,
        "exactly one placement decision per task"
    );
    assert_eq!(
        summary.comm_transactions,
        count(&|k| matches!(k, EventKind::CommReserve { .. }))
    );
    assert!(
        summary.cache_hits <= summary.trials,
        "cache hits are a subset of trials"
    );
    assert!(
        summary.stage_micros.is_empty(),
        "logical-only traces carry no wall-clock durations"
    );
}

#[test]
fn annealing_runs_trace_the_refinement_chains() {
    let platform = platform();
    let graph = workload(5, 16);
    let scheduler = AnnealScheduler::default();
    let mut sink = BufferSink::new();
    let traced = scheduler
        .schedule_traced(&graph, &platform, &ComputeBudget::unlimited(), &mut sink)
        .expect("schedules");
    let plain = scheduler.schedule(&graph, &platform).expect("schedules");
    assert_eq!(
        traced.schedule, plain.schedule,
        "tracing must not perturb the annealer"
    );
    let chrome = to_chrome_trace(sink.events());
    assert!(chrome.contains("\"anneal\""), "anneal span present");
    assert!(
        sink.events()
            .iter()
            .any(|e| matches!(e.kind, EventKind::AnnealChain { .. })),
        "per-chain events present"
    );
}
