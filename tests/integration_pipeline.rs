//! End-to-end pipeline integration: platform -> CTG -> scheduler ->
//! validated schedule, across topologies, schedulers and workloads.

use noc_ctg::prelude::*;
use noc_eas::prelude::*;
use noc_platform::prelude::*;
use noc_schedule::{validate, ScheduleStats};

fn mesh(cols: u16, rows: u16) -> Platform {
    Platform::builder()
        .topology(TopologySpec::mesh(cols, rows))
        .pe_mix(PeCatalog::date04().cycle_mix())
        .build()
        .expect("mesh builds")
}

#[test]
fn all_schedulers_produce_valid_schedules_on_random_graphs() {
    let platform = mesh(4, 4);
    let eas_base = EasScheduler::base();
    let eas = EasScheduler::full();
    let edf = EdfScheduler::new();
    for seed in 0..5u64 {
        let graph = TgffGenerator::new(TgffConfig::small(seed))
            .generate(&platform)
            .expect("generates");
        for scheduler in [&eas_base as &dyn Scheduler, &eas, &edf] {
            let outcome = scheduler.schedule(&graph, &platform).expect("schedules");
            // Independent re-validation of the artifact.
            let report =
                validate(&outcome.schedule, &graph, &platform).expect("structurally valid");
            assert_eq!(report, outcome.report, "seed {seed} {}", scheduler.name());
        }
    }
}

#[test]
fn eas_energy_never_exceeds_edf_on_benchmarks() {
    let platform = mesh(4, 4);
    let eas = EasScheduler::full();
    let edf = EdfScheduler::new();
    for seed in 0..5u64 {
        let graph = TgffGenerator::new(TgffConfig::small(seed))
            .generate(&platform)
            .expect("generates");
        let e = eas.schedule(&graph, &platform).expect("eas");
        let d = edf.schedule(&graph, &platform).expect("edf");
        assert!(
            e.stats.energy.total().as_nj() <= d.stats.energy.total().as_nj() * 1.001,
            "seed {seed}: EAS {} vs EDF {}",
            e.stats.energy.total(),
            d.stats.energy.total()
        );
    }
}

#[test]
fn scheduling_is_deterministic() {
    let platform = mesh(4, 4);
    let graph = TgffGenerator::new(TgffConfig::small(3))
        .generate(&platform)
        .expect("generates");
    let a = EasScheduler::full().schedule(&graph, &platform).expect("a");
    let b = EasScheduler::full().schedule(&graph, &platform).expect("b");
    assert_eq!(a.schedule, b.schedule);
    let a = EdfScheduler::new().schedule(&graph, &platform).expect("a");
    let b = EdfScheduler::new().schedule(&graph, &platform).expect("b");
    assert_eq!(a.schedule, b.schedule);
}

#[test]
fn multimedia_apps_schedule_on_their_paper_platforms() {
    for (app, mesh_dims) in [
        (MultimediaApp::AvEncoder, (2, 2)),
        (MultimediaApp::AvDecoder, (2, 2)),
        (MultimediaApp::AvIntegrated, (3, 3)),
    ] {
        let platform = mesh(mesh_dims.0, mesh_dims.1);
        for clip in Clip::all() {
            let graph = app.build(clip, &platform).expect("builds");
            let outcome = EasScheduler::full()
                .schedule(&graph, &platform)
                .expect("schedules");
            assert!(
                outcome.report.meets_deadlines(),
                "{app} {clip}: misses {:?}",
                outcome.report.deadline_misses
            );
        }
    }
}

#[test]
fn eas_works_on_torus_and_honeycomb() {
    for (topology, routing) in [
        (TopologySpec::torus(4, 4), RoutingSpec::Xy),
        (TopologySpec::honeycomb(4, 4), RoutingSpec::ShortestPath),
        (TopologySpec::mesh(4, 4), RoutingSpec::Yx),
    ] {
        let platform = Platform::builder()
            .topology(topology.clone())
            .routing(routing)
            .build()
            .expect("builds");
        let graph = TgffGenerator::new(TgffConfig::small(1))
            .generate(&platform)
            .expect("generates");
        let outcome = EasScheduler::full()
            .schedule(&graph, &platform)
            .expect("schedules");
        validate(&outcome.schedule, &graph, &platform).expect("valid");
    }
}

#[test]
fn search_and_repair_fixes_base_misses_with_small_energy_cost() {
    let platform = mesh(4, 4);
    let mut fixed_any = false;
    for seed in 0..12u64 {
        let mut cfg = TgffConfig::small(seed);
        cfg.deadline_laxity = 0.95; // provoke misses
        let graph = TgffGenerator::new(cfg)
            .generate(&platform)
            .expect("generates");
        let base = EasScheduler::base()
            .schedule(&graph, &platform)
            .expect("base");
        let full = EasScheduler::full()
            .schedule(&graph, &platform)
            .expect("full");
        assert!(
            full.report.deadline_misses.len() <= base.report.deadline_misses.len(),
            "seed {seed}"
        );
        if !base.report.meets_deadlines() && full.report.meets_deadlines() {
            fixed_any = true;
            // Paper: "negligible increase in the energy consumption".
            let increase = full.stats.energy.total().as_nj() / base.stats.energy.total().as_nj();
            assert!(increase < 1.25, "seed {seed}: repair cost {increase}");
        }
    }
    assert!(
        fixed_any,
        "expected at least one repaired benchmark in the sweep"
    );
}

#[test]
fn stats_energy_split_adds_up() {
    let platform = mesh(2, 2);
    let graph = MultimediaApp::AvEncoder
        .build(Clip::Foreman, &platform)
        .expect("builds");
    let outcome = EasScheduler::full()
        .schedule(&graph, &platform)
        .expect("schedules");
    let stats = ScheduleStats::compute(&outcome.schedule, &graph, &platform);
    let total = stats.energy.computation + stats.energy.communication;
    assert!((total.as_nj() - stats.energy.total().as_nj()).abs() < 1e-9);
    assert!(stats.energy.computation.as_nj() > 0.0);
    assert!(stats.energy.communication.as_nj() > 0.0);
}

#[test]
fn graph_platform_mismatch_is_surfaced() {
    let p22 = mesh(2, 2);
    let p33 = mesh(3, 3);
    let graph = MultimediaApp::AvEncoder
        .build(Clip::Akiyo, &p22)
        .expect("builds");
    assert!(matches!(
        EasScheduler::full().schedule(&graph, &p33),
        Err(SchedulerError::PeCountMismatch {
            graph: 4,
            platform: 9
        })
    ));
}
