//! Cross-validation of static schedules against the flit-level wormhole
//! simulator: schedules produced by the schedulers must execute without
//! structural surprises, and the slippage must stay within the known
//! abstraction gap (pipeline-fill latency).

use noc_ctg::prelude::*;
use noc_eas::prelude::*;
use noc_platform::prelude::*;
use noc_sim::prelude::*;

fn mesh(cols: u16, rows: u16) -> Platform {
    Platform::builder()
        .topology(TopologySpec::mesh(cols, rows))
        .pe_mix(PeCatalog::date04().cycle_mix())
        .build()
        .expect("mesh builds")
}

/// The static model omits per-hop pipeline fill (`links - 1` ticks per
/// transfer) and may order link grants differently than FIFO
/// arbitration; slip accumulates along dependency chains but stays small
/// relative to transfer durations.
#[test]
fn multimedia_schedules_execute_with_bounded_slip() {
    for (app, dims) in [
        (MultimediaApp::AvEncoder, (2u16, 2u16)),
        (MultimediaApp::AvDecoder, (2, 2)),
        (MultimediaApp::AvIntegrated, (3, 3)),
    ] {
        let platform = mesh(dims.0, dims.1);
        for clip in Clip::all() {
            let graph = app.build(clip, &platform).expect("builds");
            let outcome = EasScheduler::full()
                .schedule(&graph, &platform)
                .expect("schedules");
            let trace = ScheduleExecutor::new(&graph, &platform, SimConfig::default())
                .execute(&outcome.schedule)
                .expect("executes");
            let worst = trace
                .slippage_vs(&outcome.schedule)
                .into_iter()
                .max()
                .unwrap_or(Time::ZERO);
            // Bound: edges * pipeline fill of the longest route.
            let bound = (graph.edge_count() as u64) * 8;
            assert!(
                worst.ticks() <= bound,
                "{app} {clip}: worst slip {worst} exceeds {bound}"
            );
        }
    }
}

#[test]
fn random_schedules_execute_to_completion() {
    let platform = mesh(4, 4);
    for seed in 0..3u64 {
        let graph = TgffGenerator::new(TgffConfig::small(seed))
            .generate(&platform)
            .expect("generates");
        for scheduler in [
            &EasScheduler::full() as &dyn Scheduler,
            &EdfScheduler::new(),
        ] {
            let outcome = scheduler.schedule(&graph, &platform).expect("schedules");
            let trace = ScheduleExecutor::new(&graph, &platform, SimConfig::default())
                .execute(&outcome.schedule)
                .expect("executes");
            assert!(trace.makespan >= outcome.report.makespan.saturating_sub(Time::new(1)));
            // Every task starts no earlier than statically planned
            // relative to its inputs is *not* guaranteed (dynamic can be
            // faster when arbitration differs), but finishes must be
            // positive and ordered per dependency.
            for e in graph.edge_ids() {
                let edge = graph.edge(e);
                assert!(
                    trace.start[edge.dst.index()] >= trace.finish[edge.src.index()],
                    "seed {seed}: dependency {e} violated dynamically"
                );
            }
        }
    }
}

#[test]
fn simulator_agrees_with_static_model_on_contention_free_single_hops() {
    // A two-task remote chain over one link: static and dynamic timings
    // must agree exactly (the abstraction gap is zero for 1-link routes).
    let platform = mesh(2, 2);
    let mut b = TaskGraph::builder("exact", 4);
    let synth = noc_ctg::costs::CostSynthesizer::new(platform.pe_classes());
    let (t1, e1) = synth.vectors(100.0, 0.5);
    let (t2, e2) = synth.vectors(100.0, 0.5);
    let a = b.add_task(Task::new("a", t1, e1));
    let c = b.add_task(Task::new("c", t2, e2));
    b.add_edge(a, c, Volume::from_bits(640)).expect("edge");
    let graph = b.build().expect("builds");
    let outcome = EasScheduler::full()
        .schedule(&graph, &platform)
        .expect("schedules");
    let trace = ScheduleExecutor::new(&graph, &platform, SimConfig::default())
        .execute(&outcome.schedule)
        .expect("executes");
    let hops = platform.hop_links(
        outcome.schedule.task(a).pe.tile(),
        outcome.schedule.task(c).pe.tile(),
    );
    if hops <= 1 {
        assert_eq!(trace.finish[c.index()], outcome.schedule.task(c).finish);
    } else {
        // Multi-hop: slip exactly the pipeline fill.
        assert_eq!(
            trace.finish[c.index()],
            outcome.schedule.task(c).finish + Time::new(hops as u64 - 1)
        );
    }
}

#[test]
fn dynamic_execution_preserves_deadlines_for_multimedia_eas() {
    // The headline claim survives execution: EAS schedules of the paper
    // workloads stay deadline-clean even with pipeline-fill slippage.
    let platform = mesh(2, 2);
    let graph = MultimediaApp::AvEncoder
        .build(Clip::Foreman, &platform)
        .expect("builds");
    let outcome = EasScheduler::full()
        .schedule(&graph, &platform)
        .expect("schedules");
    let trace = ScheduleExecutor::new(&graph, &platform, SimConfig::default())
        .execute(&outcome.schedule)
        .expect("executes");
    assert!(
        trace.meets_deadlines(),
        "dynamic misses: {:?}",
        trace.deadline_misses
    );
}

#[test]
fn network_stats_reflect_traffic() {
    let platform = mesh(4, 4);
    let graph = TgffGenerator::new(TgffConfig::small(2))
        .generate(&platform)
        .expect("generates");
    let outcome = EasScheduler::full()
        .schedule(&graph, &platform)
        .expect("schedules");
    let mut sim = NetworkSim::new(&platform, SimConfig::default());
    let mut remote = 0usize;
    for e in graph.edge_ids() {
        let edge = graph.edge(e);
        let src = outcome.schedule.task(edge.src).pe.tile();
        let dst = outcome.schedule.task(edge.dst).pe.tile();
        if src != dst && !edge.volume.is_zero() {
            sim.inject_on(
                &platform,
                Message::new(src, dst, edge.volume, outcome.schedule.comm(e).start),
            );
            remote += 1;
        }
    }
    if remote == 0 {
        return; // fully local mapping: nothing to stream
    }
    sim.run_until_idle();
    let busy: u64 = sim.link_busy_ticks().iter().sum();
    assert!(busy > 0, "remote traffic must use links");
}
