//! Property-based tests for compute budgets and cooperative
//! cancellation: an interrupted run must be *clean* — it reports a
//! typed error, corrupts nothing, and a subsequent unlimited run on the
//! very same scheduler reproduces the reference schedule exactly.

use proptest::prelude::*;

use noc_ctg::prelude::*;
use noc_eas::prelude::*;
use noc_platform::prelude::*;
use noc_schedule::validate;

fn platform() -> Platform {
    Platform::builder()
        .topology(TopologySpec::mesh(3, 3))
        .pe_mix(PeCatalog::date04().cycle_mix())
        .build()
        .expect("mesh builds")
}

/// Strategy: a small random CTG configuration.
fn tgff_config() -> impl Strategy<Value = TgffConfig> {
    (0u64..1_000, 8usize..32, 1.2f64..3.0).prop_map(|(seed, task_count, laxity)| {
        let mut cfg = TgffConfig::small(seed);
        cfg.task_count = task_count;
        cfg.deadline_laxity = laxity;
        cfg.width = (task_count / 4).max(2);
        cfg
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A step budget either lets the search finish with a valid
    /// schedule or fails with the typed exhaustion error — and either
    /// way the same scheduler afterwards reproduces the reference
    /// schedule byte for byte, so an interrupt leaves no residue.
    #[test]
    fn step_budgets_interrupt_cleanly(cfg in tgff_config(), steps in 0u64..5_000) {
        let platform = platform();
        let graph = TgffGenerator::new(cfg).generate(&platform).expect("generates");
        let scheduler = EasScheduler::full();
        let reference = scheduler.schedule(&graph, &platform).expect("schedules");

        match scheduler.schedule_with_budget(&graph, &platform, &ComputeBudget::steps(steps)) {
            Ok(outcome) => {
                prop_assert!(validate(&outcome.schedule, &graph, &platform).is_ok());
                prop_assert_eq!(
                    &outcome.schedule, &reference.schedule,
                    "a budget that suffices must not change the result"
                );
            }
            Err(SchedulerError::BudgetExhausted(cause)) => {
                prop_assert_eq!(cause, Interrupt::Steps);
            }
            Err(other) => prop_assert!(false, "unexpected error: {other}"),
        }

        // The interrupted (or finished) scheduler is still pristine.
        let again = scheduler
            .schedule_with_budget(&graph, &platform, &ComputeBudget::unlimited())
            .expect("unlimited budget always finishes");
        prop_assert_eq!(again.schedule, reference.schedule);
    }

    /// A token cancelled before the call interrupts every scheduler
    /// immediately, as the dedicated `Interrupted` error.
    #[test]
    fn pre_cancelled_tokens_interrupt_immediately(cfg in tgff_config()) {
        let platform = platform();
        let graph = TgffGenerator::new(cfg).generate(&platform).expect("generates");
        let token = CancelToken::new();
        token.cancel();
        let budget = ComputeBudget::unlimited().with_cancel(token);
        let result = EasScheduler::full().schedule_with_budget(&graph, &platform, &budget);
        prop_assert!(
            matches!(result, Err(SchedulerError::Interrupted)),
            "got {result:?}"
        );
    }
}
