//! Delta-scheduling integration tests: per-edit-kind mask computation,
//! every forced fallback-to-full-reschedule path, and property tests
//! that `repair_from` on random edit sequences always validates and is
//! byte-identical across thread counts.

use std::collections::BTreeSet;

use proptest::prelude::*;

use noc_ctg::prelude::*;
use noc_eas::delta::{
    REASON_EDIT_STORM, REASON_NO_ALIVE_PE, REASON_RETIME_DEADLOCK, REASON_WARM_START,
};
use noc_eas::prelude::*;
use noc_eas::trace::EventKind;
use noc_platform::prelude::*;
use noc_schedule::validate;

fn mesh(cols: u16, rows: u16) -> Platform {
    Platform::builder()
        .topology(TopologySpec::mesh(cols, rows))
        .pe_mix(PeCatalog::date04().cycle_mix())
        .build()
        .expect("mesh builds")
}

/// t0 -> t1 -> t2 chain plus an isolated t3, uniform per-PE costs.
fn chain_graph(pe_count: usize) -> TaskGraph {
    let mut b = TaskGraph::builder("delta_chain", pe_count);
    let t0 = b.add_task(Task::uniform(
        "t0",
        pe_count,
        Time::new(40),
        Energy::from_nj(12.0),
    ));
    let t1 = b.add_task(Task::uniform(
        "t1",
        pe_count,
        Time::new(60),
        Energy::from_nj(18.0),
    ));
    let t2 = b.add_task(
        Task::uniform("t2", pe_count, Time::new(50), Energy::from_nj(15.0))
            .with_deadline(Time::new(100_000)),
    );
    let _t3 = b.add_task(Task::uniform(
        "t3",
        pe_count,
        Time::new(30),
        Energy::from_nj(9.0),
    ));
    b.add_edge(t0, t1, Volume::from_bits(2048)).expect("edge");
    b.add_edge(t1, t2, Volume::from_bits(1024)).expect("edge");
    b.build().expect("chain builds")
}

/// `t` plus its transitive successors, as raw indices.
fn cone(graph: &TaskGraph, t: TaskId) -> BTreeSet<u32> {
    let mut hit = BTreeSet::new();
    let mut stack = vec![t];
    while let Some(x) = stack.pop() {
        if hit.insert(x.index() as u32) {
            stack.extend(graph.successors(x));
        }
    }
    hit
}

fn as_set(mask: Vec<TaskId>) -> BTreeSet<u32> {
    mask.into_iter().map(|t| t.index() as u32).collect()
}

fn set(ids: &[u32]) -> BTreeSet<u32> {
    ids.iter().copied().collect()
}

#[test]
fn set_exec_time_mask_is_the_cone() {
    let platform = mesh(2, 2);
    let graph = chain_graph(platform.tile_count());
    let prior = EasScheduler::full()
        .schedule(&graph, &platform)
        .expect("schedules");
    let edits = vec![Edit::SetExecTime {
        task: 1,
        exec_times: vec![90; 4],
        exec_energies: vec![20.0; 4],
    }];
    let applied = apply_edits(&graph, &edits).expect("applies");
    // t1's new cost can shift t1 and everything downstream of it, but
    // not its predecessor t0 or the unrelated t3.
    assert_eq!(
        as_set(applied.edit_mask(0, &graph, &prior.schedule)),
        set(&[1, 2])
    );
}

#[test]
fn set_deadline_mask_is_the_task_alone() {
    let platform = mesh(2, 2);
    let graph = chain_graph(platform.tile_count());
    let prior = EasScheduler::full()
        .schedule(&graph, &platform)
        .expect("schedules");
    let edits = vec![Edit::SetDeadline {
        task: 1,
        deadline: Some(5_000),
    }];
    let applied = apply_edits(&graph, &edits).expect("applies");
    // A deadline changes feasibility judgements, not timing: only the
    // task itself is in the affected region.
    assert_eq!(
        as_set(applied.edit_mask(0, &graph, &prior.schedule)),
        set(&[1])
    );
}

#[test]
fn set_edge_volume_mask_is_src_plus_dst_cone() {
    let platform = mesh(2, 2);
    let graph = chain_graph(platform.tile_count());
    let prior = EasScheduler::full()
        .schedule(&graph, &platform)
        .expect("schedules");
    let edits = vec![Edit::SetEdgeVolume {
        src: 0,
        dst: 1,
        bits: 8192,
    }];
    let applied = apply_edits(&graph, &edits).expect("applies");
    // The producer re-sends, the consumer and its cone re-receive.
    assert_eq!(
        as_set(applied.edit_mask(0, &graph, &prior.schedule)),
        set(&[0, 1, 2])
    );
}

#[test]
fn add_task_mask_is_the_new_cone() {
    let platform = mesh(2, 2);
    let graph = chain_graph(platform.tile_count());
    let prior = EasScheduler::full()
        .schedule(&graph, &platform)
        .expect("schedules");
    let edits = vec![
        // x0 feeds t0: its cone is itself plus the whole chain -- and
        // x1 below, which hangs off the chain's tail in the edited
        // graph.
        Edit::AddTask {
            name: "x0".to_owned(),
            exec_times: vec![25; 4],
            exec_energies: vec![8.0; 4],
            deadline: None,
            edges_in: Vec::new(),
            edges_out: vec![EdgeRef { task: 0, bits: 512 }],
        },
        // x1 is a pure sink off t2: its cone is itself alone.
        Edit::AddTask {
            name: "x1".to_owned(),
            exec_times: vec![25; 4],
            exec_energies: vec![8.0; 4],
            deadline: None,
            edges_in: vec![EdgeRef { task: 2, bits: 512 }],
            edges_out: Vec::new(),
        },
    ];
    let applied = apply_edits(&graph, &edits).expect("applies");
    assert_eq!(applied.added.len(), 2);
    assert_eq!(
        as_set(applied.edit_mask(0, &graph, &prior.schedule)),
        set(&[0, 1, 2, 4, 5])
    );
    assert_eq!(
        as_set(applied.edit_mask(1, &graph, &prior.schedule)),
        set(&[5])
    );
}

#[test]
fn remove_task_mask_covers_successors_and_pe_mates() {
    let platform = mesh(2, 2);
    let graph = chain_graph(platform.tile_count());
    let prior = EasScheduler::full()
        .schedule(&graph, &platform)
        .expect("schedules");
    let edits = vec![Edit::RemoveTask { task: 1 }];
    let applied = apply_edits(&graph, &edits).expect("applies");
    let mask = as_set(applied.edit_mask(0, &graph, &prior.schedule));

    // t2 (new id 1) lost its input: its cone must be in the mask.
    let t2_new = applied.id_map[2].expect("t2 survives");
    assert!(mask.is_superset(&cone(&applied.graph, t2_new)));
    // The removed task itself has no new id.
    assert_eq!(applied.id_map[1], None);
    // Exactly: successor cones plus the cones of survivors that shared
    // t1's prior PE (the gap it left lets them slide).
    let pe = prior.schedule.task(TaskId::new(1)).pe;
    let mut expected = cone(&applied.graph, t2_new);
    for old in 0..graph.task_count() {
        if let Some(new) = applied.id_map[old] {
            if prior.schedule.task(TaskId::new(old as u32)).pe == pe {
                expected.extend(cone(&applied.graph, new));
            }
        }
    }
    assert_eq!(mask, expected);
}

#[test]
fn fail_pe_mask_covers_the_stranded_cones() {
    let platform = mesh(2, 2);
    let graph = chain_graph(platform.tile_count());
    let prior = EasScheduler::full()
        .schedule(&graph, &platform)
        .expect("schedules");
    let pe = prior.schedule.task(TaskId::new(0)).pe;
    let edits = vec![Edit::FailPe {
        pe: pe.index() as u32,
    }];
    let applied = apply_edits(&graph, &edits).expect("applies");
    let mask = as_set(applied.edit_mask(0, &graph, &prior.schedule));
    // Every task that sat on the failed PE must evacuate, dragging its
    // cone along; nothing else is affected.
    let mut expected = BTreeSet::new();
    for t in graph.task_ids() {
        if prior.schedule.task(t).pe == pe {
            expected.extend(cone(
                &applied.graph,
                applied.id_map[t.index()].expect("survives"),
            ));
        }
    }
    assert_eq!(mask, expected);
    assert!(
        mask.contains(&0),
        "the task that defined the PE is stranded"
    );
}

#[test]
fn restore_pe_mask_is_empty() {
    let platform = mesh(2, 2);
    let graph = chain_graph(platform.tile_count());
    let prior = EasScheduler::full()
        .schedule(&graph, &platform)
        .expect("schedules");
    let edits = vec![Edit::FailPe { pe: 3 }, Edit::RestorePe { pe: 3 }];
    let applied = apply_edits(&graph, &edits).expect("applies");
    // Restoring capacity forces nothing to move.
    assert_eq!(applied.edit_mask(1, &graph, &prior.schedule), Vec::new());
}

#[test]
fn link_edit_masks_cover_every_task() {
    let platform = mesh(2, 2);
    let graph = chain_graph(platform.tile_count());
    let prior = EasScheduler::full()
        .schedule(&graph, &platform)
        .expect("schedules");
    let edits = vec![
        Edit::FailLink { from: 0, to: 1 },
        Edit::RestoreLink { from: 0, to: 1 },
    ];
    let applied = apply_edits(&graph, &edits).expect("applies");
    // Routing changes can reroute any transfer: the conservative mask
    // is the whole graph, for both fail and restore.
    let all = set(&[0, 1, 2, 3]);
    assert_eq!(as_set(applied.edit_mask(0, &graph, &prior.schedule)), all);
    assert_eq!(as_set(applied.edit_mask(1, &graph, &prior.schedule)), all);
}

#[test]
fn is_platform_edit_classifies_the_edit_kinds() {
    assert!(Edit::FailPe { pe: 0 }.is_platform_edit());
    assert!(Edit::RestorePe { pe: 0 }.is_platform_edit());
    assert!(Edit::FailLink { from: 0, to: 1 }.is_platform_edit());
    assert!(Edit::RestoreLink { from: 0, to: 1 }.is_platform_edit());
    assert!(!Edit::RemoveTask { task: 0 }.is_platform_edit());
    assert!(!Edit::SetDeadline {
        task: 0,
        deadline: None
    }
    .is_platform_edit());
}

#[test]
fn single_edit_repair_warm_starts() {
    let platform = mesh(2, 2);
    let graph = chain_graph(platform.tile_count());
    let prior = EasScheduler::full()
        .schedule(&graph, &platform)
        .expect("schedules");
    let edits = vec![Edit::SetDeadline {
        task: 2,
        deadline: Some(200_000),
    }];
    let applied = apply_edits(&graph, &edits).expect("applies");
    let delta = repair_from(&graph, &prior.schedule, &platform, &applied, 1).expect("repairs");
    assert!(delta.warm_start);
    assert_eq!(delta.reason, REASON_WARM_START);
    assert_eq!(delta.edits, 1);
    assert_eq!(delta.mask_tasks, 1);
    assert!(validate(&delta.outcome.schedule, &applied.graph, &platform).is_ok());
}

#[test]
fn edit_storm_falls_back_to_full_reschedule() {
    let platform = mesh(2, 2);
    let graph = chain_graph(platform.tile_count());
    let prior = EasScheduler::full()
        .schedule(&graph, &platform)
        .expect("schedules");
    // As many edits as tasks: rebasing would re-touch everything, so
    // the warm start is rejected up front.
    let edits: Vec<Edit> = (0..graph.task_count() as u32)
        .map(|t| Edit::SetDeadline {
            task: t,
            deadline: None,
        })
        .collect();
    let applied = apply_edits(&graph, &edits).expect("applies");
    let delta = repair_from(&graph, &prior.schedule, &platform, &applied, 1).expect("reschedules");
    assert!(!delta.warm_start);
    assert_eq!(delta.reason, REASON_EDIT_STORM);
    assert!(validate(&delta.outcome.schedule, &applied.graph, &platform).is_ok());
}

#[test]
fn failing_every_pe_is_rejected_before_repair() {
    let platform = mesh(2, 2);
    let pe_count = platform.tile_count();
    let edits: Vec<Edit> = (0..pe_count as u32).map(|pe| Edit::FailPe { pe }).collect();
    // The platform builder refuses a fault set with no alive PE, so the
    // edit sequence dies at apply_platform_edits -- which is why the
    // repair-side REASON_NO_ALIVE_PE guard is unreachable from
    // well-formed inputs: it only fires if a caller hands repair_from a
    // platform that bypassed apply_platform_edits.
    let err = apply_platform_edits(&platform, &edits).expect_err("all-dead platform rejected");
    assert!(err.contains("no PE left"), "unexpected error: {err}");
}

#[test]
fn fallback_reasons_are_distinct_and_traced() {
    // The decision vocabulary the trace and the service surface: four
    // distinct, stable strings.
    let reasons = [
        REASON_WARM_START,
        REASON_EDIT_STORM,
        REASON_NO_ALIVE_PE,
        REASON_RETIME_DEADLOCK,
    ];
    let unique: BTreeSet<&str> = reasons.iter().copied().collect();
    assert_eq!(unique.len(), reasons.len());

    // Every repair_from run emits exactly one DeltaDecision carrying
    // one of them, before the repair pipeline starts.
    let platform = mesh(2, 2);
    let graph = chain_graph(platform.tile_count());
    let prior = EasScheduler::full()
        .schedule(&graph, &platform)
        .expect("schedules");
    let edits = vec![Edit::SetDeadline {
        task: 2,
        deadline: Some(200_000),
    }];
    let applied = apply_edits(&graph, &edits).expect("applies");
    let mut sink = BufferSink::new();
    repair_from_traced(
        &graph,
        &prior.schedule,
        &platform,
        &applied,
        1,
        &ComputeBudget::unlimited(),
        &mut sink,
    )
    .expect("repairs");
    let decisions: Vec<(bool, &str)> = sink
        .events()
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::DeltaDecision {
                warm_start, reason, ..
            } => Some((warm_start, reason)),
            _ => None,
        })
        .collect();
    assert_eq!(decisions, vec![(true, REASON_WARM_START)]);
}

#[test]
fn conflicting_insertion_reports_retime_deadlock() {
    // Two independent tasks whose costs pin them to PE 0; a new task
    // wired *after* the later one and *before* the earlier one forces
    // an insertion the rebased per-PE order cannot satisfy.
    let platform = mesh(2, 1);
    let pe_count = platform.tile_count();
    let pinned = |name: &str| {
        Task::new(
            name,
            vec![Time::new(50), Time::new(50_000)],
            vec![Energy::from_nj(1.0), Energy::from_nj(1_000_000.0)],
        )
    };
    let mut b = TaskGraph::builder("deadlock", pe_count);
    let a = b.add_task(pinned("a"));
    let c = b.add_task(pinned("c"));
    let graph = b.build().expect("builds");
    let prior = EasScheduler::full()
        .schedule(&graph, &platform)
        .expect("schedules");
    let (pa, pc) = (prior.schedule.task(a), prior.schedule.task(c));
    assert_eq!(pa.pe, pc.pe, "cost bias must colocate both tasks");
    let (earlier, later) = if pa.start <= pc.start {
        (0u32, 1u32)
    } else {
        (1u32, 0u32)
    };
    let edits = vec![Edit::AddTask {
        name: "wedge".to_owned(),
        exec_times: vec![50, 50_000],
        exec_energies: vec![1.0, 1_000_000.0],
        deadline: None,
        edges_in: vec![EdgeRef {
            task: later,
            bits: 0,
        }],
        edges_out: vec![EdgeRef {
            task: earlier,
            bits: 0,
        }],
    }];
    let applied = apply_edits(&graph, &edits).expect("applies");
    let delta = repair_from(&graph, &prior.schedule, &platform, &applied, 1).expect("reschedules");
    assert!(!delta.warm_start);
    assert_eq!(delta.reason, REASON_RETIME_DEADLOCK);
    assert!(validate(&delta.outcome.schedule, &applied.graph, &platform).is_ok());
}

/// Strategy: a small random CTG configuration (the delta twin of the
/// one in `integration_properties.rs`, kept small -- each case runs a
/// full schedule plus two repairs).
fn tgff_config() -> impl Strategy<Value = TgffConfig> {
    (
        0u64..1_000,
        8usize..20,
        1.5f64..3.0,
        (64u64..512, 512u64..4096),
    )
        .prop_map(|(seed, task_count, laxity, (vol_lo, vol_hi))| {
            let mut cfg = TgffConfig::small(seed);
            cfg.task_count = task_count;
            cfg.deadline_laxity = laxity;
            cfg.volume_range = (vol_lo, vol_hi);
            cfg.width = (task_count / 4).max(2);
            cfg
        })
}

/// Turns an abstract `(kind, a, b)` script into an edit sequence that
/// is valid against `graph` by construction: task references probe past
/// removed tasks, edge edits pick surviving edges, and at most two of
/// the four PEs fail so the fallback always has somewhere to place.
fn concrete_edits(graph: &TaskGraph, script: &[(u8, u64, u64)]) -> Vec<Edit> {
    let n = graph.task_count() as u64;
    let pe_count = graph.pe_count();
    let mut removed: BTreeSet<u64> = BTreeSet::new();
    let mut failed_pes = 0usize;
    let mut edits = Vec::new();
    let alive = |seed: u64, removed: &BTreeSet<u64>| -> Option<u64> {
        (0..n)
            .map(|k| (seed + k) % n)
            .find(|t| !removed.contains(t))
    };
    for (i, &(kind, a, b)) in script.iter().enumerate() {
        match kind % 5 {
            0 => {
                if let Some(t) = alive(a % n, &removed) {
                    let task = graph.task(TaskId::new(t as u32));
                    edits.push(Edit::SetExecTime {
                        task: t as u32,
                        exec_times: task
                            .exec_times()
                            .iter()
                            .map(|w| w.ticks() + b % 17 + 1)
                            .collect(),
                        exec_energies: task
                            .exec_energies()
                            .iter()
                            .map(|e| e.as_nj() * 1.1 + 0.5)
                            .collect(),
                    });
                }
            }
            1 => {
                if let Some(t) = alive(a % n, &removed) {
                    edits.push(Edit::SetDeadline {
                        task: t as u32,
                        deadline: None,
                    });
                }
            }
            2 => {
                let live: Vec<_> = graph
                    .edges()
                    .iter()
                    .filter(|e| {
                        !removed.contains(&(e.src.index() as u64))
                            && !removed.contains(&(e.dst.index() as u64))
                    })
                    .collect();
                if !live.is_empty() {
                    let e = live[(a as usize) % live.len()];
                    edits.push(Edit::SetEdgeVolume {
                        src: e.src.index() as u32,
                        dst: e.dst.index() as u32,
                        bits: e.volume.bits() / 2 + b % 256 + 1,
                    });
                }
            }
            3 => {
                if let Some(t) = alive(a % n, &removed) {
                    edits.push(Edit::AddTask {
                        name: format!("delta_{i}"),
                        exec_times: vec![40 + b % 60; pe_count],
                        exec_energies: vec![(b % 100) as f64 + 1.0; pe_count],
                        deadline: None,
                        edges_in: vec![EdgeRef {
                            task: t as u32,
                            bits: 256 + b % 1024,
                        }],
                        edges_out: Vec::new(),
                    });
                }
            }
            _ => {
                if removed.len() + 3 < n as usize {
                    if let Some(t) = alive(a % n, &removed) {
                        removed.insert(t);
                        edits.push(Edit::RemoveTask { task: t as u32 });
                    }
                } else if failed_pes < 2 {
                    failed_pes += 1;
                    edits.push(Edit::FailPe {
                        pe: (a % pe_count as u64) as u32,
                    });
                }
            }
        }
    }
    edits
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Whatever the edit sequence, the repaired (or fallback) schedule
    /// passes full validation against the edited graph and platform,
    /// and the per-edit masks union to the sequence mask.
    #[test]
    fn repaired_schedules_always_validate(
        cfg in tgff_config(),
        script in prop::collection::vec((0u8..5, 0u64..u64::MAX, 0u64..u64::MAX), 1..6),
    ) {
        let platform = mesh(2, 2);
        let graph = TgffGenerator::new(cfg).generate(&platform).expect("generates");
        let prior = EasScheduler::full().schedule(&graph, &platform).expect("schedules");
        let edits = concrete_edits(&graph, &script);
        let applied = apply_edits(&graph, &edits).expect("edits apply by construction");
        let edited = apply_platform_edits(&platform, &applied.edits).expect("platform applies");
        let delta = repair_from(&graph, &prior.schedule, &edited, &applied, 1)
            .expect("repairs");
        prop_assert!(validate(&delta.outcome.schedule, &applied.graph, &edited).is_ok());
        prop_assert_eq!(delta.edits, applied.edits.len());

        let union: BTreeSet<u32> = (0..applied.edits.len())
            .flat_map(|i| applied.edit_mask(i, &graph, &prior.schedule))
            .map(|t| t.index() as u32)
            .collect();
        let full = as_set(applied.mask(&graph, &prior.schedule));
        prop_assert_eq!(union.len(), delta.mask_tasks);
        prop_assert_eq!(union, full);
    }

    /// The delta pipeline is thread-count independent: any worker count
    /// produces byte-identical schedules and the same decision.
    #[test]
    fn repair_is_byte_identical_across_thread_counts(
        cfg in tgff_config(),
        script in prop::collection::vec((0u8..5, 0u64..u64::MAX, 0u64..u64::MAX), 1..6),
        threads in 2usize..5,
    ) {
        let platform = mesh(2, 2);
        let graph = TgffGenerator::new(cfg).generate(&platform).expect("generates");
        let prior = EasScheduler::full().schedule(&graph, &platform).expect("schedules");
        let edits = concrete_edits(&graph, &script);
        let applied = apply_edits(&graph, &edits).expect("edits apply by construction");
        let edited = apply_platform_edits(&platform, &applied.edits).expect("platform applies");
        let serial = repair_from(&graph, &prior.schedule, &edited, &applied, 1)
            .expect("serial repairs");
        let parallel = repair_from(&graph, &prior.schedule, &edited, &applied, threads)
            .expect("parallel repairs");
        prop_assert_eq!(serial.warm_start, parallel.warm_start);
        prop_assert_eq!(serial.reason, parallel.reason);
        prop_assert_eq!(serial.mask_tasks, parallel.mask_tasks);
        let lhs = serde_json::to_string(&serial.outcome.schedule).expect("serializes");
        let rhs = serde_json::to_string(&parallel.outcome.schedule).expect("serializes");
        prop_assert_eq!(lhs, rhs);
    }
}
