//! Property-based integration tests: every randomly generated CTG on
//! every platform shape must yield structurally valid schedules, stable
//! re-timings, and monotone budgets.

use proptest::prelude::*;

use noc_ctg::prelude::*;
use noc_eas::prelude::*;
use noc_eas::retime::{retime, OrderedAssignment};
use noc_platform::prelude::*;
use noc_schedule::validate;

fn platform(cols: u16, rows: u16) -> Platform {
    Platform::builder()
        .topology(TopologySpec::mesh(cols, rows))
        .pe_mix(PeCatalog::date04().cycle_mix())
        .build()
        .expect("mesh builds")
}

/// Strategy: a small random CTG configuration.
fn tgff_config() -> impl Strategy<Value = TgffConfig> {
    (
        0u64..1_000,
        8usize..40,
        1.2f64..3.0,
        0.0f64..0.3,
        (64u64..512, 512u64..4096),
    )
        .prop_map(
            |(seed, task_count, laxity, control_prob, (vol_lo, vol_hi))| {
                let mut cfg = TgffConfig::small(seed);
                cfg.task_count = task_count;
                cfg.deadline_laxity = laxity;
                cfg.control_edge_prob = control_prob;
                cfg.volume_range = (vol_lo, vol_hi);
                cfg.width = (task_count / 4).max(2);
                cfg
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Whatever the workload, every scheduler's output passes the full
    /// Def. 3/4 + dependency validation.
    #[test]
    fn schedules_always_validate(cfg in tgff_config(), dims in 2u16..5) {
        let platform = platform(dims, 2);
        let graph = TgffGenerator::new(cfg).generate(&platform).expect("generates");
        for scheduler in [&EasScheduler::full() as &dyn Scheduler,
                          &EasScheduler::base(), &EdfScheduler::new()] {
            let outcome = scheduler.schedule(&graph, &platform).expect("schedules");
            prop_assert!(validate(&outcome.schedule, &graph, &platform).is_ok());
        }
    }

    /// retime() is a fixpoint on its own output: re-extracting the
    /// (assignment, order) and re-timing reproduces the same schedule.
    #[test]
    fn retime_is_a_fixpoint(cfg in tgff_config()) {
        let platform = platform(4, 4);
        let graph = TgffGenerator::new(cfg).generate(&platform).expect("generates");
        let outcome = EasScheduler::base().schedule(&graph, &platform).expect("schedules");
        let oa = OrderedAssignment::from_schedule(&outcome.schedule, &platform);
        let retimed = retime(&graph, &platform, &oa).expect("feasible");
        let oa2 = OrderedAssignment::from_schedule(&retimed, &platform);
        let retimed2 = retime(&graph, &platform, &oa2).expect("feasible");
        prop_assert_eq!(retimed, retimed2);
    }

    /// Search-and-repair never increases the (miss count, tardiness)
    /// badness and leaves assignments valid.
    #[test]
    fn repair_is_monotone(cfg in tgff_config()) {
        let platform = platform(4, 4);
        let graph = TgffGenerator::new(cfg).generate(&platform).expect("generates");
        let base = EasScheduler::base().schedule(&graph, &platform).expect("base");
        let full = EasScheduler::full().schedule(&graph, &platform).expect("full");
        prop_assert!(full.report.deadline_misses.len()
            <= base.report.deadline_misses.len());
        prop_assert!(validate(&full.schedule, &graph, &platform).is_ok());
    }

    /// The parallel scheduling engine is bit-identical to the serial one
    /// on every workload and thread count: same schedule, same energy,
    /// same deadline misses, same repair statistics.
    #[test]
    fn parallel_scheduling_matches_serial(cfg in tgff_config(), threads in 2usize..8) {
        let platform = platform(4, 4);
        let graph = TgffGenerator::new(cfg).generate(&platform).expect("generates");
        let serial = EasScheduler::new(EasConfig::default())
            .schedule(&graph, &platform).expect("serial");
        let parallel = EasScheduler::new(EasConfig::default().with_threads(threads))
            .schedule(&graph, &platform).expect("parallel");
        prop_assert_eq!(&parallel.schedule, &serial.schedule);
        prop_assert_eq!(parallel.stats.energy.total(), serial.stats.energy.total());
        prop_assert_eq!(&parallel.report.deadline_misses, &serial.report.deadline_misses);
        prop_assert_eq!(parallel.repair, serial.repair);
    }

    /// Tracing is pure observation: a traced run yields a schedule
    /// byte-identical to the untraced run on every workload and thread
    /// count, and the trace itself is non-empty.
    #[test]
    fn tracing_never_perturbs_the_schedule(cfg in tgff_config(), threads in 1usize..5) {
        let platform = platform(4, 4);
        let graph = TgffGenerator::new(cfg).generate(&platform).expect("generates");
        let scheduler = EasScheduler::new(EasConfig::default().with_threads(threads));
        let plain = scheduler.schedule(&graph, &platform).expect("plain");
        let mut sink = BufferSink::new();
        let traced = scheduler
            .schedule_traced(&graph, &platform, &ComputeBudget::unlimited(), &mut sink)
            .expect("traced");
        prop_assert_eq!(&traced.schedule, &plain.schedule);
        prop_assert_eq!(
            serde_json::to_string(&traced.schedule).expect("serializes"),
            serde_json::to_string(&plain.schedule).expect("serializes"),
            "traced and untraced schedule artifacts must serialize to the same bytes"
        );
        prop_assert!(!sink.events().is_empty(), "a traced run emits events");
    }

    /// Budgeted deadlines never exceed the task's own deadline and are
    /// monotone along dependency chains (BD(pred) <= BD(succ) whenever
    /// both are finite).
    #[test]
    fn budgets_are_consistent(cfg in tgff_config()) {
        let platform = platform(4, 4);
        let graph = TgffGenerator::new(cfg).generate(&platform).expect("generates");
        let budgets = noc_eas::budget::SlackBudgets::compute_with_comm(
            &graph, WeightFunction::VarEnergyTimesVarTime, platform.link_bandwidth());
        for t in graph.task_ids() {
            let bd = budgets.budgeted_deadline(t);
            if let Some(d) = graph.task(t).deadline() {
                prop_assert!(bd <= d, "task {t}: BD {bd} > deadline {d}");
            }
            for s in graph.successors(t) {
                let bs = budgets.budgeted_deadline(s);
                if !bs.is_infinite() {
                    prop_assert!(bd <= bs, "BD({t})={bd} > BD({s})={bs}");
                }
            }
        }
    }

    /// The two-phase mapping baseline respects its load-balance cap on
    /// every workload (no PE carries more than balance_factor x the
    /// average mean load, unless capping was infeasible everywhere).
    #[test]
    fn mapping_baseline_is_load_balanced(cfg in tgff_config()) {
        use noc_eas::prelude::MapThenScheduleScheduler;
        let platform = platform(4, 4);
        let graph = TgffGenerator::new(cfg).generate(&platform).expect("generates");
        let outcome = MapThenScheduleScheduler::new()
            .schedule(&graph, &platform)
            .expect("schedules");
        let mut load = vec![0.0f64; platform.tile_count()];
        for t in graph.task_ids() {
            load[outcome.schedule.task(t).pe.index()] += graph.task(t).mean_exec_time();
        }
        let total: f64 = load.iter().sum();
        let cap = (total / platform.tile_count() as f64) * 1.5;
        let max_task = graph.task_ids()
            .map(|t| graph.task(t).mean_exec_time())
            .fold(0.0, f64::max);
        // The cap is only meaningful when the average PE load exceeds a
        // single task (on near-empty platforms heavy communicators
        // legitimately cluster past it); allow one task of overshoot
        // since the cap is checked before adding.
        if total / platform.tile_count() as f64 > max_task {
            for (i, &l) in load.iter().enumerate() {
                prop_assert!(l <= cap + max_task + 1e-9, "PE{i} load {l} exceeds cap {cap}");
            }
        }
    }

    /// Energy accounting is placement-determined: recomputing stats on
    /// the same schedule yields identical numbers, and moving every task
    /// to PE 0 gives exactly the sum of PE-0 energies with zero
    /// communication energy beyond local switch traversals.
    #[test]
    fn energy_accounting_is_consistent(cfg in tgff_config()) {
        let platform = platform(4, 4);
        let graph = TgffGenerator::new(cfg).generate(&platform).expect("generates");
        // All tasks sequentially on PE 0, in topological order.
        let oa = OrderedAssignment {
            assignment: vec![PeId::new(0); graph.task_count()],
            order: {
                let mut order = vec![Vec::new(); platform.tile_count()];
                order[0] = graph.topological_order().to_vec();
                order
            },
        };
        let schedule = retime(&graph, &platform, &oa).expect("sequential is feasible");
        let stats = noc_schedule::ScheduleStats::compute(&schedule, &graph, &platform);
        let expected_comp: f64 = graph.task_ids()
            .map(|t| graph.task(t).exec_energy(PeId::new(0)).as_nj())
            .sum();
        prop_assert!((stats.energy.computation.as_nj() - expected_comp).abs() < 1e-6);
        // Local data transfers only pay the single switch traversal.
        let e_sbit = platform.energy_model().e_sbit.as_nj();
        let expected_comm: f64 = graph.edges().iter()
            .filter(|e| !e.volume.is_zero())
            .map(|e| e_sbit * e.volume.as_f64())
            .sum();
        prop_assert!((stats.energy.communication.as_nj() - expected_comm).abs() < 1e-6);
        prop_assert_eq!(stats.avg_hops_per_packet.max(0.0),
            if graph.edges().iter().any(|e| !e.volume.is_zero()) { 1.0 } else { 0.0 });
    }
}
