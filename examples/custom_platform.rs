//! The paper's future-work extension (Sec. 7): the EAS algorithm on
//! *other* regular topologies with deterministic routing. We schedule
//! the same workload on a 4x4 mesh (XY), a 4x4 torus (wrap-aware XY) and
//! a 4x4 honeycomb (deterministic shortest-path, router degree <= 3) and
//! compare the energy/latency outcomes.
//!
//! Run with: `cargo run -p noc-eas --example custom_platform --release`

use noc_ctg::prelude::*;
use noc_eas::prelude::*;
use noc_platform::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let platforms: Vec<(&str, Platform)> = vec![
        (
            "mesh-xy",
            Platform::builder()
                .topology(TopologySpec::mesh(4, 4))
                .routing(RoutingSpec::Xy)
                .build()?,
        ),
        (
            "mesh-yx",
            Platform::builder()
                .topology(TopologySpec::mesh(4, 4))
                .routing(RoutingSpec::Yx)
                .build()?,
        ),
        (
            "torus-xy",
            Platform::builder()
                .topology(TopologySpec::torus(4, 4))
                .routing(RoutingSpec::Xy)
                .build()?,
        ),
        (
            "honeycomb",
            Platform::builder()
                .topology(TopologySpec::honeycomb(4, 4))
                .routing(RoutingSpec::ShortestPath)
                .build()?,
        ),
    ];

    println!(
        "{:<11} {:>7} {:>12} {:>10} {:>7} {:>7}",
        "platform", "links", "energy(nJ)", "makespan", "misses", "hops"
    );
    for (name, platform) in &platforms {
        // The same seeded workload on every platform (cost vectors are
        // re-synthesized per platform since PE counts match: all 16).
        let graph = TgffGenerator::new(TgffConfig::small(5)).generate(platform)?;
        let outcome = EasScheduler::full().schedule(&graph, platform)?;
        println!(
            "{:<11} {:>7} {:>12.1} {:>10} {:>7} {:>7.2}",
            name,
            platform.link_count(),
            outcome.stats.energy.total().as_nj(),
            outcome.report.makespan,
            outcome.report.deadline_misses.len(),
            outcome.stats.avg_hops_per_packet,
        );
    }
    println!(
        "\nReading guide: the torus' wrap links shorten average routes (lower hops\n\
         and communication energy); the honeycomb pays longer detours for its\n\
         cheaper degree-3 routers. Eq. 2 prices each topology through its ACG, as\n\
         the paper's Sec. 7 sketches."
    );
    Ok(())
}
