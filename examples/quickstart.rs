//! Quickstart: build a small communication task graph, schedule it on a
//! 2x2 heterogeneous NoC with EAS, and compare against the EDF baseline.
//!
//! Run with: `cargo run -p noc-eas --example quickstart`

use noc_ctg::prelude::*;
use noc_eas::prelude::*;
use noc_platform::prelude::*;
use noc_schedule::gantt::render_gantt;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The platform: a 2x2 mesh with the DATE'04 heterogeneous PE mix
    //    (fast CPU / mid CPU / low-power core / DSP) and XY routing.
    let platform = Platform::builder()
        .topology(TopologySpec::mesh(2, 2))
        .routing(RoutingSpec::Xy)
        .pe_mix(PeCatalog::date04().cycle_mix())
        .build()?;

    // 2. The application: a six-task pipeline with a fork/join, a
    //    deadline on the sink, and per-PE cost vectors synthesized from
    //    the PE classes (a "DSP-ish" task is cheaper on the DSP tile).
    let synth = noc_ctg::costs::CostSynthesizer::new(platform.pe_classes());
    let mut builder = TaskGraph::builder("quickstart", platform.tile_count());
    let mut task = |name: &str, base: f64, affinity: f64| {
        let (times, energies) = synth.vectors(base, affinity);
        builder.add_task(Task::new(name, times, energies))
    };
    let capture = task("capture", 150.0, 0.1);
    let filter_l = task("filter-l", 400.0, 0.9);
    let filter_r = task("filter-r", 400.0, 0.9);
    let analyze = task("analyze", 500.0, 0.7);
    let encode = task("encode", 350.0, 0.4);
    let emit = task("emit", 120.0, 0.1);
    builder.add_edge(capture, filter_l, Volume::from_bits(4096))?;
    builder.add_edge(capture, filter_r, Volume::from_bits(4096))?;
    builder.add_edge(filter_l, analyze, Volume::from_bits(2048))?;
    builder.add_edge(filter_r, analyze, Volume::from_bits(2048))?;
    builder.add_edge(analyze, encode, Volume::from_bits(1024))?;
    builder.add_edge(encode, emit, Volume::from_bits(512))?;
    let task = builder.task_mut(emit);
    *task = task.clone().with_deadline(Time::new(3_000));
    let graph = builder.build()?;

    // 3. Schedule with EAS (energy-aware) and EDF (performance-driven).
    let eas = EasScheduler::full().schedule(&graph, &platform)?;
    let edf = EdfScheduler::new().schedule(&graph, &platform)?;

    println!("EAS schedule:");
    println!("{}", render_gantt(&eas.schedule, &graph, &platform, 70));
    println!("EDF schedule:");
    println!("{}", render_gantt(&edf.schedule, &graph, &platform, 70));

    println!(
        "EAS: {}   (deadlines met: {})",
        eas.stats,
        eas.report.meets_deadlines()
    );
    println!(
        "EDF: {}   (deadlines met: {})",
        edf.stats,
        edf.report.meets_deadlines()
    );
    println!(
        "Energy savings of EAS over EDF: {:.1}%",
        100.0 * (edf.stats.energy.total().as_nj() - eas.stats.energy.total().as_nj())
            / edf.stats.energy.total().as_nj()
    );
    Ok(())
}
