//! Architecture design-space exploration with the scheduler in the
//! loop: sweep mesh sizes and PE mixes for the integrated A/V system and
//! report the energy / deadline Pareto rows — the kind of study the
//! paper's scheduler enables (which platform is *enough* for the
//! workload?).
//!
//! Run with: `cargo run -p noc-eas --example design_space --release`

use noc_ctg::prelude::*;
use noc_eas::prelude::*;
use noc_platform::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let meshes: [(u16, u16); 3] = [(2, 2), (3, 2), (3, 3)];
    let mixes: [(&str, PeCatalog); 2] = [
        ("date04-hetero", PeCatalog::date04()),
        ("homogeneous", PeCatalog::homogeneous()),
    ];

    println!(
        "{:<9} {:<15} {:>12} {:>10} {:>8} {:>7}",
        "mesh", "pe-mix", "energy(nJ)", "makespan", "misses", "hops"
    );
    for (cols, rows) in meshes {
        for (mix_name, catalog) in &mixes {
            let platform = Platform::builder()
                .topology(TopologySpec::mesh(cols, rows))
                .pe_mix(catalog.cycle_mix())
                .build()?;
            let graph = MultimediaApp::AvIntegrated.build(Clip::Foreman, &platform)?;
            let outcome = EasScheduler::full().schedule(&graph, &platform)?;
            println!(
                "{:<9} {:<15} {:>12.1} {:>10} {:>8} {:>7.2}",
                format!("{cols}x{rows}"),
                mix_name,
                outcome.stats.energy.total().as_nj(),
                outcome.report.makespan,
                outcome.report.deadline_misses.len(),
                outcome.stats.avg_hops_per_packet,
            );
        }
    }
    println!(
        "\nReading guide: heterogeneous mixes dominate homogeneous ones on energy;\n\
         smaller meshes save communication energy until the load makes deadlines\n\
         unschedulable — the scheduler turns platform sizing into a measurement."
    );
    Ok(())
}
