//! The paper's motivating workload: schedule the MP3/H.263 A/V encoder
//! (24 tasks) on a 2x2 heterogeneous NoC for all three video clips, then
//! replay the EAS schedule on the flit-level wormhole simulator to
//! confirm it executes on time under dynamic contention.
//!
//! Run with: `cargo run -p noc-eas --example av_encoder`

use noc_ctg::prelude::*;
use noc_eas::prelude::*;
use noc_platform::prelude::*;
use noc_sim::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let platform = Platform::builder()
        .topology(TopologySpec::mesh(2, 2))
        .pe_mix(PeCatalog::date04().cycle_mix())
        .build()?;

    println!("clip      scheduler  energy(nJ)  comp(nJ)  comm(nJ)  makespan  misses");
    for clip in Clip::all() {
        let graph = MultimediaApp::AvEncoder.build(clip, &platform)?;
        let eas = EasScheduler::full().schedule(&graph, &platform)?;
        let edf = EdfScheduler::new().schedule(&graph, &platform)?;
        for (name, outcome) in [("eas", &eas), ("edf", &edf)] {
            println!(
                "{:<9} {:<10} {:>10.1} {:>9.1} {:>9.1} {:>9} {:>7}",
                clip.name(),
                name,
                outcome.stats.energy.total().as_nj(),
                outcome.stats.energy.computation.as_nj(),
                outcome.stats.energy.communication.as_nj(),
                outcome.report.makespan,
                outcome.report.deadline_misses.len(),
            );
        }
        println!(
            "          EAS saves {:.1}% energy over EDF",
            100.0 * (edf.stats.energy.total().as_nj() - eas.stats.energy.total().as_nj())
                / edf.stats.energy.total().as_nj()
        );

        // Replay the EAS schedule on the wormhole simulator.
        let trace = ScheduleExecutor::new(&graph, &platform, SimConfig::default())
            .execute(&eas.schedule)?;
        let worst_slip = trace
            .slippage_vs(&eas.schedule)
            .into_iter()
            .max()
            .unwrap_or(Time::ZERO);
        println!(
            "          simulator: dynamic makespan {} (static {}), worst slip {} ticks, \
             misses under execution: {}\n",
            trace.makespan,
            eas.report.makespan,
            worst_slip,
            trace.deadline_misses.len()
        );
    }
    Ok(())
}
