//! Pipelined streaming: schedule three consecutive frames of the A/V
//! encoder at once — frame `k`'s reconstructed reference feeding frame
//! `k+1`'s motion estimation — then export the schedule as a VCD
//! waveform for GTKWave and a link-occupancy report.
//!
//! Run with: `cargo run -p noc-eas --example pipelined_stream --release`

use noc_ctg::pipeline::{task_by_name, unroll, InterFrameEdge};
use noc_ctg::prelude::*;
use noc_eas::prelude::*;
use noc_platform::prelude::*;
use noc_schedule::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let platform = Platform::builder()
        .topology(TopologySpec::mesh(2, 2))
        .pe_mix(PeCatalog::date04().cycle_mix())
        .build()?;

    // One frame of the encoder, then three frames pipelined.
    let frame = MultimediaApp::AvEncoder.build(Clip::Foreman, &platform)?;
    let store = task_by_name(&frame, "frame_store").expect("encoder has frame_store");
    let me = task_by_name(&frame, "motion_est").expect("encoder has motion_est");
    let reference_frame = InterFrameEdge::new(store, me, Volume::from_bits(16_384));
    let pipeline = unroll(
        &frame,
        3,
        Time::new(noc_ctg::multimedia::ENCODER_PERIOD),
        &[reference_frame],
    )?;
    println!(
        "unrolled {} -> {} ({} tasks, {} arcs)\n",
        frame.name(),
        pipeline.name(),
        pipeline.task_count(),
        pipeline.edge_count()
    );

    let outcome = EasScheduler::full().schedule(&pipeline, &platform)?;
    println!(
        "EAS: {} | {} deadline misses over 3 frames",
        outcome.stats,
        outcome.report.deadline_misses.len()
    );

    // Busiest links: where the cross-frame reference traffic lands.
    println!("\nbusiest links:");
    println!(
        "{}",
        render_link_occupancy(&outcome.schedule, &pipeline, &platform, 5)
    );

    // Waveform export for GTKWave.
    let vcd = noc_schedule::vcd::to_vcd(&outcome.schedule, &pipeline, &platform);
    let path = std::env::temp_dir().join("pipelined_stream.vcd");
    std::fs::write(&path, vcd)?;
    println!(
        "VCD waveform written to {} (open with GTKWave)",
        path.display()
    );
    Ok(())
}
