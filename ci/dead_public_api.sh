#!/usr/bin/env bash
# Advisory cross-crate dead-public-API sweep (warnalyzer-style).
#
# rustc's dead_code lint stops at crate boundaries: an item that is
# `pub` is "used" as far as its own crate is concerned, even when no
# other workspace crate (or test, bench, or binary) ever touches it.
# This script approximates the cross-crate check with a grep heuristic:
# for every `pub fn|struct|enum|trait|const|type` declared under
# crates/*/src, count identifier occurrences everywhere else in the
# workspace (other files in the same crate included — a helper used
# only beside its own definition is still suspicious API surface).
# Zero occurrences outside the defining file => reported.
#
# Intentional exports (public API kept for downstream users, trait
# impls resolved by name, serde shapes) live in ci/deadpub_allowlist.txt
# — one identifier per line, `#` comments allowed.
#
# Exit code: 1 when non-allowlisted findings exist, else 0. CI runs
# this advisory (continue-on-error), so the exit code colors the job
# without blocking merges.
set -euo pipefail
cd "$(dirname "$0")/.."

allowlist=ci/deadpub_allowlist.txt
findings=0
checked=0

# Identifiers permitted to be unreferenced.
declare -A allowed
allow_count=0
if [[ -f "$allowlist" ]]; then
    while IFS= read -r line; do
        line="${line%%#*}"
        line="$(echo "$line" | tr -d '[:space:]')"
        if [[ -n "$line" ]]; then
            allowed["$line"]=1
            allow_count=$((allow_count + 1))
        fi
    done < "$allowlist"
fi

# All declarations: file:line:identifier. Skips #[doc(hidden)]-free
# detection niceties — this is a heuristic, the allowlist absorbs noise.
decls=$(grep -rn --include='*.rs' -E '^[[:space:]]*pub (async )?(fn|struct|enum|trait|const|type) [A-Za-z_][A-Za-z0-9_]*' crates/*/src \
    | sed -E 's/^([^:]+):([0-9]+):[[:space:]]*pub (async )?(fn|struct|enum|trait|const|type) ([A-Za-z_][A-Za-z0-9_]*).*/\1:\2:\5/')

while IFS=: read -r file line ident; do
    [[ -z "$ident" ]] && continue
    [[ -n "${allowed[$ident]:-}" ]] && continue
    checked=$((checked + 1))
    # Occurrences of the identifier anywhere in the workspace outside
    # the defining file (sources, integration tests, benches, docs get
    # no say — docs referencing a dead item keep it dead).
    if ! grep -rqw --include='*.rs' --exclude-dir=target "$ident" crates tests --exclude="$(basename "$file")" 2>/dev/null; then
        # --exclude matches by basename and may drop same-named files in
        # other crates; re-check precisely before reporting.
        uses=$(grep -rlw --include='*.rs' "$ident" crates tests 2>/dev/null | grep -cv "^$file\$" || true)
        if [[ "$uses" -eq 0 ]]; then
            echo "dead-pub? $file:$line $ident"
            findings=$((findings + 1))
        fi
    fi
done <<< "$decls"

echo
echo "checked $checked public declarations; $findings potentially dead (allowlist: $allow_count entries)"
if [[ "$findings" -gt 0 ]]; then
    echo "add intentional exports to $allowlist, or delete the item"
    exit 1
fi
