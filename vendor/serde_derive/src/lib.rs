//! Minimal `#[derive(Serialize, Deserialize)]` implementation.
//!
//! Parses the item's token stream by hand (no `syn`/`quote`, so the
//! crate builds with nothing but the compiler) and generates impls of
//! the vendored `serde::Serialize` / `serde::Deserialize` traits.
//!
//! Supported shapes — exactly what this workspace uses:
//!
//! * structs with named fields (`#[serde(default)]` honoured per field),
//! * tuple structs (`#[serde(transparent)]` honoured for newtypes),
//! * enums with unit, newtype-tuple, and struct variants
//!   (externally tagged, like real serde).
//!
//! Generics are intentionally unsupported: the derive panics with a
//! clear message rather than emitting wrong code.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug, Clone)]
struct Field {
    name: String,
    default: bool,
}

#[derive(Debug, Clone)]
enum VariantShape {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

#[derive(Debug, Clone)]
struct Variant {
    name: String,
    shape: VariantShape,
}

#[derive(Debug)]
enum Kind {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Input {
    name: String,
    transparent: bool,
    kind: Kind,
}

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_serialize(&parsed)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_deserialize(&parsed)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

/// Scans attribute tokens (`#` + bracket group pairs) at the cursor,
/// returning the collected `#[serde(...)]` idents ("transparent",
/// "default", ...).
fn take_attrs(tokens: &[TokenTree], pos: &mut usize) -> Vec<String> {
    let mut serde_words = Vec::new();
    while *pos + 1 < tokens.len() {
        let is_pound = matches!(&tokens[*pos], TokenTree::Punct(p) if p.as_char() == '#');
        if !is_pound {
            break;
        }
        let TokenTree::Group(g) = &tokens[*pos + 1] else {
            break;
        };
        if g.delimiter() != Delimiter::Bracket {
            break;
        }
        let inner: Vec<TokenTree> = g.stream().into_iter().collect();
        if let Some(TokenTree::Ident(name)) = inner.first() {
            if name.to_string() == "serde" {
                if let Some(TokenTree::Group(args)) = inner.get(1) {
                    for t in args.stream() {
                        if let TokenTree::Ident(word) = t {
                            serde_words.push(word.to_string());
                        }
                    }
                }
            }
        }
        *pos += 2;
    }
    serde_words
}

/// Skips a `pub` / `pub(...)` visibility marker if present.
fn skip_visibility(tokens: &[TokenTree], pos: &mut usize) {
    if matches!(&tokens[*pos..], [TokenTree::Ident(i), ..] if i.to_string() == "pub") {
        *pos += 1;
        if matches!(&tokens[*pos..], [TokenTree::Group(g), ..] if g.delimiter() == Delimiter::Parenthesis)
        {
            *pos += 1;
        }
    }
}

fn parse_input(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;
    let container_attrs = take_attrs(&tokens, &mut pos);
    let transparent = container_attrs.iter().any(|w| w == "transparent");
    skip_visibility(&tokens, &mut pos);

    let keyword = match &tokens[pos] {
        TokenTree::Ident(i) => i.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, found {other}"),
    };
    pos += 1;
    let name = match &tokens[pos] {
        TokenTree::Ident(i) => i.to_string(),
        other => panic!("serde_derive: expected type name, found {other}"),
    };
    pos += 1;
    if matches!(&tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive: generic types are not supported by the vendored derive ({name})");
    }

    let kind = match keyword.as_str() {
        "struct" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::TupleStruct(count_tuple_fields(g.stream()))
            }
            _ => panic!("serde_derive: unit structs are not supported ({name})"),
        },
        "enum" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g.stream()))
            }
            _ => panic!("serde_derive: malformed enum body ({name})"),
        },
        other => panic!("serde_derive: cannot derive for `{other}` items"),
    };
    Input {
        name,
        transparent,
        kind,
    }
}

/// Splits a brace/paren group body on top-level commas. Commas inside
/// `(...)`/`[...]`/`{...}` arrive pre-grouped by the tokenizer, but
/// generics like `HashMap<(K, K), V>` need explicit `<`/`>` depth
/// tracking ( `>>` arrives as two separate `>` puncts, so counting each
/// one works for nested generics).
fn split_commas(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut groups = Vec::new();
    let mut current = Vec::new();
    let mut angle_depth = 0usize;
    for t in stream {
        match &t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle_depth = angle_depth.saturating_sub(1);
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                groups.push(std::mem::take(&mut current));
                continue;
            }
            _ => {}
        }
        current.push(t);
    }
    if !current.is_empty() {
        groups.push(current);
    }
    groups
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    split_commas(stream)
        .into_iter()
        .filter(|g| !g.is_empty())
        .map(|tokens| {
            let mut pos = 0;
            let attrs = take_attrs(&tokens, &mut pos);
            skip_visibility(&tokens, &mut pos);
            let name = match &tokens[pos] {
                TokenTree::Ident(i) => i.to_string(),
                other => panic!("serde_derive: expected field name, found {other}"),
            };
            Field {
                name,
                default: attrs.iter().any(|w| w == "default"),
            }
        })
        .collect()
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    split_commas(stream)
        .into_iter()
        .filter(|g| !g.is_empty())
        .count()
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    split_commas(stream)
        .into_iter()
        .filter(|g| !g.is_empty())
        .map(|tokens| {
            let mut pos = 0;
            let _ = take_attrs(&tokens, &mut pos); // doc comments, #[default]
            let name = match &tokens[pos] {
                TokenTree::Ident(i) => i.to_string(),
                other => panic!("serde_derive: expected variant name, found {other}"),
            };
            pos += 1;
            let shape = match tokens.get(pos) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    VariantShape::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    VariantShape::Tuple(count_tuple_fields(g.stream()))
                }
                _ => VariantShape::Unit,
            };
            Variant { name, shape }
        })
        .collect()
}

// ---------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.kind {
        Kind::NamedStruct(fields) => {
            if input.transparent {
                assert_eq!(
                    fields.len(),
                    1,
                    "transparent struct must have one field ({name})"
                );
                format!("::serde::Serialize::to_value(&self.{})", fields[0].name)
            } else {
                let mut s = String::from("let mut m = ::serde::Map::new();\n");
                for f in fields {
                    s += &format!(
                        "m.insert(\"{0}\", ::serde::Serialize::to_value(&self.{0}));\n",
                        f.name
                    );
                }
                s += "::serde::Value::Object(m)";
                s
            }
        }
        Kind::TupleStruct(n) => {
            if input.transparent || *n == 1 {
                "::serde::Serialize::to_value(&self.0)".to_owned()
            } else {
                let items: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                    .collect();
                format!("::serde::Value::Array(vec![{}])", items.join(", "))
            }
        }
        Kind::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    VariantShape::Unit => {
                        arms += &format!(
                            "{name}::{vn} => ::serde::Value::String(\"{vn}\".to_string()),\n"
                        );
                    }
                    VariantShape::Tuple(1) => {
                        arms += &format!(
                            "{name}::{vn}(x0) => {{\n\
                             let mut m = ::serde::Map::new();\n\
                             m.insert(\"{vn}\", ::serde::Serialize::to_value(x0));\n\
                             ::serde::Value::Object(m)\n}}\n"
                        );
                    }
                    VariantShape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("x{i}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        arms += &format!(
                            "{name}::{vn}({binds}) => {{\n\
                             let mut m = ::serde::Map::new();\n\
                             m.insert(\"{vn}\", ::serde::Value::Array(vec![{items}]));\n\
                             ::serde::Value::Object(m)\n}}\n",
                            binds = binds.join(", "),
                            items = items.join(", ")
                        );
                    }
                    VariantShape::Named(fields) => {
                        let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let mut inner = String::from("let mut inner = ::serde::Map::new();\n");
                        for f in fields {
                            inner += &format!(
                                "inner.insert(\"{0}\", ::serde::Serialize::to_value({0}));\n",
                                f.name
                            );
                        }
                        arms += &format!(
                            "{name}::{vn} {{ {binds} }} => {{\n{inner}\
                             let mut m = ::serde::Map::new();\n\
                             m.insert(\"{vn}\", ::serde::Value::Object(inner));\n\
                             ::serde::Value::Object(m)\n}}\n",
                            binds = binds.join(", ")
                        );
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}"
    )
}

/// One named-field initializer reading from object `m`.
fn named_field_init(f: &Field, ty_name: &str) -> String {
    if f.default {
        format!(
            "{0}: match m.get(\"{0}\") {{\n\
             Some(x) => ::serde::Deserialize::from_value(x)?,\n\
             None => ::core::default::Default::default(),\n}},\n",
            f.name
        )
    } else {
        format!(
            "{0}: match m.get(\"{0}\") {{\n\
             Some(x) => ::serde::Deserialize::from_value(x)?,\n\
             None => return ::core::result::Result::Err(::serde::Error::msg(\
             \"missing field `{0}` in {1}\")),\n}},\n",
            f.name, ty_name
        )
    }
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.kind {
        Kind::NamedStruct(fields) => {
            if input.transparent {
                assert_eq!(
                    fields.len(),
                    1,
                    "transparent struct must have one field ({name})"
                );
                format!(
                    "::core::result::Result::Ok({name} {{ {0}: ::serde::Deserialize::from_value(value)? }})",
                    fields[0].name
                )
            } else {
                let mut inits = String::new();
                for f in fields {
                    inits += &named_field_init(f, name);
                }
                format!(
                    "let m = match value {{\n\
                     ::serde::Value::Object(m) => m,\n\
                     other => return ::core::result::Result::Err(::serde::Error::msg(\
                     format!(\"expected object for {name}, found {{}}\", other.kind()))),\n}};\n\
                     ::core::result::Result::Ok({name} {{\n{inits}}})"
                )
            }
        }
        Kind::TupleStruct(n) => {
            if input.transparent || *n == 1 {
                format!(
                    "::core::result::Result::Ok({name}(::serde::Deserialize::from_value(value)?))"
                )
            } else {
                let items: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                    .collect();
                format!(
                    "match value {{\n\
                     ::serde::Value::Array(items) if items.len() == {n} => \
                     ::core::result::Result::Ok({name}({items})),\n\
                     other => ::core::result::Result::Err(::serde::Error::msg(\
                     format!(\"expected {n}-element array for {name}, found {{}}\", other.kind()))),\n}}",
                    items = items.join(", ")
                )
            }
        }
        Kind::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    VariantShape::Unit => {
                        unit_arms += &format!(
                            "\"{vn}\" => return ::core::result::Result::Ok({name}::{vn}),\n"
                        );
                    }
                    VariantShape::Tuple(1) => {
                        tagged_arms += &format!(
                            "\"{vn}\" => return ::core::result::Result::Ok(\
                             {name}::{vn}(::serde::Deserialize::from_value(inner)?)),\n"
                        );
                    }
                    VariantShape::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                            .collect();
                        tagged_arms += &format!(
                            "\"{vn}\" => {{\n\
                             let items = inner.as_array().ok_or_else(|| \
                             ::serde::Error::msg(\"expected array payload for {name}::{vn}\"))?;\n\
                             if items.len() != {n} {{ return ::core::result::Result::Err(\
                             ::serde::Error::msg(\"wrong arity for {name}::{vn}\")); }}\n\
                             return ::core::result::Result::Ok({name}::{vn}({items}));\n}}\n",
                            items = items.join(", ")
                        );
                    }
                    VariantShape::Named(fields) => {
                        let mut inits = String::new();
                        for f in fields {
                            inits += &named_field_init(f, &format!("{name}::{vn}"));
                        }
                        tagged_arms += &format!(
                            "\"{vn}\" => {{\n\
                             let m = inner.as_object().ok_or_else(|| \
                             ::serde::Error::msg(\"expected object payload for {name}::{vn}\"))?;\n\
                             return ::core::result::Result::Ok({name}::{vn} {{\n{inits}}});\n}}\n"
                        );
                    }
                }
            }
            format!(
                "if let ::serde::Value::String(s) = value {{\n\
                 match s.as_str() {{\n{unit_arms}\
                 _ => return ::core::result::Result::Err(::serde::Error::msg(\
                 format!(\"unknown variant `{{s}}` for {name}\"))),\n}}\n}}\n\
                 if let ::serde::Value::Object(m) = value {{\n\
                 if m.len() == 1 {{\n\
                 let (tag, inner) = m.iter().next().expect(\"len checked\");\n\
                 match tag.as_str() {{\n{tagged_arms}\
                 _ => return ::core::result::Result::Err(::serde::Error::msg(\
                 format!(\"unknown variant `{{tag}}` for {name}\"))),\n}}\n}}\n}}\n\
                 ::core::result::Result::Err(::serde::Error::msg(\
                 format!(\"expected string or single-key object for {name}, found {{}}\", value.kind())))"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
         fn from_value(value: &::serde::Value) \
         -> ::core::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n}}"
    )
}
