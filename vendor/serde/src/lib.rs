//! A minimal, vendored stand-in for the `serde` crate.
//!
//! The real `serde` is format-agnostic; this workspace only ever
//! serializes to and from JSON, so the facade collapses to a JSON
//! [`Value`] model: [`Serialize`] renders a value tree, [`Deserialize`]
//! reads one back. The `#[derive(Serialize, Deserialize)]` macros come
//! from the sibling `serde_derive` crate and honour the two container /
//! field attributes this workspace uses: `#[serde(transparent)]` and
//! `#[serde(default)]`.
//!
//! The crate exists so the workspace builds hermetically — no network
//! access, no registry — while keeping every `use serde::...` line and
//! derive invocation in the main crates unchanged.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// A JSON number: integers keep full 64-bit precision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// A non-negative integer.
    PosInt(u64),
    /// A negative integer.
    NegInt(i64),
    /// A floating-point number.
    Float(f64),
}

impl Number {
    /// The number as `f64` (lossy for very large integers).
    #[must_use]
    pub fn as_f64(self) -> f64 {
        match self {
            Number::PosInt(u) => u as f64,
            Number::NegInt(i) => i as f64,
            Number::Float(f) => f,
        }
    }

    /// The number as `u64`, if it is a non-negative integer.
    #[must_use]
    pub fn as_u64(self) -> Option<u64> {
        match self {
            Number::PosInt(u) => Some(u),
            Number::NegInt(_) => None,
            Number::Float(f) => {
                if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 {
                    Some(f as u64)
                } else {
                    None
                }
            }
        }
    }

    /// The number as `i64`, if it fits.
    #[must_use]
    pub fn as_i64(self) -> Option<i64> {
        match self {
            Number::PosInt(u) => i64::try_from(u).ok(),
            Number::NegInt(i) => Some(i),
            Number::Float(f) => {
                if f.fract() == 0.0 && f >= i64::MIN as f64 && f <= i64::MAX as f64 {
                    Some(f as i64)
                } else {
                    None
                }
            }
        }
    }
}

/// An order-preserving JSON object.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// Creates an empty object.
    #[must_use]
    pub fn new() -> Self {
        Map::default()
    }

    /// Appends (or replaces) a key.
    pub fn insert(&mut self, key: impl Into<String>, value: Value) {
        let key = key.into();
        if let Some(slot) = self.entries.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = value;
        } else {
            self.entries.push((key, value));
        }
    }

    /// Looks a key up.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when the object has no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

/// A JSON value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Number(Number),
    /// A JSON string.
    String(String),
    /// A JSON array.
    Array(Vec<Value>),
    /// A JSON object.
    Object(Map),
}

impl Value {
    /// The value as an object, if it is one.
    #[must_use]
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// A short name of the value's JSON type, for error messages.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Serialization / deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Creates an error with the given message.
    #[must_use]
    pub fn msg(message: impl Into<String>) -> Self {
        Error(message.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Renders `self` into a JSON [`Value`] tree.
pub trait Serialize {
    /// The value tree representing `self`.
    fn to_value(&self) -> Value;
}

/// Reconstructs `Self` from a JSON [`Value`] tree.
pub trait Deserialize: Sized {
    /// Parses the value tree.
    ///
    /// # Errors
    ///
    /// When the tree does not have the expected shape.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::PosInt(u64::from(*self)))
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Number(n) => n
                        .as_u64()
                        .and_then(|u| <$t>::try_from(u).ok())
                        .ok_or_else(|| Error::msg(concat!("number out of range for ", stringify!($t)))),
                    other => Err(Error::msg(format!(
                        concat!("expected ", stringify!($t), ", found {}"), other.kind()))),
                }
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64);

impl Serialize for usize {
    fn to_value(&self) -> Value {
        Value::Number(Number::PosInt(*self as u64))
    }
}
impl Deserialize for usize {
    fn from_value(value: &Value) -> Result<Self, Error> {
        u64::from_value(value)
            .and_then(|u| usize::try_from(u).map_err(|_| Error::msg("usize out of range")))
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = i64::from(*self);
                if v < 0 {
                    Value::Number(Number::NegInt(v))
                } else {
                    Value::Number(Number::PosInt(v as u64))
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Number(n) => n
                        .as_i64()
                        .and_then(|i| <$t>::try_from(i).ok())
                        .ok_or_else(|| Error::msg(concat!("number out of range for ", stringify!($t)))),
                    other => Err(Error::msg(format!(
                        concat!("expected ", stringify!($t), ", found {}"), other.kind()))),
                }
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::Float(*self))
    }
}
impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Number(n) => Ok(n.as_f64()),
            other => Err(Error::msg(format!("expected f64, found {}", other.kind()))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::Float(f64::from(*self)))
    }
}
impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        f64::from_value(value).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::msg(format!("expected bool, found {}", other.kind()))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::String(s) => Ok(s.clone()),
            other => Err(Error::msg(format!(
                "expected string, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::msg(format!(
                "expected array, found {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        T::from_value(value).map(Box::new)
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                const N: usize = 0 $(+ { let _ = $idx; 1 })+;
                match value {
                    Value::Array(items) if items.len() == N => {
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    other => Err(Error::msg(format!(
                        "expected {}-element array, found {}", N, other.kind()))),
                }
            }
        }
    )*};
}
impl_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Maps serialize as an array of `[key, value]` pairs so non-string
/// keys (tuples, ids) round-trip losslessly; entries are sorted by the
/// serialized key for deterministic output.
fn map_to_value<'a, K, V, I>(entries: I) -> Value
where
    K: Serialize + 'a,
    V: Serialize + 'a,
    I: Iterator<Item = (&'a K, &'a V)>,
{
    let mut pairs: Vec<(String, Value)> = entries
        .map(|(k, v)| {
            let kv = k.to_value();
            (format!("{kv:?}"), Value::Array(vec![kv, v.to_value()]))
        })
        .collect();
    pairs.sort_by(|a, b| a.0.cmp(&b.0));
    Value::Array(pairs.into_iter().map(|(_, v)| v).collect())
}

fn map_entries_from_value<K: Deserialize, V: Deserialize>(
    value: &Value,
) -> Result<Vec<(K, V)>, Error> {
    match value {
        Value::Array(items) => items
            .iter()
            .map(|item| match item {
                Value::Array(pair) if pair.len() == 2 => {
                    Ok((K::from_value(&pair[0])?, V::from_value(&pair[1])?))
                }
                other => Err(Error::msg(format!(
                    "expected [key, value] pair, found {}",
                    other.kind()
                ))),
            })
            .collect(),
        other => Err(Error::msg(format!(
            "expected array of pairs, found {}",
            other.kind()
        ))),
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        map_to_value(self.iter())
    }
}
impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + Eq + std::hash::Hash,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(map_entries_from_value(value)?.into_iter().collect())
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        map_to_value(self.iter())
    }
}
impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(map_entries_from_value(value)?.into_iter().collect())
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}
