//! Minimal bindings to the POSIX `poll(2)` readiness syscall.
//!
//! The `noc-svc` reactor needs exactly one thing from the operating
//! system that `std` does not expose: "which of these sockets are
//! readable or writable right now?". This crate provides that — a
//! `#[repr(C)]` mirror of `struct pollfd` plus a safe [`poll`]
//! wrapper — and nothing else, so the workspace stays hermetic (no
//! registry, no `libc` crate; `std` already links the C runtime, so
//! the `poll` symbol resolves at link time).
//!
//! All `unsafe` in the workspace lives in this crate's `sys` module;
//! every consumer crate keeps `#![forbid(unsafe_code)]`. The event
//! flag constants share their values across Linux and the BSDs
//! (including macOS), so no per-platform constants are needed; only
//! the `nfds_t` width differs and is cfg-gated.

#![deny(missing_docs)]

use std::io;

/// Data other than high-priority data may be read without blocking.
pub const POLLIN: i16 = 0x001;
/// Data may be written without blocking.
pub const POLLOUT: i16 = 0x004;
/// An error has occurred (revents only).
pub const POLLERR: i16 = 0x008;
/// The peer hung up (revents only).
pub const POLLHUP: i16 = 0x010;
/// The descriptor is invalid (revents only).
pub const POLLNVAL: i16 = 0x020;

/// One descriptor's interest set and readiness results.
///
/// Layout-compatible with the platform `struct pollfd`: an `int` file
/// descriptor followed by two `short` event masks.
#[repr(C)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PollFd {
    /// The file descriptor to watch; negative entries are ignored by
    /// the kernel, which lets callers disable a slot without
    /// re-packing the array.
    pub fd: i32,
    /// Requested events (`POLLIN` and/or `POLLOUT`).
    pub events: i16,
    /// Returned events, written by [`poll`]; may include `POLLERR`,
    /// `POLLHUP` and `POLLNVAL` even when not requested.
    pub revents: i16,
}

impl PollFd {
    /// Watches `fd` for `events`.
    #[must_use]
    pub fn new(fd: i32, events: i16) -> PollFd {
        PollFd {
            fd,
            events,
            revents: 0,
        }
    }

    /// True when any event in `mask` fired.
    #[must_use]
    pub fn has(&self, mask: i16) -> bool {
        self.revents & mask != 0
    }
}

#[cfg(unix)]
mod sys {
    use super::PollFd;

    #[cfg(target_os = "macos")]
    type NfdsT = u32;
    #[cfg(not(target_os = "macos"))]
    type NfdsT = std::os::raw::c_ulong;

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: NfdsT, timeout: std::os::raw::c_int)
            -> std::os::raw::c_int;
    }

    pub fn poll_impl(fds: &mut [PollFd], timeout_ms: i32) -> std::io::Result<usize> {
        // SAFETY: `PollFd` is `#[repr(C)]` with the exact field order
        // and types of the platform `struct pollfd`; the pointer and
        // length come from a live mutable slice; the kernel writes
        // only within the `fds.len()` entries it is given.
        let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as NfdsT, timeout_ms) };
        if rc < 0 {
            Err(std::io::Error::last_os_error())
        } else {
            Ok(rc as usize)
        }
    }
}

#[cfg(not(unix))]
mod sys {
    pub fn poll_impl(_fds: &mut [super::PollFd], _timeout_ms: i32) -> std::io::Result<usize> {
        Err(std::io::Error::new(
            std::io::ErrorKind::Unsupported,
            "poll(2) readiness is only available on unix targets",
        ))
    }
}

/// Waits up to `timeout_ms` milliseconds (`-1` blocks indefinitely,
/// `0` returns immediately) for readiness on `fds`, returning how many
/// entries have nonzero `revents`.
///
/// Signal interruptions (`EINTR`) are retried transparently; the
/// timeout restarts on retry, which is acceptable for callers that
/// sweep on bounded timeouts.
///
/// # Errors
///
/// Propagates the OS error from `poll(2)`; on non-unix targets always
/// fails with `ErrorKind::Unsupported`.
pub fn poll(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
    loop {
        match sys::poll_impl(fds, timeout_ms) {
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            other => return other,
        }
    }
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("binds");
        let addr = listener.local_addr().expect("addr");
        let a = TcpStream::connect(addr).expect("connects");
        let (b, _) = listener.accept().expect("accepts");
        (a, b)
    }

    #[test]
    fn timeout_elapses_with_no_readiness() {
        let (a, _b) = pair();
        let mut fds = [PollFd::new(a.as_raw_fd(), POLLIN)];
        let n = poll(&mut fds, 10).expect("poll succeeds");
        assert_eq!(n, 0);
        assert!(!fds[0].has(POLLIN));
    }

    #[test]
    fn written_bytes_make_the_peer_readable() {
        let (mut a, b) = pair();
        a.write_all(b"x").expect("writes");
        let mut fds = [PollFd::new(b.as_raw_fd(), POLLIN)];
        let n = poll(&mut fds, 1000).expect("poll succeeds");
        assert_eq!(n, 1);
        assert!(fds[0].has(POLLIN));
    }

    #[test]
    fn idle_socket_is_writable_and_negative_fd_is_skipped() {
        let (a, mut b) = pair();
        let mut fds = [
            PollFd::new(a.as_raw_fd(), POLLOUT),
            PollFd::new(-1, POLLIN | POLLOUT),
        ];
        let n = poll(&mut fds, 1000).expect("poll succeeds");
        assert_eq!(n, 1);
        assert!(fds[0].has(POLLOUT));
        assert_eq!(fds[1].revents, 0);
        // Keep `b` alive until after the poll so POLLHUP cannot fire.
        b.flush().expect("flush");
    }

    #[test]
    fn hangup_is_reported() {
        let (a, b) = pair();
        drop(b);
        let mut fds = [PollFd::new(a.as_raw_fd(), POLLIN)];
        let n = poll(&mut fds, 1000).expect("poll succeeds");
        assert_eq!(n, 1);
        // Linux reports POLLIN (EOF readable) and usually POLLHUP.
        assert!(fds[0].has(POLLIN | POLLHUP));
    }
}
