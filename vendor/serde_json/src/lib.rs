//! A minimal, vendored stand-in for `serde_json`.
//!
//! Prints and parses the JSON [`Value`] model defined by the vendored
//! `serde` crate. Supports everything the workspace relies on:
//! `to_string`, `to_string_pretty`, `from_str`, full 64-bit integer
//! round-trips, string escapes and nested containers.

pub use serde::{Error, Map, Number, Value};

/// Serializes `value` to compact JSON.
///
/// # Errors
///
/// Currently infallible (kept `Result` for API compatibility).
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` to human-readable JSON (2-space indent).
///
/// # Errors
///
/// Currently infallible (kept `Result` for API compatibility).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses a value of type `T` from JSON text.
///
/// # Errors
///
/// On malformed JSON or a shape mismatch with `T`.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    T::from_value(&value)
}

// ---------------------------------------------------------------------
// Printer
// ---------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(out, *n),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(m) => {
            if m.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in m.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_number(out: &mut String, n: Number) {
    match n {
        Number::PosInt(u) => out.push_str(&u.to_string()),
        Number::NegInt(i) => out.push_str(&i.to_string()),
        Number::Float(f) => {
            if f.is_finite() {
                let s = f.to_string();
                out.push_str(&s);
                // Keep floats recognizably floats so they round-trip
                // into the Float arm (serde_json prints 2.0, not 2).
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null"); // JSON cannot represent NaN/inf
            }
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n' | b't' | b'f') => {
                if self.eat_keyword("null") {
                    Ok(Value::Null)
                } else if self.eat_keyword("true") {
                    Ok(Value::Bool(true))
                } else if self.eat_keyword("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(Error::msg(format!(
                        "unexpected keyword at byte {}",
                        self.pos
                    )))
                }
            }
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(Error::msg(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::msg(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => {
                    return Err(Error::msg(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::msg("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let cp = self.unicode_escape()?;
                            out.push(cp);
                            continue;
                        }
                        other => {
                            return Err(Error::msg(format!(
                                "bad escape {:?} at byte {}",
                                other.map(|b| b as char),
                                self.pos
                            )))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is valid UTF-8 by
                    // construction: it came from a &str).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| Error::msg("invalid utf-8"))?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Parses the 4 hex digits after `\u` (cursor on the `u`), handling
    /// surrogate pairs.
    fn unicode_escape(&mut self) -> Result<char, Error> {
        self.pos += 1; // consume 'u'
        let hi = self.hex4()?;
        if (0xD800..0xDC00).contains(&hi) {
            // High surrogate: require a following \uXXXX low surrogate.
            if self.eat_keyword("\\u") {
                let lo = self.hex4()?;
                if (0xDC00..0xE000).contains(&lo) {
                    let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                    return char::from_u32(cp).ok_or_else(|| Error::msg("bad surrogate pair"));
                }
            }
            return Err(Error::msg("unpaired surrogate"));
        }
        char::from_u32(hi).ok_or_else(|| Error::msg("bad unicode escape"))
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error::msg("truncated unicode escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error::msg("bad unicode escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| Error::msg("bad unicode escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("bad number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::PosInt(u)));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::NegInt(i)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::Float(f)))
            .map_err(|_| Error::msg(format!("bad number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(to_string(&-7i32).unwrap(), "-7");
        assert_eq!(from_str::<i32>("-7").unwrap(), -7);
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(from_str::<f64>("2.0").unwrap(), 2.0);
        assert_eq!(from_str::<f64>("3").unwrap(), 3.0);
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string("a\"b\n").unwrap(), "\"a\\\"b\\n\"");
        assert_eq!(from_str::<String>("\"a\\\"b\\n\"").unwrap(), "a\"b\n");
    }

    #[test]
    fn round_trips_u64_precision() {
        let big = u64::MAX;
        let json = to_string(&big).unwrap();
        assert_eq!(from_str::<u64>(&json).unwrap(), big);
    }

    #[test]
    fn round_trips_containers() {
        let v = vec![(1u32, 2.5f64), (3, 4.0)];
        let json = to_string(&v).unwrap();
        assert_eq!(from_str::<Vec<(u32, f64)>>(&json).unwrap(), v);
        let opt: Option<u32> = None;
        assert_eq!(to_string(&opt).unwrap(), "null");
        assert_eq!(from_str::<Option<u32>>("null").unwrap(), None);
        assert_eq!(from_str::<Option<u32>>("5").unwrap(), Some(5));
    }

    #[test]
    fn pretty_output_is_indented_and_parses_back() {
        let v = vec![vec![1u8, 2], vec![3]];
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        assert_eq!(from_str::<Vec<Vec<u8>>>(&pretty).unwrap(), v);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str::<u64>("").is_err());
        assert!(from_str::<u64>("12 34").is_err());
        assert!(from_str::<Vec<u64>>("[1, 2").is_err());
        assert!(from_str::<bool>("truth").is_err());
    }

    #[test]
    fn unicode_escapes_parse() {
        assert_eq!(from_str::<String>("\"\\u0041\"").unwrap(), "A");
        assert_eq!(from_str::<String>("\"\\ud83d\\ude00\"").unwrap(), "😀");
    }
}
