//! A minimal, vendored stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace uses: the [`strategy::Strategy`]
//! trait over numeric ranges, tuples, `prop_map`, [`collection::vec`],
//! [`bool::ANY`], [`strategy::Just`], the [`proptest!`] /
//! [`prop_assert!`] / [`prop_assert_eq!`] macros, and a deterministic
//! [`test_runner::TestRunner`]. Sampling is purely random (seeded from
//! the test name and case index) — there is no shrinking; a failing case
//! reports its fully rendered input instead.

/// Strategy trait and combinators.
pub mod strategy {
    use rand::rngs::StdRng;
    use std::fmt::Debug;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating random values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value: Debug;

        /// Draws one value.
        fn sample(&self, rng: &mut StdRng) -> Self::Value;

        /// Transforms generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            O: Debug,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        O: Debug,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn sample(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// A strategy that always yields a clone of its value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone + Debug>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rand::Rng::random_range(rng, self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rand::Rng::random_range(rng, self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

/// Boolean strategies.
pub mod bool {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;

    /// Strategy yielding `true` or `false` with equal probability.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Uniform boolean strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn sample(&self, rng: &mut StdRng) -> bool {
            rand::Rng::random_bool(rng, 0.5)
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Vectors of `element` values with lengths in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rand::Rng::random_range(rng, self.size.clone());
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Test-runner configuration and execution.
pub mod test_runner {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Runner configuration; only `cases` is supported.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    fn fnv1a(bytes: &[u8]) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Runs `test` against `config.cases` deterministic samples of
    /// `strategy`, panicking with the rendered input on the first
    /// failing case. Used by the [`proptest!`](crate::proptest) macro.
    pub fn run_cases<S, F>(config: ProptestConfig, name: &str, strategy: &S, test: F)
    where
        S: Strategy,
        F: Fn(S::Value),
    {
        for case in 0..config.cases {
            let seed =
                fnv1a(name.as_bytes()) ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(case as u64 + 1));
            let mut rng = StdRng::seed_from_u64(seed);
            let value = strategy.sample(&mut rng);
            let rendered = format!("{value:?}");
            let outcome = catch_unwind(AssertUnwindSafe(|| test(value)));
            if let Err(payload) = outcome {
                let message = payload
                    .downcast_ref::<String>()
                    .map(String::as_str)
                    .or_else(|| payload.downcast_ref::<&str>().copied())
                    .unwrap_or("<non-string panic payload>");
                panic!(
                    "proptest property `{name}` failed at case {case}/{total} \
                     with input {rendered}: {message}",
                    total = config.cases,
                );
            }
        }
    }
}

/// One-glob import of everything a property test needs.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Namespaced access to strategy modules (`prop::collection::vec`).
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
    }
}

/// Declares property tests: each `fn name(pat in strategy, ...) { .. }`
/// becomes a `#[test]` running the body over sampled inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@with_config ($config) $($rest)*);
    };
    (
        @with_config ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let strategy = ($($strategy,)+);
                $crate::test_runner::run_cases(
                    config,
                    stringify!($name),
                    &strategy,
                    |($($arg,)+)| $body,
                );
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @with_config ($crate::test_runner::ProptestConfig::default())
            $($rest)*
        );
    };
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tokens:tt)*) => { assert_ne!($($tokens)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn doubled() -> impl Strategy<Value = u64> {
        (1u64..100).prop_map(|v| v * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(v in 5u32..10, f in 0.0f64..1.0) {
            prop_assert!((5..10).contains(&v));
            prop_assert!((0.0..1.0).contains(&f));
        }

        #[test]
        fn mapped_values_are_even(v in doubled()) {
            prop_assert_eq!(v % 2, 0);
        }

        #[test]
        fn vec_strategy_respects_len(items in prop::collection::vec((0u32..4, 0u64..9), 1..20)) {
            prop_assert!((1..20).contains(&items.len()));
            for (a, b) in items {
                prop_assert!(a < 4 && b < 9);
            }
        }

        #[test]
        fn bool_and_just(flag in prop::bool::ANY, fixed in Just(7u8)) {
            prop_assert!(usize::from(flag) <= 1);
            prop_assert_eq!(fixed, 7);
        }
    }

    #[test]
    fn failing_case_reports_input() {
        let result = std::panic::catch_unwind(|| {
            crate::test_runner::run_cases(
                ProptestConfig::with_cases(10),
                "always_fails",
                &(0u32..5,),
                |(v,)| assert!(v > 100, "v too small"),
            );
        });
        let payload = result.expect_err("property must fail");
        let message = payload.downcast_ref::<String>().expect("string payload");
        assert!(message.contains("always_fails"), "got: {message}");
        assert!(message.contains("with input"), "got: {message}");
    }
}
