//! A minimal, vendored stand-in for the `rand` crate (0.9 API surface).
//!
//! Provides exactly what this workspace uses: a seedable [`rngs::StdRng`]
//! (xoshiro256++ seeded via SplitMix64), the [`Rng`] extension trait with
//! `random_range` / `random_bool`, and [`seq::IndexedRandom`] for slice
//! sampling. Deterministic per seed; not cryptographically secure.

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Creates an RNG deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (`a..b` or `a..=b`).
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Maps a random word to `[0, 1)` with 53-bit precision.
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A range that knows how to sample one value from itself.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as u128) - (self.start as u128);
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as u128) - (lo as u128) + 1;
                lo + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
impl_signed_range!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        // Use the closed-interval mapping: scale by 2^-53 over 2^53 + 1
        // representable steps is overkill for a test RNG; the half-open
        // draw is indistinguishable in practice but we nudge the top in.
        lo + unit_f64(rng.next_u64()) * (hi - lo)
    }
}

/// Named RNG types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard RNG: xoshiro256++ (deterministic per seed).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn splitmix64(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                Self::splitmix64(&mut sm),
                Self::splitmix64(&mut sm),
                Self::splitmix64(&mut sm),
                Self::splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Slice sampling.
pub mod seq {
    use super::RngCore;

    /// Random selection from indexable collections (slices).
    pub trait IndexedRandom {
        /// The element type.
        type Item;

        /// A uniformly random element, or `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// `amount` distinct elements (all of them when `amount` exceeds
        /// the length), in sampling order.
        fn choose_multiple<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&Self::Item>;
    }

    impl<T> IndexedRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(rng.next_u64() % self.len() as u64) as usize])
            }
        }

        fn choose_multiple<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&T> {
            // Partial Fisher-Yates over an index vector.
            let amount = amount.min(self.len());
            let mut indices: Vec<usize> = (0..self.len()).collect();
            for i in 0..amount {
                let j = i + (rng.next_u64() % (indices.len() - i) as u64) as usize;
                indices.swap(i, j);
            }
            indices[..amount]
                .iter()
                .map(|&i| &self[i])
                .collect::<Vec<&T>>()
                .into_iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::IndexedRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random_range(0u64..1000), b.random_range(0u64..1000));
        }
        let mut c = StdRng::seed_from_u64(8);
        let same: Vec<u64> = (0..10).map(|_| c.random_range(0..u64::MAX)).collect();
        assert_ne!(
            same,
            (0..10)
                .map(|_| a.random_range(0..u64::MAX))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.random_range(10u32..20);
            assert!((10..20).contains(&v));
            let f = rng.random_range(-1.0..=1.0);
            assert!((-1.0..=1.0).contains(&f));
            let i = rng.random_range(-5i32..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn bool_probability_is_sane() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "got {hits}");
    }

    #[test]
    fn choose_multiple_is_distinct() {
        let mut rng = StdRng::seed_from_u64(3);
        let items: Vec<u32> = (0..10).collect();
        let picked: Vec<u32> = items.choose_multiple(&mut rng, 4).copied().collect();
        assert_eq!(picked.len(), 4);
        let mut sorted = picked.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 4, "duplicates in {picked:?}");
        assert!(items.choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
