//! A minimal, vendored stand-in for the `criterion` crate.
//!
//! Implements the subset this workspace's benches use: `Criterion`,
//! benchmark groups with `sample_size` / `bench_function` /
//! `bench_with_input`, `BenchmarkId`, and the `criterion_group!` /
//! `criterion_main!` macros. Timing is wall-clock via
//! [`std::time::Instant`]; each sample measures one closure call and the
//! minimum / median / mean over samples are printed.
//!
//! Mode selection follows criterion's CLI contract: `--bench` (passed by
//! `cargo bench`) runs full measurements; anything else (e.g. `--test`
//! from `cargo test --benches`) runs each benchmark closure exactly once
//! as a smoke test.

use std::fmt::Display;
use std::time::Instant;

pub use std::hint::black_box;

/// Whether we are measuring or merely smoke-testing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Measure,
    Smoke,
}

/// A benchmark identifier, possibly parameterized.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id of the form `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{parameter}", name.into()),
        }
    }

    /// An id that is just the parameter (the group provides the name).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Throughput annotation (accepted, currently not reported).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Times closures handed to it by a benchmark function.
pub struct Bencher {
    mode: Mode,
    sample_size: usize,
    /// Nanoseconds per sample, filled by [`Bencher::iter`].
    samples: Vec<u128>,
}

impl Bencher {
    /// Calls `f` repeatedly and records one timing sample per call
    /// (after one untimed warm-up call). In smoke mode `f` runs once.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.mode == Mode::Smoke {
            black_box(f());
            return;
        }
        black_box(f()); // warm-up
        for _ in 0..self.sample_size {
            let t = Instant::now();
            black_box(f());
            self.samples.push(t.elapsed().as_nanos());
        }
    }
}

/// The benchmark manager driving all groups and functions.
pub struct Criterion {
    mode: Mode,
    filter: Option<String>,
    default_sample_size: usize,
    completed: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            mode: Mode::Smoke,
            filter: None,
            default_sample_size: 10,
            completed: 0,
        }
    }
}

impl Criterion {
    /// Builds a `Criterion` from the process arguments (`--bench`
    /// selects measurement mode; a positional argument filters by
    /// substring; other flags are ignored).
    #[must_use]
    pub fn from_args() -> Self {
        let mut c = Criterion::default();
        let mut args = std::env::args().skip(1).peekable();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--bench" => c.mode = Mode::Measure,
                "--test" => c.mode = Mode::Smoke,
                // Flags with a value we do not interpret.
                "--sample-size" | "--measurement-time" | "--warm-up-time" | "--save-baseline"
                | "--baseline" => {
                    let _ = args.next();
                }
                flag if flag.starts_with('-') => {}
                filter => c.filter = Some(filter.to_owned()),
            }
        }
        c
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into().id;
        let samples = self.default_sample_size;
        self.run_one(id, samples, f);
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, id: String, sample_size: usize, mut f: F) {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            mode: self.mode,
            sample_size,
            samples: Vec::new(),
        };
        f(&mut bencher);
        self.completed += 1;
        match self.mode {
            Mode::Smoke => println!("{id}: ok (smoke test)"),
            Mode::Measure => report(&id, &mut bencher.samples),
        }
    }

    /// Prints the closing summary line.
    pub fn final_summary(&self) {
        let what = if self.mode == Mode::Measure {
            "benchmarks"
        } else {
            "smoke tests"
        };
        println!("completed {} {what}", self.completed);
    }
}

fn report(id: &str, samples: &mut [u128]) {
    if samples.is_empty() {
        println!("{id}: no samples recorded");
        return;
    }
    samples.sort_unstable();
    let min = samples[0];
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<u128>() / samples.len() as u128;
    println!(
        "{id}: min {} / median {} / mean {} ({} samples)",
        fmt_ns(min),
        fmt_ns(median),
        fmt_ns(mean),
        samples.len()
    );
}

fn fmt_ns(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// A set of related benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Accepts a throughput annotation (ignored by this harness).
    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into().id);
        let samples = self
            .sample_size
            .unwrap_or(self.criterion.default_sample_size);
        self.criterion.run_one(full, samples, f);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (no-op; provided for API compatibility).
    pub fn finish(self) {}
}

/// Bundles benchmark functions into a single group runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::from_args();
            $($group(&mut c);)+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_closure_once() {
        let mut c = Criterion::default();
        let mut calls = 0;
        c.bench_function("counted", |b| b.iter(|| calls += 1));
        assert_eq!(calls, 1);
    }

    #[test]
    fn measure_mode_collects_samples() {
        let mut c = Criterion {
            mode: Mode::Measure,
            ..Criterion::default()
        };
        let mut group = c.benchmark_group("g");
        group.sample_size(5);
        let mut calls = 0;
        group.bench_with_input(BenchmarkId::from_parameter(42), &3u32, |b, &x| {
            b.iter(|| calls += x)
        });
        group.finish();
        // warm-up + 5 samples, 3 per call.
        assert_eq!(calls, 6 * 3);
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut c = Criterion {
            filter: Some("match".into()),
            ..Criterion::default()
        };
        let mut ran = false;
        c.bench_function("other", |b| b.iter(|| ran = true));
        assert!(!ran);
        c.bench_function("does_match_this", |b| b.iter(|| ran = true));
        assert!(ran);
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("scale", 64).id, "scale/64");
        assert_eq!(BenchmarkId::from_parameter(64).id, "64");
    }
}
